//! Similar-read search on synthetic genome data — the paper's
//! non-natural-language workload (reads of length ≈100 over
//! `{A, C, G, N, T}`, thresholds up to k = 16).
//!
//! Demonstrates the threshold/selectivity trade-off, the dictionary
//! compression of §6 (3-bit packing), and the scan-vs-index comparison
//! on long small-alphabet strings.
//!
//! ```sh
//! cargo run --release --example dna_read_matching
//! ```

use simsearch::core::{experiment::time, EngineKind, IdxVariant, SearchEngine, SeqVariant};
use simsearch::core::presets;
use simsearch::data::PackedDataset;

fn main() {
    let preset = presets::dna(2_000);
    println!(
        "read set: {} reads, mean length {:.1}",
        preset.dataset.len(),
        preset.dataset.arena_len() as f64 / preset.dataset.len() as f64
    );

    // §6 dictionary compression: 3 bits per symbol.
    let packed = PackedDataset::pack(&preset.dataset).expect("reads are over ACGNT");
    println!(
        "3-bit packing: {} -> {} bytes ({:.1}% of raw)",
        preset.dataset.arena_len(),
        packed.storage_bytes(),
        100.0 * packed.storage_bytes() as f64 / preset.dataset.arena_len() as f64
    );

    // Threshold sweep on one read: how selectivity falls with k.
    let scan = SearchEngine::build(&preset.dataset, EngineKind::Scan(SeqVariant::V4Flat));
    let probe = preset.dataset.get(42);
    println!("\nmatches of read #42 by threshold:");
    for k in [0u32, 4, 8, 16, 32] {
        let hits = scan.search(probe, k);
        println!("  k = {k:>2}: {} reads", hits.len());
    }

    // Scan vs index on the paper's workload mix.
    let workload = preset.workload.prefix(100);
    let index = SearchEngine::build(
        &preset.dataset,
        EngineKind::IndexModern(IdxVariant::I2Compressed),
    );
    let (scan_results, scan_time) = time(|| scan.run(&workload));
    let (idx_results, idx_time) = time(|| index.run(&workload));
    assert_eq!(scan_results, idx_results, "engines disagree!");
    println!(
        "\n100 mixed-threshold queries: scan {:.2} ms, compressed index {:.2} ms",
        scan_time.as_secs_f64() * 1e3,
        idx_time.as_secs_f64() * 1e3
    );
    println!(
        "index needs {:.0}% of the scan's time (paper Figure 7 verdict: index wins on DNA)",
        100.0 * idx_time.as_secs_f64() / scan_time.as_secs_f64()
    );

    // Read mapping: find the reads *containing* a 40-base probe with up
    // to 2 errors (semi-global / substring search).
    let probe: Vec<u8> = preset.dataset.get(7)[20..60].to_vec();
    let (hits, t) = time(|| simsearch::scan::substring_scan_myers(&preset.dataset, &probe, 2));
    println!(
        "\nread mapping: 40-base probe with ≤2 errors is contained in {} of {} reads ({:.1} ms)",
        hits.len(),
        preset.dataset.len(),
        t.as_secs_f64() * 1e3
    );
    for h in hits.iter().take(4) {
        println!(
            "  read #{:<5} distance {} ending at offset {}",
            h.id, h.best.distance, h.best.end
        );
    }
}
