//! The EDBT/ICDT 2013 competition workflow, end to end through files:
//! generate a data file and a query file, read them back, answer every
//! query, and write the result lists — exactly what the paper's
//! implementations (and the `simsearch` CLI) do.
//!
//! ```sh
//! cargo run --release --example competition
//! ```

use simsearch::core::{experiment::time, EngineKind, IdxVariant, SearchEngine, SeqVariant};
use simsearch::data::{io, Alphabet, CityGenerator, MatchSet, WorkloadSpec, CITY_THRESHOLDS};

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join(format!("simsearch-competition-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let data_path = dir.join("city.data");
    let query_path = dir.join("city.queries");
    let result_path = dir.join("city.results");

    // Organizer side: publish data and queries.
    let dataset = CityGenerator::new(2013).generate(5_000);
    let alphabet = Alphabet::from_corpus(dataset.records());
    let workload = WorkloadSpec::new(&CITY_THRESHOLDS, 500, 2013).generate(&dataset, &alphabet);
    io::write_dataset(&data_path, &dataset)?;
    io::write_queries(&query_path, &workload)?;
    println!("published {:?} and {:?}", data_path, query_path);

    // Participant side: read the files (excluded from the measured time,
    // as in the paper's protocol), answer, write results.
    let dataset = io::read_dataset(&data_path)?;
    let workload = io::read_queries(&query_path)?;
    let scan = SearchEngine::build(&dataset, EngineKind::Scan(SeqVariant::V4Flat));
    let index = SearchEngine::build(&dataset, EngineKind::Index(IdxVariant::I2Compressed));
    let (scan_results, scan_time) = time(|| scan.run(&workload));
    let (index_results, index_time) = time(|| index.run(&workload));
    assert_eq!(scan_results, index_results, "submissions disagree!");
    println!(
        "{} queries: scan {:.1} ms, index {:.1} ms",
        workload.len(),
        scan_time.as_secs_f64() * 1e3,
        index_time.as_secs_f64() * 1e3
    );

    let id_lists: Vec<Vec<u32>> = scan_results.iter().map(MatchSet::ids).collect();
    io::write_results(&result_path, &id_lists)?;
    let total: usize = scan_results.iter().map(MatchSet::len).sum();
    println!("wrote {total} matches to {:?}", result_path);

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
