//! Typo-tolerant place-name lookup — the natural-language workload the
//! paper's introduction motivates ("the user could make typing errors").
//!
//! Builds a synthetic gazetteer, fires misspelled lookups at every
//! engine family, and prints a per-engine latency summary, reproducing
//! the paper's city-names verdict in miniature.
//!
//! ```sh
//! cargo run --release --example city_typeahead
//! ```

use simsearch::core::presets;
use simsearch::core::{
    experiment::time, EngineKind, IdxVariant, SearchEngine, SeqVariant, Strategy,
};
use simsearch::data::{Workload, WorkloadSpec, CITY_THRESHOLDS};

fn main() {
    let preset = presets::city(10_000);
    println!(
        "gazetteer: {} unique names, alphabet of {} byte symbols",
        preset.dataset.len(),
        preset.alphabet.len()
    );

    // A fresh workload of 200 misspelled lookups (k cycling 0..=3).
    let workload: Workload =
        WorkloadSpec::new(&CITY_THRESHOLDS, 200, 7).generate(&preset.dataset, &preset.alphabet);

    let engines = vec![
        SearchEngine::build(&preset.dataset, EngineKind::Scan(SeqVariant::V4Flat)),
        SearchEngine::build(
            &preset.dataset,
            EngineKind::Scan(SeqVariant::V6Pool { threads: 8 }),
        ),
        SearchEngine::build(&preset.dataset, EngineKind::Index(IdxVariant::I2Compressed)),
        SearchEngine::build(
            &preset.dataset,
            EngineKind::IndexModern(IdxVariant::I2Compressed),
        ),
        SearchEngine::build(
            &preset.dataset,
            EngineKind::Qgram {
                q: 2,
                strategy: Strategy::Sequential,
            },
        ),
    ];

    let mut reference = None;
    println!("\n{:<42} {:>12} {:>10}", "engine", "200 queries", "µs/query");
    for engine in &engines {
        let (results, wall) = time(|| engine.run(&workload));
        match &reference {
            None => reference = Some(results),
            Some(r) => assert_eq!(r, &results, "engines disagree!"),
        }
        println!(
            "{:<42} {:>9.3} ms {:>10.1}",
            engine.name(),
            wall.as_secs_f64() * 1e3,
            wall.as_secs_f64() * 1e6 / workload.len() as f64
        );
    }

    // Show one lookup end to end.
    let q = &workload.queries[2];
    let hits = engines[0].search(&q.text, q.threshold);
    println!(
        "\nexample lookup {:?} (k = {}): {} hits",
        String::from_utf8_lossy(&q.text),
        q.threshold,
        hits.len()
    );
    for m in hits.iter().take(5) {
        println!(
            "  {:?} (distance {})",
            String::from_utf8_lossy(preset.dataset.get(m.id)),
            m.distance
        );
    }
}
