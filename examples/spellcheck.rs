//! A tiny spell checker — the "accept input errors" application from the
//! paper's introduction, built from the library's extension features:
//! top-k nearest-neighbour search, Damerau–OSA ranking for transposition
//! typos, and edit-script extraction to display what went wrong.
//!
//! ```sh
//! cargo run --release --example spellcheck
//! ```

use simsearch::core::{search_top_k, EngineKind, IdxVariant, SearchEngine};
use simsearch::data::Dataset;
use simsearch::distance::damerau::damerau_osa;
use simsearch::distance::{edit_script, EditStep};
use simsearch::scan::{measure_scan, Measure};

const DICTIONARY: &[&str] = &[
    "search", "similar", "similarity", "sequence", "sequential", "distance", "instance",
    "edit", "exit", "index", "tree", "three", "free", "thread", "threat", "scan", "span",
    "string", "spring", "strong", "parallel", "partial", "compression", "comparison",
    "performance", "perform", "platform",
];

fn main() {
    let dict = Dataset::from_records(DICTIONARY);
    let engine = SearchEngine::build(&dict, EngineKind::Index(IdxVariant::I2Compressed));

    let typos = ["serach", "similarty", "thrad", "indx", "comprision", "sequentail"];
    for typo in typos {
        // Candidates by Levenshtein top-k, re-ranked by Damerau-OSA so
        // adjacent transpositions ("serach" -> "search") rank first.
        let mut candidates = search_top_k(&engine, typo.as_bytes(), 3, 4);
        candidates.sort_by_key(|m| {
            (
                damerau_osa(typo.as_bytes(), dict.get(m.id)),
                m.distance,
                m.id,
            )
        });
        print!("{typo:>12} ->");
        for m in &candidates {
            print!(
                " {}({})",
                String::from_utf8_lossy(dict.get(m.id)),
                damerau_osa(typo.as_bytes(), dict.get(m.id))
            );
        }
        println!();
        // Explain the best correction with its edit script.
        if let Some(best) = candidates.first() {
            let (steps, _) = edit_script(typo.as_bytes(), dict.get(best.id));
            let fixes: Vec<String> = steps
                .iter()
                .filter(|s| !matches!(s, EditStep::Keep { .. }))
                .map(|s| match *s {
                    EditStep::Substitute { x_pos, symbol } => {
                        format!("replace '{}' at {x_pos} with '{}'", typo.as_bytes()[x_pos] as char, symbol as char)
                    }
                    EditStep::Delete { x_pos } => {
                        format!("drop '{}' at {x_pos}", typo.as_bytes()[x_pos] as char)
                    }
                    EditStep::Insert { x_pos, symbol } => {
                        format!("insert '{}' before {x_pos}", symbol as char)
                    }
                    EditStep::Keep { .. } => unreachable!(),
                })
                .collect();
            println!("{:>12}    fix: {}", "", fixes.join(", "));
        }
    }

    // Hamming mode: same-length corrections only (PETER's other measure).
    let hits = measure_scan(&dict, b"thrae", 2, Measure::Hamming);
    println!(
        "\nHamming(≤2) neighbours of \"thrae\": {:?}",
        hits.iter()
            .map(|m| String::from_utf8_lossy(dict.get(m.id)).into_owned())
            .collect::<Vec<_>>()
    );
}
