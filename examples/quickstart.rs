//! Quickstart: the string similarity search problem in a dozen lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use simsearch::core::{EngineKind, IdxVariant, SearchEngine, SeqVariant};
use simsearch::data::Dataset;
use simsearch::distance::{levenshtein_full_with, DpMatrix};

fn main() {
    // A tiny gazetteer.
    let dataset = Dataset::from_records([
        "Berlin", "Bern", "Bonn", "Bremen", "Ulm", "Magdeburg", "Marburg", "Hamburg",
    ]);

    // The paper's two contenders: an optimized sequential scan and a
    // compressed prefix tree.
    let scan = SearchEngine::build(&dataset, EngineKind::Scan(SeqVariant::V4Flat));
    let index = SearchEngine::build(&dataset, EngineKind::Index(IdxVariant::I2Compressed));

    // "Berlyn" with one typo, threshold k = 1.
    let query = b"Berlyn";
    for engine in [&scan, &index] {
        let matches = engine.search(query, 1);
        println!("{}:", engine.name());
        for m in matches.iter() {
            println!(
                "  {:?} at distance {}",
                String::from_utf8_lossy(dataset.get(m.id)),
                m.distance
            );
        }
    }

    // Both engines always agree — the paper's correctness methodology.
    assert_eq!(scan.search(query, 1), index.search(query, 1));

    // The DP matrix of the paper's Figure 1: ed("AGGCGT", "AGAGT") = 2.
    let mut matrix = DpMatrix::new();
    let d = levenshtein_full_with(&mut matrix, b"AGGCGT", b"AGAGT");
    println!("\nFigure 1 worked example — ed(AGGCGT, AGAGT) = {d}:");
    println!("{matrix}");
}
