//! Similarity self-join — the other track of the EDBT/ICDT 2013
//! competition the paper was written for: find *all pairs* of records
//! within edit distance k (e.g. deduplicating a gazetteer).
//!
//! Compares the three join strategies and prints a sample of the
//! discovered near-duplicate pairs.
//!
//! ```sh
//! cargo run --release --example similarity_join
//! ```

use simsearch::core::join::{index_join, nested_loop_join, parallel_sorted_join, sorted_join};
use simsearch::core::{experiment::time, Strategy};
use simsearch::core::presets;

fn main() {
    let preset = presets::city(3_000);
    let ds = &preset.dataset;
    println!("joining {} city names at k = 1 ...\n", ds.len());

    let (reference, t_nested) = time(|| nested_loop_join(ds, 1));
    let (sorted, t_sorted) = time(|| sorted_join(ds, 1));
    let (indexed, t_index) = time(|| index_join(ds, 1));
    let (parallel, t_par) = time(|| {
        parallel_sorted_join(ds, 1, Strategy::FixedPool { threads: 4 })
    });
    assert_eq!(sorted, reference, "sorted join diverged");
    assert_eq!(indexed, reference, "index join diverged");
    assert_eq!(parallel, reference, "parallel join diverged");

    println!("{:<22} {:>10}", "algorithm", "time");
    for (name, t) in [
        ("nested loop", t_nested),
        ("length-sorted", t_sorted),
        ("index (radix probe)", t_index),
        ("sorted + pool(4)", t_par),
    ] {
        println!("{:<22} {:>8.1} ms", name, t.as_secs_f64() * 1e3);
    }

    println!("\n{} near-duplicate pairs; first few:", reference.len());
    for p in reference.iter().take(8) {
        println!(
            "  {:?} ~ {:?} (distance {})",
            String::from_utf8_lossy(ds.get(p.left)),
            String::from_utf8_lossy(ds.get(p.right)),
            p.distance
        );
    }
}
