//! Trie construction: insert every record, maintaining the per-node
//! min/max subtree lengths along the insertion path (§4.1: "the minimal
//! and maximal length of a data set will be stored in the nodes").

use super::node::{Node, NodeId, Trie, ROOT};
use simsearch_data::Dataset;

/// Builds the prefix tree for `dataset`.
pub fn build(dataset: &Dataset) -> Trie {
    let mut nodes = vec![Node::new()];
    if dataset.is_empty() {
        // Normalize the root's length interval (no insertions will
        // touch it).
        nodes[0].min_len = 0;
        nodes[0].max_len = 0;
    }
    for (id, record) in dataset.iter() {
        let len = record.len() as u32;
        let mut at: NodeId = ROOT;
        touch_lengths(&mut nodes, at, len);
        for &b in record {
            let next = match nodes[at as usize]
                .children
                .binary_search_by_key(&b, |&(c, _)| c)
            {
                Ok(i) => nodes[at as usize].children[i].1,
                Err(i) => {
                    let new_id = nodes.len() as NodeId;
                    nodes.push(Node::new());
                    nodes[at as usize].children.insert(i, (b, new_id));
                    new_id
                }
            };
            at = next;
            touch_lengths(&mut nodes, at, len);
        }
        nodes[at as usize].records.push(id);
    }
    Trie {
        nodes,
        record_count: dataset.len(),
    }
}

fn touch_lengths(nodes: &mut [Node], id: NodeId, len: u32) {
    let n = &mut nodes[id as usize];
    n.min_len = n.min_len.min(len);
    n.max_len = n.max_len.max(len);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::ROOT;

    #[test]
    fn paper_figure_4_uncompressed_node_count() {
        // Berlin, Bern, Ulm: root + B,e,r (shared) + l,i,n + n + U,l,m
        // = 1 + 3 + 3 + 1 + 3 = 11 nodes.
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm"]);
        let trie = build(&ds);
        assert_eq!(trie.node_count(), 11);
        assert_eq!(trie.record_count(), 3);
    }

    #[test]
    fn records_terminate_at_their_path() {
        let ds = Dataset::from_records(["ab", "abc", "b"]);
        let trie = build(&ds);
        let a = trie.node(ROOT).child(b'a').unwrap();
        let ab = trie.node(a).child(b'b').unwrap();
        assert_eq!(trie.node(ab).records(), &[0]);
        let abc = trie.node(ab).child(b'c').unwrap();
        assert_eq!(trie.node(abc).records(), &[1]);
        let b = trie.node(ROOT).child(b'b').unwrap();
        assert_eq!(trie.node(b).records(), &[2]);
    }

    #[test]
    fn min_max_lengths_are_subtree_aggregates() {
        let ds = Dataset::from_records(["a", "abcd", "ab"]);
        let trie = build(&ds);
        let root = trie.node(ROOT);
        assert_eq!(root.min_len(), 1);
        assert_eq!(root.max_len(), 4);
        let a = trie.node(root.child(b'a').unwrap());
        assert_eq!(a.min_len(), 1);
        assert_eq!(a.max_len(), 4);
        let ab = trie.node(a.child(b'b').unwrap());
        assert_eq!(ab.min_len(), 2);
        assert_eq!(ab.max_len(), 4);
    }

    #[test]
    fn duplicate_records_share_a_terminal() {
        let ds = Dataset::from_records(["x", "x"]);
        let trie = build(&ds);
        let x = trie.node(ROOT).child(b'x').unwrap();
        assert_eq!(trie.node(x).records(), &[0, 1]);
        assert_eq!(trie.node_count(), 2);
    }

    #[test]
    fn empty_record_terminates_at_root() {
        let ds = Dataset::from_records(["", "a"]);
        let trie = build(&ds);
        assert_eq!(trie.node(ROOT).records(), &[0]);
        assert_eq!(trie.node(ROOT).min_len(), 0);
    }

    #[test]
    fn children_stay_sorted() {
        let ds = Dataset::from_records(["zebra", "apple", "mango"]);
        let trie = build(&ds);
        let kids = trie.node(ROOT).children();
        assert_eq!(kids.len(), 3);
        assert!(kids.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
