//! Trie similarity search (§4.1): depth-first descent with incremental
//! DP and two prunes.
//!
//! * **Row prune** — once every cell of the current DP row exceeds `k`,
//!   no completion below the node can match
//!   ([`simsearch_distance::IncrementalDp::can_extend`]); this is the
//!   sound form of the paper's prefix condition (eq. (9)).
//! * **Length prune** — the node's min/max subtree lengths bound the
//!   achievable final distance from below
//!   ([`simsearch_distance::prefix_bound::length_interval_bound`]); this
//!   is the paper's `d_m` machinery (eq. (10)) in reject form.

use super::node::{NodeId, Trie, ROOT};
use crate::trace::SearchTrace;
use simsearch_data::{Match, MatchSet};
use simsearch_distance::prefix_bound::{completion_tolerance, length_interval_bound};
use simsearch_distance::IncrementalDp;

impl Trie {
    /// Returns every record within edit distance `k` of `query`, using
    /// the *modern* pruning (banded rows, row-minimum lemma, length
    /// intervals) — an extension beyond the paper; see
    /// [`Trie::search_paper`] for the faithful §4.1 descent.
    pub fn search(&self, query: &[u8], k: u32) -> MatchSet {
        self.search_traced(query, k).0
    }

    /// [`Trie::search`] with work counters.
    pub fn search_traced(&self, query: &[u8], k: u32) -> (MatchSet, SearchTrace) {
        let mut dp = IncrementalDp::new(query, k);
        let mut out = Vec::new();
        let mut trace = SearchTrace::default();
        self.descend(ROOT, query.len(), &mut dp, &mut out, &mut trace);
        (MatchSet::from_unsorted(out), trace)
    }

    /// Returns every record within edit distance `k` of `query` using
    /// the paper's §4.1 descent: full-width exact DP rows and the prefix
    /// condition `ed(x_0..i, y_0..i) ≤ k + d_m` (eqs. (9)/(10)), where
    /// `d_m` is the completion tolerance from the node's stored min/max
    /// subtree lengths.
    ///
    /// The condition is sound: splitting an optimal alignment of the
    /// query `x` and a record `y = p·s` at the prefix boundary shows
    /// `ed(x, y) ≥ ed(x_0..i, p) − | |x| − |y| |`, and `d_m` is the
    /// maximum of that length drift over the subtree.
    pub fn search_paper(&self, query: &[u8], k: u32) -> MatchSet {
        self.search_paper_traced(query, k).0
    }

    /// [`Trie::search_paper`] with work counters.
    pub fn search_paper_traced(&self, query: &[u8], k: u32) -> (MatchSet, SearchTrace) {
        let mut dp = IncrementalDp::new_unbounded(query, k);
        let mut out = Vec::new();
        let mut trace = SearchTrace::default();
        self.descend_paper(ROOT, query.len(), &mut dp, &mut out, &mut trace);
        (MatchSet::from_unsorted(out), trace)
    }

    /// Returns every record at *Hamming* distance ≤ `k` from `query` —
    /// the second measure PETER supports (paper §2.3). Only records of
    /// the query's exact length qualify; the descent tracks the mismatch
    /// budget and uses the stored min/max lengths to skip subtrees that
    /// cannot contain a record of the right length.
    pub fn search_hamming(&self, query: &[u8], k: u32) -> MatchSet {
        let mut out = Vec::new();
        self.descend_hamming(ROOT, query, k, 0, 0, &mut out);
        MatchSet::from_unsorted(out)
    }

    fn descend_hamming(
        &self,
        node: NodeId,
        query: &[u8],
        k: u32,
        depth: usize,
        mismatches: u32,
        out: &mut Vec<Match>,
    ) {
        let n = self.node(node);
        if depth == query.len() {
            // Records terminating here have exactly the query's length.
            out.extend(n.records.iter().map(|&id| Match::new(id, mismatches)));
            return;
        }
        for &(b, child) in &n.children {
            let c = self.node(child);
            if (c.min_len as usize) > query.len() || (c.max_len as usize) < query.len() {
                continue;
            }
            let mm = mismatches + u32::from(b != query[depth]);
            if mm > k {
                continue;
            }
            self.descend_hamming(child, query, k, depth + 1, mm, out);
        }
    }

    fn descend(
        &self,
        node: NodeId,
        qlen: usize,
        dp: &mut IncrementalDp,
        out: &mut Vec<Match>,
        trace: &mut SearchTrace,
    ) {
        let n = self.node(node);
        trace.nodes_visited += 1;
        if !n.records.is_empty() {
            if let Some(d) = dp.distance() {
                out.extend(n.records.iter().map(|&id| Match::new(id, d)));
            }
        }
        for &(b, child) in &n.children {
            let c = self.node(child);
            // Length prune before touching the DP.
            if length_interval_bound(qlen, c.min_len as usize, c.max_len as usize)
                > dp.threshold()
            {
                trace.subtrees_pruned += 1;
                continue;
            }
            dp.push(b);
            trace.rows_computed += 1;
            if dp.can_extend() {
                self.descend(child, qlen, dp, out, trace);
            } else {
                trace.subtrees_pruned += 1;
            }
            dp.pop();
        }
    }

    fn descend_paper(
        &self,
        node: NodeId,
        qlen: usize,
        dp: &mut IncrementalDp,
        out: &mut Vec<Match>,
        trace: &mut SearchTrace,
    ) {
        let n = self.node(node);
        trace.nodes_visited += 1;
        if !n.records.is_empty() {
            if let Some(d) = dp.distance() {
                out.extend(n.records.iter().map(|&id| Match::new(id, d)));
            }
        }
        // The paper's admission test for this node's children (eq. (9)):
        // the prefix distance may exceed k by at most the completion
        // tolerance d_m of the subtree.
        let d_m = completion_tolerance(qlen, n.min_len as usize, n.max_len as usize);
        if dp.prefix_distance() > dp.threshold() + d_m {
            trace.subtrees_pruned += 1;
            return;
        }
        for &(b, child) in &n.children {
            dp.push(b);
            trace.rows_computed += 1;
            self.descend_paper(child, qlen, dp, out, trace);
            dp.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::build;
    use simsearch_data::Dataset;
    use simsearch_distance::levenshtein;

    fn brute_force(ds: &Dataset, q: &[u8], k: u32) -> MatchSet {
        ds.iter()
            .filter_map(|(id, r)| {
                let d = levenshtein(q, r);
                (d <= k).then_some(Match::new(id, d))
            })
            .collect()
    }

    #[test]
    fn exact_search_finds_only_the_record() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Bonn", "Ulm"]);
        let trie = build(&ds);
        let res = trie.search(b"Bern", 0);
        assert_eq!(res.ids(), vec![1]);
        assert_eq!(res.matches()[0].distance, 0);
    }

    #[test]
    fn fuzzy_search_matches_brute_force() {
        let words = [
            "Berlin", "Bern", "Bonn", "Ulm", "Bärlin", "Berlingen", "B", "", "Ber",
        ];
        let ds = Dataset::from_records(words);
        let trie = build(&ds);
        for q in ["Berlin", "Bern", "Urm", "", "Xyz", "Berli"] {
            for k in 0..5 {
                assert_eq!(
                    trie.search(q.as_bytes(), k),
                    brute_force(&ds, q.as_bytes(), k),
                    "q={q} k={k}"
                );
            }
        }
    }

    #[test]
    fn empty_query_matches_short_records() {
        let ds = Dataset::from_records(["", "a", "ab", "abc"]);
        let trie = build(&ds);
        assert_eq!(trie.search(b"", 1).ids(), vec![0, 1]);
        assert_eq!(trie.search(b"", 2).ids(), vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_are_all_reported() {
        let ds = Dataset::from_records(["dup", "dup", "other"]);
        let trie = build(&ds);
        assert_eq!(trie.search(b"dup", 0).ids(), vec![0, 1]);
    }

    #[test]
    fn search_on_empty_trie() {
        let trie = build(&Dataset::new());
        assert!(trie.search(b"anything", 3).is_empty());
    }
}
