//! The paper's base index (§4.1): an uncompressed prefix tree with
//! per-node min/max subtree lengths.

mod builder;
mod node;
mod search;

pub use builder::build;
pub use node::{Node, NodeId, Trie, ROOT};
