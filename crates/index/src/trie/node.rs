//! Trie storage: an arena of nodes, children as sorted `(byte, child)`
//! pairs.
//!
//! Nodes live in one `Vec` and refer to each other by index — no
//! pointer-chasing allocation per node beyond its child list, and the
//! arena form makes node counting (Figure 4) and memory accounting
//! trivial.

use simsearch_data::RecordId;

/// Index of a node within the trie arena.
pub type NodeId = u32;

/// The arena index of the root node.
pub const ROOT: NodeId = 0;

/// One prefix-tree node.
///
/// Per the paper (§4.1, following PETER), every node carries the minimal
/// and maximal length of the records reachable in its subtree, enabling
/// "early cancellation of following the branches".
#[derive(Debug, Clone)]
pub struct Node {
    /// Sorted `(first byte, child node)` pairs.
    pub(crate) children: Vec<(u8, NodeId)>,
    /// Records whose full string ends at this node.
    pub(crate) records: Vec<RecordId>,
    /// Minimal record length in this subtree.
    pub(crate) min_len: u32,
    /// Maximal record length in this subtree.
    pub(crate) max_len: u32,
}

impl Node {
    pub(crate) fn new() -> Self {
        Self {
            children: Vec::new(),
            records: Vec::new(),
            min_len: u32::MAX,
            max_len: 0,
        }
    }

    /// Sorted `(byte, child)` pairs.
    pub fn children(&self) -> &[(u8, NodeId)] {
        &self.children
    }

    /// Records terminating at this node.
    pub fn records(&self) -> &[RecordId] {
        &self.records
    }

    /// Minimal record length below (and at) this node.
    pub fn min_len(&self) -> u32 {
        self.min_len
    }

    /// Maximal record length below (and at) this node.
    pub fn max_len(&self) -> u32 {
        self.max_len
    }

    /// Child for byte `b`, if present.
    pub fn child(&self, b: u8) -> Option<NodeId> {
        self.children
            .binary_search_by_key(&b, |&(c, _)| c)
            .ok()
            .map(|i| self.children[i].1)
    }
}

/// An uncompressed prefix tree over a dataset.
#[derive(Debug, Clone)]
pub struct Trie {
    pub(crate) nodes: Vec<Node>,
    pub(crate) record_count: usize,
}

impl Trie {
    /// Number of nodes, including the root (the Figure 4 metric).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of indexed records.
    pub fn record_count(&self) -> usize {
        self.record_count
    }

    /// Borrows a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Approximate heap footprint in bytes (for index-size reporting; the
    /// related work's motivating problem is exactly this number).
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self
                .nodes
                .iter()
                .map(|n| {
                    n.children.len() * std::mem::size_of::<(u8, NodeId)>()
                        + n.records.len() * std::mem::size_of::<RecordId>()
                })
                .sum::<usize>()
    }
}
