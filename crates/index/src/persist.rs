//! Index persistence: save a built [`crate::RadixTrie`] to disk and load
//! it back without rebuilding.
//!
//! At paper scale, building the compressed tree over 750k reads is the
//! expensive part of the index-based solution; a production deployment
//! builds once and memory-maps or reloads thereafter. The format is a
//! versioned little-endian binary dump of the arena vectors, validated
//! on load (magic, version, bounds), with no external serialization
//! dependency.

use crate::radix::{RadixNode, RadixTrie};
use simsearch_data::freq::FreqVector;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"SSRADIX\x01";

/// Writes the tree to `path`.
///
/// # Errors
/// Returns any underlying I/O error.
pub fn save_radix(path: &Path, trie: &RadixTrie) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(MAGIC)?;
    write_u64(&mut out, trie.record_count() as u64)?;
    write_u64(&mut out, trie.labels().len() as u64)?;
    out.write_all(trie.labels())?;
    write_u64(&mut out, trie.node_count() as u64)?;
    for i in 0..trie.node_count() {
        let n = trie.node(i as u32);
        write_u32(&mut out, n.label_range().0)?;
        write_u32(&mut out, n.label_range().1)?;
        write_u32(&mut out, n.min_len())?;
        write_u32(&mut out, n.max_len())?;
        write_u32(&mut out, n.children().len() as u32)?;
        for &(b, child) in n.children() {
            out.write_all(&[b])?;
            write_u32(&mut out, child)?;
        }
        write_u32(&mut out, n.records().len() as u32)?;
        for &id in n.records() {
            write_u32(&mut out, id)?;
        }
    }
    match trie.freq_parts() {
        Some((tracked, boxes)) => {
            out.write_all(&[1])?;
            out.write_all(&tracked)?;
            for (lo, hi) in boxes {
                for v in lo.counts.iter().chain(hi.counts.iter()) {
                    write_u32(&mut out, *v)?;
                }
            }
        }
        None => out.write_all(&[0])?,
    }
    out.flush()
}

/// Reads a tree previously written with [`save_radix`].
///
/// # Errors
/// Returns `InvalidData` for wrong magic/version or structurally
/// impossible contents, or any underlying I/O error.
pub fn load_radix(path: &Path) -> io::Result<RadixTrie> {
    let mut inp = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    inp.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("wrong magic/version"));
    }
    let record_count = read_u64(&mut inp)? as usize;
    let labels_len = read_u64(&mut inp)? as usize;
    let mut labels = Vec::new();
    // Bounded incremental read: a corrupted length fails at EOF instead
    // of reserving petabytes.
    inp.by_ref()
        .take(labels_len as u64)
        .read_to_end(&mut labels)?;
    if labels.len() != labels_len {
        return Err(bad("truncated label arena"));
    }
    let node_count = read_u64(&mut inp)? as usize;
    if node_count == 0 {
        return Err(bad("a radix tree has at least the root node"));
    }
    // Do not trust the count for pre-allocation (corrupted files would
    // otherwise trigger enormous reservations before any read fails).
    let mut nodes = Vec::with_capacity(node_count.min(1 << 16));
    for _ in 0..node_count {
        let label_start = read_u32(&mut inp)?;
        let label_len = read_u32(&mut inp)?;
        if label_start as u64 + label_len as u64 > labels_len as u64 {
            return Err(bad("label range out of bounds"));
        }
        let min_len = read_u32(&mut inp)?;
        let max_len = read_u32(&mut inp)?;
        let n_children = read_u32(&mut inp)? as usize;
        if n_children > 256 {
            return Err(bad("more than 256 children on one node"));
        }
        let mut children = Vec::with_capacity(n_children);
        for _ in 0..n_children {
            let mut b = [0u8; 1];
            inp.read_exact(&mut b)?;
            let child = read_u32(&mut inp)?;
            if child as usize >= node_count {
                return Err(bad("child id out of bounds"));
            }
            children.push((b[0], child));
        }
        let n_records = read_u32(&mut inp)? as usize;
        if n_records > record_count {
            return Err(bad("more terminal records than the dataset holds"));
        }
        let mut records = Vec::with_capacity(n_records);
        for _ in 0..n_records {
            let id = read_u32(&mut inp)?;
            if id as usize >= record_count {
                return Err(bad("record id out of bounds"));
            }
            records.push(id);
        }
        nodes.push(RadixNode::from_parts(
            label_start,
            label_len,
            children,
            records,
            min_len,
            max_len,
        ));
    }
    let mut flag = [0u8; 1];
    inp.read_exact(&mut flag)?;
    let freq = match flag[0] {
        0 => None,
        1 => {
            let mut tracked = [0u8; 5];
            inp.read_exact(&mut tracked)?;
            let mut boxes = Vec::with_capacity(node_count.min(1 << 16));
            for _ in 0..node_count {
                let mut lo = FreqVector::default();
                let mut hi = FreqVector::default();
                for v in lo.counts.iter_mut() {
                    *v = read_u32(&mut inp)?;
                }
                for v in hi.counts.iter_mut() {
                    *v = read_u32(&mut inp)?;
                }
                boxes.push((lo, hi));
            }
            Some((tracked, boxes))
        }
        _ => return Err(bad("bad frequency flag")),
    };
    Ok(RadixTrie::from_parts(nodes, labels, record_count, freq))
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("radix index file: {what}"))
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_data::Dataset;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("simsearch-persist-{}-{name}", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_search_results() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm", "Bärlin", "", "B"]);
        let trie = crate::radix::build(&ds);
        let path = tmp("plain");
        save_radix(&path, &trie).unwrap();
        let loaded = load_radix(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded.node_count(), trie.node_count());
        assert_eq!(loaded.record_count(), trie.record_count());
        for q in ["Berlin", "Urm", "", "Xy"] {
            for k in 0..4 {
                assert_eq!(
                    loaded.search(q.as_bytes(), k),
                    trie.search(q.as_bytes(), k),
                    "q={q} k={k}"
                );
                assert_eq!(
                    loaded.search_paper(q.as_bytes(), k),
                    trie.search_paper(q.as_bytes(), k)
                );
            }
        }
    }

    #[test]
    fn round_trip_with_freq_annotations() {
        let ds = Dataset::from_records(["AAAA", "AATT", "TTTT"]);
        let trie = crate::radix::build_with_freq(&ds, *b"ACGNT");
        let path = tmp("freq");
        save_radix(&path, &trie).unwrap();
        let loaded = load_radix(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(loaded.has_freq_annotations());
        assert_eq!(loaded.search(b"AAT", 2), trie.search(b"AAT", 2));
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTANIDX").unwrap();
        let err = load_radix(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_truncated_file() {
        let ds = Dataset::from_records(["abc", "abd"]);
        let trie = crate::radix::build(&ds);
        let path = tmp("trunc");
        save_radix(&path, &trie).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_radix(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_out_of_bounds_child() {
        let ds = Dataset::from_records(["ab"]);
        let trie = crate::radix::build(&ds);
        let path = tmp("bounds");
        save_radix(&path, &trie).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt somewhere in the node section: set a child id huge.
        let n = bytes.len();
        bytes[n - 6] = 0xFF;
        bytes[n - 5] = 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        // Either detected as InvalidData or fails to parse; must not panic.
        let _ = load_radix(&path);
        std::fs::remove_file(&path).unwrap();
    }
}
