//! Index persistence: save a built [`crate::RadixTrie`] to disk and load
//! it back without rebuilding.
//!
//! At paper scale, building the compressed tree over 750k reads is the
//! expensive part of the index-based solution; a production deployment
//! builds once and memory-maps or reloads thereafter. The format is a
//! versioned little-endian binary dump of the arena vectors, validated
//! on load (magic, version, bounds), with no external serialization
//! dependency.
//!
//! Version 2 appends an optional [`StatsSnapshot`] section — the input
//! the adaptive planner builds its cost model from — so a deployment
//! that persists the index can restore the *plan* together with the
//! structure instead of re-scanning the dataset. Load failures are
//! reported through the structured [`PersistError`]; a file written by
//! a different format version yields [`PersistError::VersionMismatch`]
//! (with both versions named), never a panic and never a misparse.

use crate::radix::{RadixNode, RadixTrie};
use simsearch_data::freq::FreqVector;
use simsearch_data::StatsSnapshot;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// First bytes of every radix dump, any version.
const MAGIC_PREFIX: &[u8; 7] = b"SSRADIX";

/// The format version this build writes (and the only one it reads).
/// Version 1 lacked the stats-snapshot section.
pub const FORMAT_VERSION: u8 = 2;

/// Why a radix index file could not be loaded.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying I/O failure (including unexpected EOF).
    Io(io::Error),
    /// The file is a radix index dump of a different format version.
    /// Callers can tell "rebuild and re-save" apart from "corrupt".
    VersionMismatch {
        /// Version byte found in the file.
        found: u8,
        /// Version this build understands ([`FORMAT_VERSION`]).
        expected: u8,
    },
    /// The file is not a radix index dump, or its contents are
    /// structurally impossible (out-of-bounds ids, bad flags, …).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "radix index file: {e}"),
            PersistError::VersionMismatch { found, expected } => write!(
                f,
                "radix index file: format version {found} (this build reads \
                 version {expected}); rebuild and re-save the index"
            ),
            PersistError::Corrupt(what) => write!(f, "radix index file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<PersistError> for io::Error {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Writes the tree to `path` (no stats section).
///
/// # Errors
/// Returns any underlying I/O error.
pub fn save_radix(path: &Path, trie: &RadixTrie) -> io::Result<()> {
    save_radix_with_stats(path, trie, None)
}

/// Writes the tree to `path`, optionally with the planner's statistics
/// snapshot so the adaptive plan can be restored alongside the index.
///
/// # Errors
/// Returns any underlying I/O error.
pub fn save_radix_with_stats(
    path: &Path,
    trie: &RadixTrie,
    stats: Option<&StatsSnapshot>,
) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(MAGIC_PREFIX)?;
    out.write_all(&[FORMAT_VERSION])?;
    write_u64(&mut out, trie.record_count() as u64)?;
    write_u64(&mut out, trie.labels().len() as u64)?;
    out.write_all(trie.labels())?;
    write_u64(&mut out, trie.node_count() as u64)?;
    for i in 0..trie.node_count() {
        let n = trie.node(i as u32);
        write_u32(&mut out, n.label_range().0)?;
        write_u32(&mut out, n.label_range().1)?;
        write_u32(&mut out, n.min_len())?;
        write_u32(&mut out, n.max_len())?;
        write_u32(&mut out, n.children().len() as u32)?;
        for &(b, child) in n.children() {
            out.write_all(&[b])?;
            write_u32(&mut out, child)?;
        }
        write_u32(&mut out, n.records().len() as u32)?;
        for &id in n.records() {
            write_u32(&mut out, id)?;
        }
    }
    match trie.freq_parts() {
        Some((tracked, boxes)) => {
            out.write_all(&[1])?;
            out.write_all(&tracked)?;
            for (lo, hi) in boxes {
                for v in lo.counts.iter().chain(hi.counts.iter()) {
                    write_u32(&mut out, *v)?;
                }
            }
        }
        None => out.write_all(&[0])?,
    }
    match stats {
        Some(snapshot) => {
            out.write_all(&[1])?;
            snapshot.write_to(&mut out)?;
        }
        None => out.write_all(&[0])?,
    }
    out.flush()
}

/// Reads a tree previously written with [`save_radix`], discarding any
/// stats section.
///
/// # Errors
/// Returns `InvalidData` for wrong magic/version or structurally
/// impossible contents, or any underlying I/O error. Use
/// [`load_radix_with_stats`] to receive the structured
/// [`PersistError`] instead.
pub fn load_radix(path: &Path) -> io::Result<RadixTrie> {
    load_radix_with_stats(path)
        .map(|(trie, _)| trie)
        .map_err(io::Error::from)
}

/// Reads a tree and, if the file carries one, the planner's statistics
/// snapshot saved with [`save_radix_with_stats`].
///
/// # Errors
/// [`PersistError::VersionMismatch`] when the file is a radix dump of
/// another format version, [`PersistError::Corrupt`] when it is not a
/// radix dump or is structurally impossible, [`PersistError::Io`] for
/// underlying I/O failures (including truncation).
pub fn load_radix_with_stats(path: &Path) -> Result<(RadixTrie, Option<StatsSnapshot>), PersistError> {
    let mut inp = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    inp.read_exact(&mut magic)?;
    if &magic[..7] != MAGIC_PREFIX {
        return Err(PersistError::Corrupt("wrong magic".into()));
    }
    if magic[7] != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: magic[7],
            expected: FORMAT_VERSION,
        });
    }
    let record_count = read_u64(&mut inp)? as usize;
    let labels_len = read_u64(&mut inp)? as usize;
    let mut labels = Vec::new();
    // Bounded incremental read: a corrupted length fails at EOF instead
    // of reserving petabytes.
    inp.by_ref()
        .take(labels_len as u64)
        .read_to_end(&mut labels)?;
    if labels.len() != labels_len {
        return Err(PersistError::Corrupt("truncated label arena".into()));
    }
    let node_count = read_u64(&mut inp)? as usize;
    if node_count == 0 {
        return Err(PersistError::Corrupt(
            "a radix tree has at least the root node".into(),
        ));
    }
    // Do not trust the count for pre-allocation (corrupted files would
    // otherwise trigger enormous reservations before any read fails).
    let mut nodes = Vec::with_capacity(node_count.min(1 << 16));
    for _ in 0..node_count {
        let label_start = read_u32(&mut inp)?;
        let label_len = read_u32(&mut inp)?;
        if label_start as u64 + label_len as u64 > labels_len as u64 {
            return Err(PersistError::Corrupt("label range out of bounds".into()));
        }
        let min_len = read_u32(&mut inp)?;
        let max_len = read_u32(&mut inp)?;
        let n_children = read_u32(&mut inp)? as usize;
        if n_children > 256 {
            return Err(PersistError::Corrupt(
                "more than 256 children on one node".into(),
            ));
        }
        let mut children = Vec::with_capacity(n_children);
        for _ in 0..n_children {
            let mut b = [0u8; 1];
            inp.read_exact(&mut b)?;
            let child = read_u32(&mut inp)?;
            if child as usize >= node_count {
                return Err(PersistError::Corrupt("child id out of bounds".into()));
            }
            children.push((b[0], child));
        }
        let n_records = read_u32(&mut inp)? as usize;
        if n_records > record_count {
            return Err(PersistError::Corrupt(
                "more terminal records than the dataset holds".into(),
            ));
        }
        let mut records = Vec::with_capacity(n_records);
        for _ in 0..n_records {
            let id = read_u32(&mut inp)?;
            if id as usize >= record_count {
                return Err(PersistError::Corrupt("record id out of bounds".into()));
            }
            records.push(id);
        }
        nodes.push(RadixNode::from_parts(
            label_start,
            label_len,
            children,
            records,
            min_len,
            max_len,
        ));
    }
    let mut flag = [0u8; 1];
    inp.read_exact(&mut flag)?;
    let freq = match flag[0] {
        0 => None,
        1 => {
            let mut tracked = [0u8; 5];
            inp.read_exact(&mut tracked)?;
            let mut boxes = Vec::with_capacity(node_count.min(1 << 16));
            for _ in 0..node_count {
                let mut lo = FreqVector::default();
                let mut hi = FreqVector::default();
                for v in lo.counts.iter_mut() {
                    *v = read_u32(&mut inp)?;
                }
                for v in hi.counts.iter_mut() {
                    *v = read_u32(&mut inp)?;
                }
                boxes.push((lo, hi));
            }
            Some((tracked, boxes))
        }
        _ => return Err(PersistError::Corrupt("bad frequency flag".into())),
    };
    let mut stats_flag = [0u8; 1];
    inp.read_exact(&mut stats_flag)?;
    let stats = match stats_flag[0] {
        0 => None,
        1 => Some(StatsSnapshot::read_from(&mut inp).map_err(|e| {
            // The snapshot parser reports its own structural checks as
            // InvalidData; surface those as corruption, not I/O.
            if e.kind() == io::ErrorKind::InvalidData {
                PersistError::Corrupt(e.to_string())
            } else {
                PersistError::Io(e)
            }
        })?),
        _ => return Err(PersistError::Corrupt("bad stats flag".into())),
    };
    Ok((RadixTrie::from_parts(nodes, labels, record_count, freq), stats))
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_data::Dataset;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("simsearch-persist-{}-{name}", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_search_results() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm", "Bärlin", "", "B"]);
        let trie = crate::radix::build(&ds);
        let path = tmp("plain");
        save_radix(&path, &trie).unwrap();
        let loaded = load_radix(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded.node_count(), trie.node_count());
        assert_eq!(loaded.record_count(), trie.record_count());
        for q in ["Berlin", "Urm", "", "Xy"] {
            for k in 0..4 {
                assert_eq!(
                    loaded.search(q.as_bytes(), k),
                    trie.search(q.as_bytes(), k),
                    "q={q} k={k}"
                );
                assert_eq!(
                    loaded.search_paper(q.as_bytes(), k),
                    trie.search_paper(q.as_bytes(), k)
                );
            }
        }
    }

    #[test]
    fn round_trip_with_freq_annotations() {
        let ds = Dataset::from_records(["AAAA", "AATT", "TTTT"]);
        let trie = crate::radix::build_with_freq(&ds, *b"ACGNT");
        let path = tmp("freq");
        save_radix(&path, &trie).unwrap();
        let loaded = load_radix(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(loaded.has_freq_annotations());
        assert_eq!(loaded.search(b"AAT", 2), trie.search(b"AAT", 2));
    }

    #[test]
    fn round_trip_carries_the_stats_snapshot() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm", ""]);
        let trie = crate::radix::build(&ds);
        let snapshot = StatsSnapshot::compute(&ds);
        let path = tmp("stats");
        save_radix_with_stats(&path, &trie, Some(&snapshot)).unwrap();
        let (loaded, restored) = load_radix_with_stats(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded.record_count(), trie.record_count());
        assert_eq!(restored.as_ref(), Some(&snapshot), "snapshot survives the disk trip");
        // A stats-less save restores None, not a default snapshot.
        let path = tmp("stats-none");
        save_radix_with_stats(&path, &trie, None).unwrap();
        let (_, restored) = load_radix_with_stats(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(restored.is_none());
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTANIDX").unwrap();
        let err = load_radix(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = load_radix_with_stats(&path).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_mismatch_is_a_structured_error() {
        let ds = Dataset::from_records(["ab"]);
        let trie = crate::radix::build(&ds);
        let path = tmp("version");
        save_radix(&path, &trie).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[7] = 1; // a version-1 dump (no stats section)
        std::fs::write(&path, &bytes).unwrap();
        let err = load_radix_with_stats(&path).unwrap_err();
        match err {
            PersistError::VersionMismatch { found, expected } => {
                assert_eq!(found, 1);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        // The io wrapper degrades it to InvalidData with the versions named.
        let err = load_radix(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version 1"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_truncated_file() {
        let ds = Dataset::from_records(["abc", "abd"]);
        let trie = crate::radix::build(&ds);
        let path = tmp("trunc");
        save_radix(&path, &trie).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_radix(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_stats_section_is_reported_as_corrupt() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm", ""]);
        let trie = crate::radix::build(&ds);
        let snapshot = StatsSnapshot::compute(&ds);
        let mut snap_bytes = Vec::new();
        snapshot.write_to(&mut snap_bytes).unwrap();
        let path = tmp("corrupt-stats");
        save_radix_with_stats(&path, &trie, Some(&snapshot)).unwrap();
        let good = std::fs::read(&path).unwrap();
        let snap_at = good.len() - snap_bytes.len();
        assert_eq!(&good[snap_at..], &snap_bytes[..], "snapshot is the final section");

        // Bad snapshot version byte inside an otherwise intact v2 file.
        let mut bad_version = good.clone();
        bad_version[snap_at] = 0xEE;
        std::fs::write(&path, &bad_version).unwrap();
        let err = load_radix_with_stats(&path).unwrap_err();
        assert!(
            matches!(&err, PersistError::Corrupt(m) if m.contains("version")),
            "expected Corrupt for a bad snapshot version, got {err:?}"
        );

        // Absurd bucket count: structurally impossible, not truncation.
        let mut bad_count = good.clone();
        // snapshot layout: version(1) + records(8) + symbols/min/max(12)
        // + total_bytes(8) + bucket_width(4), then the bucket count.
        let count_at = snap_at + 33;
        bad_count[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bad_count).unwrap();
        let err = load_radix_with_stats(&path).unwrap_err();
        assert!(
            matches!(&err, PersistError::Corrupt(m) if m.contains("bucket")),
            "expected Corrupt for an absurd bucket count, got {err:?}"
        );

        // An unknown stats-section flag is corruption too.
        let mut bad_flag = good.clone();
        bad_flag[snap_at - 1] = 7;
        std::fs::write(&path, &bad_flag).unwrap();
        let err = load_radix_with_stats(&path).unwrap_err();
        assert!(
            matches!(&err, PersistError::Corrupt(m) if m.contains("stats flag")),
            "expected Corrupt for a bad stats flag, got {err:?}"
        );

        // Truncation inside the snapshot stays an I/O error (EOF) so
        // callers can distinguish "short read" from "hostile bytes".
        std::fs::write(&path, &good[..good.len() - 4]).unwrap();
        let err = load_radix_with_stats(&path).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)), "{err:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_out_of_bounds_child() {
        let ds = Dataset::from_records(["ab"]);
        let trie = crate::radix::build(&ds);
        let path = tmp("bounds");
        save_radix(&path, &trie).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt somewhere in the node section: set a child id huge.
        let n = bytes.len();
        bytes[n - 6] = 0xFF;
        bytes[n - 5] = 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        // Either detected as InvalidData or fails to parse; must not panic.
        let _ = load_radix(&path);
        std::fs::remove_file(&path).unwrap();
    }
}
