//! Index persistence: save a built [`crate::RadixTrie`] to disk and load
//! it back without rebuilding.
//!
//! At paper scale, building the compressed tree over 750k reads is the
//! expensive part of the index-based solution; a production deployment
//! builds once and memory-maps or reloads thereafter. The format is a
//! versioned little-endian binary dump of the arena vectors, validated
//! on load (magic, version, bounds), with no external serialization
//! dependency.
//!
//! Version 2 appends an optional [`StatsSnapshot`] section — the input
//! the adaptive planner builds its cost model from — so a deployment
//! that persists the index can restore the *plan* together with the
//! structure instead of re-scanning the dataset. Version 3 appends an
//! optional [`CalibrationRecord`]: the measured per-(arm, class) cost
//! multipliers a self-tuning daemon derived from live latency
//! histograms, together with the [`StatsSnapshot`] they were measured
//! against so a loader can invalidate stale calibration. Version-2
//! files still load (they simply carry no calibration). Load failures
//! are reported through the structured [`PersistError`]; a file written
//! by an unknown format version yields [`PersistError::VersionMismatch`]
//! (with both versions named), never a panic and never a misparse.

use crate::radix::{RadixNode, RadixTrie};
use simsearch_data::freq::FreqVector;
use simsearch_data::StatsSnapshot;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// First bytes of every radix dump, any version.
const MAGIC_PREFIX: &[u8; 7] = b"SSRADIX";

/// The format version this build writes. Version 1 lacked the
/// stats-snapshot section; version 2 lacked the calibration section.
pub const FORMAT_VERSION: u8 = 3;

/// Oldest format version this build still reads. Version-2 files load
/// with no calibration record; version-1 files predate the stats
/// section and must be rebuilt.
pub const MIN_READ_VERSION: u8 = 2;

/// Measured cost-model state persisted alongside the index: the
/// per-(arm, class) multipliers a self-tuning daemon learned from live
/// latency histograms, plus a separate multiplier row for the top-k
/// iterative-deepening cost curve.
///
/// The embedded [`StatsSnapshot`] is the dataset fingerprint the
/// calibration was measured against. Loaders compare it with a freshly
/// computed snapshot and discard the record on mismatch — yesterday's
/// multipliers only transfer to today's daemon when the data
/// distribution they were measured on is still the data being served.
///
/// Arm names are stored as strings (not enum discriminants) so the
/// index crate stays below the planner in the dependency graph and a
/// record written by a build with a different arm roster is detected by
/// name, not silently misassigned by position.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationRecord {
    /// Fingerprint of the dataset the multipliers were measured on.
    pub snapshot: StatsSnapshot,
    /// Arm names, one per multiplier column, in planner order.
    pub arms: Vec<String>,
    /// Per-query-class rows of per-arm multipliers (`rows × arms`).
    pub class_multipliers: Vec<Vec<f64>>,
    /// Per-arm multipliers for the top-k deepening cost curve.
    pub topk_multipliers: Vec<f64>,
}

/// Hard bounds on a [`CalibrationRecord`] as stored on disk. A file
/// claiming more is structurally impossible, not merely large.
const MAX_CALIBRATION_ARMS: usize = 64;
const MAX_ARM_NAME_LEN: usize = 64;
const MAX_CALIBRATION_ROWS: usize = 4096;

/// Why a radix index file could not be loaded.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying I/O failure (including unexpected EOF).
    Io(io::Error),
    /// The file is a radix index dump of a different format version.
    /// Callers can tell "rebuild and re-save" apart from "corrupt".
    VersionMismatch {
        /// Version byte found in the file.
        found: u8,
        /// Version this build understands ([`FORMAT_VERSION`]).
        expected: u8,
    },
    /// The file is not a radix index dump, or its contents are
    /// structurally impossible (out-of-bounds ids, bad flags, …).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "radix index file: {e}"),
            PersistError::VersionMismatch { found, expected } => write!(
                f,
                "radix index file: format version {found} (this build reads \
                 version {expected}); rebuild and re-save the index"
            ),
            PersistError::Corrupt(what) => write!(f, "radix index file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<PersistError> for io::Error {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Writes the tree to `path` (no stats section).
///
/// # Errors
/// Returns any underlying I/O error.
pub fn save_radix(path: &Path, trie: &RadixTrie) -> io::Result<()> {
    save_radix_with_stats(path, trie, None)
}

/// Writes the tree to `path`, optionally with the planner's statistics
/// snapshot so the adaptive plan can be restored alongside the index.
///
/// # Errors
/// Returns any underlying I/O error.
pub fn save_radix_with_stats(
    path: &Path,
    trie: &RadixTrie,
    stats: Option<&StatsSnapshot>,
) -> io::Result<()> {
    save_radix_with_calibration(path, trie, stats, None)
}

/// Writes the tree to `path` with optional stats and calibration
/// sections. This is the full v3 writer; the narrower save functions
/// delegate here.
///
/// # Errors
/// Returns any underlying I/O error, or `InvalidData` when the
/// calibration record exceeds the format's structural bounds (arm
/// count, name length, row count) or contains non-finite multipliers —
/// such a record would be rejected as corrupt on load, so refusing to
/// write it keeps every saved file loadable.
pub fn save_radix_with_calibration(
    path: &Path,
    trie: &RadixTrie,
    stats: Option<&StatsSnapshot>,
    calibration: Option<&CalibrationRecord>,
) -> io::Result<()> {
    if let Some(record) = calibration {
        validate_calibration(record).map_err(io::Error::from)?;
    }
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(MAGIC_PREFIX)?;
    out.write_all(&[FORMAT_VERSION])?;
    write_u64(&mut out, trie.record_count() as u64)?;
    write_u64(&mut out, trie.labels().len() as u64)?;
    out.write_all(trie.labels())?;
    write_u64(&mut out, trie.node_count() as u64)?;
    for i in 0..trie.node_count() {
        let n = trie.node(i as u32);
        write_u32(&mut out, n.label_range().0)?;
        write_u32(&mut out, n.label_range().1)?;
        write_u32(&mut out, n.min_len())?;
        write_u32(&mut out, n.max_len())?;
        write_u32(&mut out, n.children().len() as u32)?;
        for &(b, child) in n.children() {
            out.write_all(&[b])?;
            write_u32(&mut out, child)?;
        }
        write_u32(&mut out, n.records().len() as u32)?;
        for &id in n.records() {
            write_u32(&mut out, id)?;
        }
    }
    match trie.freq_parts() {
        Some((tracked, boxes)) => {
            out.write_all(&[1])?;
            out.write_all(&tracked)?;
            for (lo, hi) in boxes {
                for v in lo.counts.iter().chain(hi.counts.iter()) {
                    write_u32(&mut out, *v)?;
                }
            }
        }
        None => out.write_all(&[0])?,
    }
    match stats {
        Some(snapshot) => {
            out.write_all(&[1])?;
            snapshot.write_to(&mut out)?;
        }
        None => out.write_all(&[0])?,
    }
    match calibration {
        Some(record) => {
            out.write_all(&[1])?;
            write_u32(&mut out, record.arms.len() as u32)?;
            for arm in &record.arms {
                write_u32(&mut out, arm.len() as u32)?;
                out.write_all(arm.as_bytes())?;
            }
            write_u32(&mut out, record.class_multipliers.len() as u32)?;
            for row in &record.class_multipliers {
                for &m in row {
                    out.write_all(&m.to_le_bytes())?;
                }
            }
            for &m in &record.topk_multipliers {
                out.write_all(&m.to_le_bytes())?;
            }
            record.snapshot.write_to(&mut out)?;
        }
        None => out.write_all(&[0])?,
    }
    out.flush()
}

/// Structural checks shared by the writer (refuse to emit) and the
/// reader (report [`PersistError::Corrupt`]).
fn validate_calibration(record: &CalibrationRecord) -> Result<(), PersistError> {
    if record.arms.is_empty() || record.arms.len() > MAX_CALIBRATION_ARMS {
        return Err(PersistError::Corrupt(format!(
            "calibration arm count {} outside 1..={MAX_CALIBRATION_ARMS}",
            record.arms.len()
        )));
    }
    for arm in &record.arms {
        if arm.is_empty() || arm.len() > MAX_ARM_NAME_LEN {
            return Err(PersistError::Corrupt(format!(
                "calibration arm name length {} outside 1..={MAX_ARM_NAME_LEN}",
                arm.len()
            )));
        }
    }
    if record.class_multipliers.len() > MAX_CALIBRATION_ROWS {
        return Err(PersistError::Corrupt(format!(
            "calibration row count {} over the {MAX_CALIBRATION_ROWS} cap",
            record.class_multipliers.len()
        )));
    }
    if record.topk_multipliers.len() != record.arms.len()
        || record
            .class_multipliers
            .iter()
            .any(|row| row.len() != record.arms.len())
    {
        return Err(PersistError::Corrupt(
            "calibration multiplier row width disagrees with the arm count".into(),
        ));
    }
    let all = record
        .class_multipliers
        .iter()
        .flatten()
        .chain(record.topk_multipliers.iter());
    for &m in all {
        if !m.is_finite() || m <= 0.0 {
            return Err(PersistError::Corrupt(format!(
                "calibration multiplier {m} is not finite and positive"
            )));
        }
    }
    Ok(())
}

/// Reads a tree previously written with [`save_radix`], discarding any
/// stats section.
///
/// # Errors
/// Returns `InvalidData` for wrong magic/version or structurally
/// impossible contents, or any underlying I/O error. Use
/// [`load_radix_with_stats`] to receive the structured
/// [`PersistError`] instead.
pub fn load_radix(path: &Path) -> io::Result<RadixTrie> {
    load_radix_with_stats(path)
        .map(|(trie, _)| trie)
        .map_err(io::Error::from)
}

/// Reads a tree and, if the file carries one, the planner's statistics
/// snapshot saved with [`save_radix_with_stats`].
///
/// # Errors
/// [`PersistError::VersionMismatch`] when the file is a radix dump of
/// another format version, [`PersistError::Corrupt`] when it is not a
/// radix dump or is structurally impossible, [`PersistError::Io`] for
/// underlying I/O failures (including truncation).
pub fn load_radix_with_stats(path: &Path) -> Result<(RadixTrie, Option<StatsSnapshot>), PersistError> {
    load_radix_full(path).map(|(trie, stats, _)| (trie, stats))
}

/// Reads a tree plus both optional sections: the planner's statistics
/// snapshot and the persisted [`CalibrationRecord`]. Version-2 files
/// load with `None` calibration.
///
/// # Errors
/// Same contract as [`load_radix_with_stats`]; a structurally invalid
/// calibration section (bad bounds, non-finite multipliers, malformed
/// UTF-8 arm name) is [`PersistError::Corrupt`], truncation inside it
/// stays [`PersistError::Io`].
pub fn load_radix_full(
    path: &Path,
) -> Result<(RadixTrie, Option<StatsSnapshot>, Option<CalibrationRecord>), PersistError> {
    let mut inp = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    inp.read_exact(&mut magic)?;
    if &magic[..7] != MAGIC_PREFIX {
        return Err(PersistError::Corrupt("wrong magic".into()));
    }
    let version = magic[7];
    if !(MIN_READ_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(PersistError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let record_count = read_u64(&mut inp)? as usize;
    let labels_len = read_u64(&mut inp)? as usize;
    let mut labels = Vec::new();
    // Bounded incremental read: a corrupted length fails at EOF instead
    // of reserving petabytes.
    inp.by_ref()
        .take(labels_len as u64)
        .read_to_end(&mut labels)?;
    if labels.len() != labels_len {
        return Err(PersistError::Corrupt("truncated label arena".into()));
    }
    let node_count = read_u64(&mut inp)? as usize;
    if node_count == 0 {
        return Err(PersistError::Corrupt(
            "a radix tree has at least the root node".into(),
        ));
    }
    // Do not trust the count for pre-allocation (corrupted files would
    // otherwise trigger enormous reservations before any read fails).
    let mut nodes = Vec::with_capacity(node_count.min(1 << 16));
    for _ in 0..node_count {
        let label_start = read_u32(&mut inp)?;
        let label_len = read_u32(&mut inp)?;
        if label_start as u64 + label_len as u64 > labels_len as u64 {
            return Err(PersistError::Corrupt("label range out of bounds".into()));
        }
        let min_len = read_u32(&mut inp)?;
        let max_len = read_u32(&mut inp)?;
        let n_children = read_u32(&mut inp)? as usize;
        if n_children > 256 {
            return Err(PersistError::Corrupt(
                "more than 256 children on one node".into(),
            ));
        }
        let mut children = Vec::with_capacity(n_children);
        for _ in 0..n_children {
            let mut b = [0u8; 1];
            inp.read_exact(&mut b)?;
            let child = read_u32(&mut inp)?;
            if child as usize >= node_count {
                return Err(PersistError::Corrupt("child id out of bounds".into()));
            }
            children.push((b[0], child));
        }
        let n_records = read_u32(&mut inp)? as usize;
        if n_records > record_count {
            return Err(PersistError::Corrupt(
                "more terminal records than the dataset holds".into(),
            ));
        }
        let mut records = Vec::with_capacity(n_records);
        for _ in 0..n_records {
            let id = read_u32(&mut inp)?;
            if id as usize >= record_count {
                return Err(PersistError::Corrupt("record id out of bounds".into()));
            }
            records.push(id);
        }
        nodes.push(RadixNode::from_parts(
            label_start,
            label_len,
            children,
            records,
            min_len,
            max_len,
        ));
    }
    let mut flag = [0u8; 1];
    inp.read_exact(&mut flag)?;
    let freq = match flag[0] {
        0 => None,
        1 => {
            let mut tracked = [0u8; 5];
            inp.read_exact(&mut tracked)?;
            let mut boxes = Vec::with_capacity(node_count.min(1 << 16));
            for _ in 0..node_count {
                let mut lo = FreqVector::default();
                let mut hi = FreqVector::default();
                for v in lo.counts.iter_mut() {
                    *v = read_u32(&mut inp)?;
                }
                for v in hi.counts.iter_mut() {
                    *v = read_u32(&mut inp)?;
                }
                boxes.push((lo, hi));
            }
            Some((tracked, boxes))
        }
        _ => return Err(PersistError::Corrupt("bad frequency flag".into())),
    };
    let mut stats_flag = [0u8; 1];
    inp.read_exact(&mut stats_flag)?;
    let stats = match stats_flag[0] {
        0 => None,
        1 => Some(StatsSnapshot::read_from(&mut inp).map_err(|e| {
            // The snapshot parser reports its own structural checks as
            // InvalidData; surface those as corruption, not I/O.
            if e.kind() == io::ErrorKind::InvalidData {
                PersistError::Corrupt(e.to_string())
            } else {
                PersistError::Io(e)
            }
        })?),
        _ => return Err(PersistError::Corrupt("bad stats flag".into())),
    };
    let calibration = if version >= 3 {
        let mut calib_flag = [0u8; 1];
        inp.read_exact(&mut calib_flag)?;
        match calib_flag[0] {
            0 => None,
            1 => Some(read_calibration(&mut inp)?),
            _ => return Err(PersistError::Corrupt("bad calibration flag".into())),
        }
    } else {
        None
    };
    Ok((
        RadixTrie::from_parts(nodes, labels, record_count, freq),
        stats,
        calibration,
    ))
}

fn read_calibration<R: Read>(inp: &mut R) -> Result<CalibrationRecord, PersistError> {
    let arm_count = read_u32(inp)? as usize;
    if arm_count == 0 || arm_count > MAX_CALIBRATION_ARMS {
        return Err(PersistError::Corrupt(format!(
            "calibration arm count {arm_count} outside 1..={MAX_CALIBRATION_ARMS}"
        )));
    }
    let mut arms = Vec::with_capacity(arm_count);
    for _ in 0..arm_count {
        let len = read_u32(inp)? as usize;
        if len == 0 || len > MAX_ARM_NAME_LEN {
            return Err(PersistError::Corrupt(format!(
                "calibration arm name length {len} outside 1..={MAX_ARM_NAME_LEN}"
            )));
        }
        let mut bytes = vec![0u8; len];
        inp.read_exact(&mut bytes)?;
        let name = String::from_utf8(bytes)
            .map_err(|_| PersistError::Corrupt("calibration arm name is not UTF-8".into()))?;
        arms.push(name);
    }
    let row_count = read_u32(inp)? as usize;
    if row_count > MAX_CALIBRATION_ROWS {
        return Err(PersistError::Corrupt(format!(
            "calibration row count {row_count} over the {MAX_CALIBRATION_ROWS} cap"
        )));
    }
    let mut class_multipliers = Vec::with_capacity(row_count);
    for _ in 0..row_count {
        let mut row = Vec::with_capacity(arm_count);
        for _ in 0..arm_count {
            row.push(read_f64(inp)?);
        }
        class_multipliers.push(row);
    }
    let mut topk_multipliers = Vec::with_capacity(arm_count);
    for _ in 0..arm_count {
        topk_multipliers.push(read_f64(inp)?);
    }
    let snapshot = StatsSnapshot::read_from(inp).map_err(|e| {
        if e.kind() == io::ErrorKind::InvalidData {
            PersistError::Corrupt(e.to_string())
        } else {
            PersistError::Io(e)
        }
    })?;
    let record = CalibrationRecord {
        snapshot,
        arms,
        class_multipliers,
        topk_multipliers,
    };
    validate_calibration(&record)?;
    Ok(record)
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_data::Dataset;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("simsearch-persist-{}-{name}", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_search_results() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm", "Bärlin", "", "B"]);
        let trie = crate::radix::build(&ds);
        let path = tmp("plain");
        save_radix(&path, &trie).unwrap();
        let loaded = load_radix(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded.node_count(), trie.node_count());
        assert_eq!(loaded.record_count(), trie.record_count());
        for q in ["Berlin", "Urm", "", "Xy"] {
            for k in 0..4 {
                assert_eq!(
                    loaded.search(q.as_bytes(), k),
                    trie.search(q.as_bytes(), k),
                    "q={q} k={k}"
                );
                assert_eq!(
                    loaded.search_paper(q.as_bytes(), k),
                    trie.search_paper(q.as_bytes(), k)
                );
            }
        }
    }

    #[test]
    fn round_trip_with_freq_annotations() {
        let ds = Dataset::from_records(["AAAA", "AATT", "TTTT"]);
        let trie = crate::radix::build_with_freq(&ds, *b"ACGNT");
        let path = tmp("freq");
        save_radix(&path, &trie).unwrap();
        let loaded = load_radix(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(loaded.has_freq_annotations());
        assert_eq!(loaded.search(b"AAT", 2), trie.search(b"AAT", 2));
    }

    #[test]
    fn round_trip_carries_the_stats_snapshot() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm", ""]);
        let trie = crate::radix::build(&ds);
        let snapshot = StatsSnapshot::compute(&ds);
        let path = tmp("stats");
        save_radix_with_stats(&path, &trie, Some(&snapshot)).unwrap();
        let (loaded, restored) = load_radix_with_stats(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded.record_count(), trie.record_count());
        assert_eq!(restored.as_ref(), Some(&snapshot), "snapshot survives the disk trip");
        // A stats-less save restores None, not a default snapshot.
        let path = tmp("stats-none");
        save_radix_with_stats(&path, &trie, None).unwrap();
        let (_, restored) = load_radix_with_stats(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(restored.is_none());
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTANIDX").unwrap();
        let err = load_radix(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = load_radix_with_stats(&path).unwrap_err();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_mismatch_is_a_structured_error() {
        let ds = Dataset::from_records(["ab"]);
        let trie = crate::radix::build(&ds);
        let path = tmp("version");
        save_radix(&path, &trie).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[7] = 1; // a version-1 dump (no stats section)
        std::fs::write(&path, &bytes).unwrap();
        let err = load_radix_with_stats(&path).unwrap_err();
        match err {
            PersistError::VersionMismatch { found, expected } => {
                assert_eq!(found, 1);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        // The io wrapper degrades it to InvalidData with the versions named.
        let err = load_radix(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version 1"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_truncated_file() {
        let ds = Dataset::from_records(["abc", "abd"]);
        let trie = crate::radix::build(&ds);
        let path = tmp("trunc");
        save_radix(&path, &trie).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load_radix(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_stats_section_is_reported_as_corrupt() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm", ""]);
        let trie = crate::radix::build(&ds);
        let snapshot = StatsSnapshot::compute(&ds);
        let mut snap_bytes = Vec::new();
        snapshot.write_to(&mut snap_bytes).unwrap();
        let path = tmp("corrupt-stats");
        save_radix_with_stats(&path, &trie, Some(&snapshot)).unwrap();
        let good = std::fs::read(&path).unwrap();
        // v3 layout: … stats snapshot, then the calibration flag (0 here).
        let snap_at = good.len() - snap_bytes.len() - 1;
        assert_eq!(
            &good[snap_at..good.len() - 1],
            &snap_bytes[..],
            "snapshot sits just before the calibration flag"
        );

        // Bad snapshot version byte inside an otherwise intact v2 file.
        let mut bad_version = good.clone();
        bad_version[snap_at] = 0xEE;
        std::fs::write(&path, &bad_version).unwrap();
        let err = load_radix_with_stats(&path).unwrap_err();
        assert!(
            matches!(&err, PersistError::Corrupt(m) if m.contains("version")),
            "expected Corrupt for a bad snapshot version, got {err:?}"
        );

        // Absurd bucket count: structurally impossible, not truncation.
        let mut bad_count = good.clone();
        // snapshot layout: version(1) + records(8) + symbols/min/max(12)
        // + total_bytes(8) + bucket_width(4), then the bucket count.
        let count_at = snap_at + 33;
        bad_count[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bad_count).unwrap();
        let err = load_radix_with_stats(&path).unwrap_err();
        assert!(
            matches!(&err, PersistError::Corrupt(m) if m.contains("bucket")),
            "expected Corrupt for an absurd bucket count, got {err:?}"
        );

        // An unknown stats-section flag is corruption too.
        let mut bad_flag = good.clone();
        bad_flag[snap_at - 1] = 7;
        std::fs::write(&path, &bad_flag).unwrap();
        let err = load_radix_with_stats(&path).unwrap_err();
        assert!(
            matches!(&err, PersistError::Corrupt(m) if m.contains("stats flag")),
            "expected Corrupt for a bad stats flag, got {err:?}"
        );

        // Truncation inside the snapshot stays an I/O error (EOF) so
        // callers can distinguish "short read" from "hostile bytes".
        std::fs::write(&path, &good[..good.len() - 4]).unwrap();
        let err = load_radix_with_stats(&path).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)), "{err:?}");
        std::fs::remove_file(&path).unwrap();
    }

    fn sample_calibration(snapshot: StatsSnapshot) -> CalibrationRecord {
        CalibrationRecord {
            snapshot,
            arms: vec!["scan-flat".into(), "scan-sorted".into(), "radix".into()],
            class_multipliers: vec![
                vec![1.0, 0.25, 3.5],
                vec![0.125, 2.0, 1.0],
                vec![1.0 + f64::EPSILON, 1e-9, 1e9],
            ],
            topk_multipliers: vec![0.5, 1.0, 7.25],
        }
    }

    #[test]
    fn calibration_round_trip_is_bit_for_bit() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm", ""]);
        let trie = crate::radix::build(&ds);
        let snapshot = StatsSnapshot::compute(&ds);
        let record = sample_calibration(snapshot.clone());
        let path = tmp("calib");
        save_radix_with_calibration(&path, &trie, Some(&snapshot), Some(&record)).unwrap();
        let (loaded, stats, restored) = load_radix_full(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded.record_count(), trie.record_count());
        assert_eq!(stats.as_ref(), Some(&snapshot));
        let restored = restored.expect("calibration section restored");
        assert_eq!(restored.arms, record.arms);
        assert_eq!(restored.snapshot, record.snapshot);
        // f64 equality on purpose: the wire format is to_le_bytes /
        // from_le_bytes, so the decision table must survive exactly —
        // a near-tie between two arms must not flip across a restart.
        for (a, b) in restored
            .class_multipliers
            .iter()
            .flatten()
            .chain(restored.topk_multipliers.iter())
            .zip(
                record
                    .class_multipliers
                    .iter()
                    .flatten()
                    .chain(record.topk_multipliers.iter()),
            )
        {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-for-bit multiplier");
        }
        // A calibration-less save restores None, not a default record.
        save_radix_with_calibration(&path, &trie, Some(&snapshot), None).unwrap();
        let (_, _, restored) = load_radix_full(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(restored.is_none());
    }

    #[test]
    fn version_2_files_load_with_no_calibration() {
        let ds = Dataset::from_records(["Berlin", "Bern"]);
        let trie = crate::radix::build(&ds);
        let snapshot = StatsSnapshot::compute(&ds);
        let path = tmp("v2-compat");
        save_radix_with_stats(&path, &trie, Some(&snapshot)).unwrap();
        // A v2 file is exactly a no-calibration v3 file minus the
        // trailing calibration flag, with the version byte lowered.
        let mut bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.pop(), Some(0), "trailing byte is the calibration flag");
        bytes[7] = 2;
        std::fs::write(&path, &bytes).unwrap();
        let (loaded, stats, calibration) = load_radix_full(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded.record_count(), trie.record_count());
        assert_eq!(stats, Some(snapshot));
        assert!(calibration.is_none(), "v2 carries no calibration");
    }

    #[test]
    fn corrupted_calibration_section_is_reported_as_corrupt() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm", ""]);
        let trie = crate::radix::build(&ds);
        let snapshot = StatsSnapshot::compute(&ds);
        let record = sample_calibration(snapshot.clone());
        let path = tmp("calib-bad");
        save_radix_with_calibration(&path, &trie, Some(&snapshot), Some(&record)).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Locate the calibration section: it starts right after the
        // stats snapshot with flag 1 then the arm count.
        let mut section = Vec::new();
        section.push(1u8);
        section.extend_from_slice(&(record.arms.len() as u32).to_le_bytes());
        let calib_at = good
            .windows(section.len())
            .rposition(|w| w == &section[..])
            .expect("calibration section present");

        // Absurd arm count.
        let mut bad = good.clone();
        bad[calib_at + 1..calib_at + 5].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        let err = load_radix_full(&path).unwrap_err();
        assert!(
            matches!(&err, PersistError::Corrupt(m) if m.contains("arm count")),
            "expected Corrupt for an absurd arm count, got {err:?}"
        );

        // NaN multiplier: first multiplier sits after the flag, the
        // arm count, the three names (each 4-byte length + bytes), and
        // the row count.
        let names_len: usize = record.arms.iter().map(|a| 4 + a.len()).sum();
        let mult_at = calib_at + 1 + 4 + names_len + 4;
        let mut bad = good.clone();
        bad[mult_at..mult_at + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        let err = load_radix_full(&path).unwrap_err();
        assert!(
            matches!(&err, PersistError::Corrupt(m) if m.contains("finite")),
            "expected Corrupt for a NaN multiplier, got {err:?}"
        );

        // Unknown calibration flag.
        let mut bad = good.clone();
        bad[calib_at] = 9;
        std::fs::write(&path, &bad).unwrap();
        let err = load_radix_full(&path).unwrap_err();
        assert!(
            matches!(&err, PersistError::Corrupt(m) if m.contains("calibration flag")),
            "expected Corrupt for a bad calibration flag, got {err:?}"
        );

        // Truncation inside the calibration section stays an I/O error.
        std::fs::write(&path, &good[..good.len() - 3]).unwrap();
        let err = load_radix_full(&path).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)), "{err:?}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_refuses_a_record_it_could_not_reload() {
        let ds = Dataset::from_records(["ab"]);
        let trie = crate::radix::build(&ds);
        let snapshot = StatsSnapshot::compute(&ds);
        let path = tmp("calib-refuse");
        let mut record = sample_calibration(snapshot.clone());
        record.class_multipliers[0][1] = f64::INFINITY;
        let err = save_radix_with_calibration(&path, &trie, Some(&snapshot), Some(&record))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let mut record = sample_calibration(snapshot.clone());
        record.topk_multipliers.pop();
        let err = save_radix_with_calibration(&path, &trie, Some(&snapshot), Some(&record))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(!path.exists(), "refused before creating the file");
    }

    #[test]
    fn rejects_out_of_bounds_child() {
        let ds = Dataset::from_records(["ab"]);
        let trie = crate::radix::build(&ds);
        let path = tmp("bounds");
        save_radix(&path, &trie).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Corrupt somewhere in the node section: set a child id huge.
        let n = bytes.len();
        bytes[n - 6] = 0xFF;
        bytes[n - 5] = 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        // Either detected as InvalidData or fails to parse; must not panic.
        let _ = load_radix(&path);
        std::fs::remove_file(&path).unwrap();
    }
}
