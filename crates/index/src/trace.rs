//! Search-cost traces: how much work a trie descent actually did.
//!
//! The paper's tables compare wall-clock times; these counters expose
//! the underlying quantities — nodes visited and DP rows computed — so
//! the prune-mode analysis in EXPERIMENTS.md can show *why* one descent
//! beats another.

/// Work counters accumulated during one (or more) trie searches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchTrace {
    /// Trie nodes whose children were considered.
    pub nodes_visited: u64,
    /// Symbols pushed into the incremental DP (= DP rows computed).
    pub rows_computed: u64,
    /// Subtrees skipped by a pruning rule.
    pub subtrees_pruned: u64,
}

impl SearchTrace {
    /// Component-wise accumulation.
    pub fn add(&mut self, other: &SearchTrace) {
        self.nodes_visited += other.nodes_visited;
        self.rows_computed += other.rows_computed;
        self.subtrees_pruned += other.subtrees_pruned;
    }
}

impl std::fmt::Display for SearchTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} rows, {} pruned",
            self.nodes_visited, self.rows_computed, self.subtrees_pruned
        )
    }
}
