//! Length-bucketed scan — the paper's §6 "Sorting" future-work item:
//! *"Can a pre-sorting by length or alphabet reduce the execution time?"*
//!
//! Records are grouped by length at build time. A query with threshold
//! `k` only scans buckets whose length lies in
//! `[|q| − k, |q| + k]` — the length filter applied wholesale instead of
//! per record, with the bucket layout also improving locality (all
//! same-length records are contiguous). The `ablation_sorting` benchmark
//! answers the paper's question.

use simsearch_data::{Dataset, Match, MatchSet, RecordId};
use simsearch_distance::ed_within_banded_with;

/// Records re-grouped by length for wholesale length filtering.
#[derive(Debug, Clone)]
pub struct LengthBuckets {
    /// Record ids grouped by length; `buckets[l]` holds all records of
    /// length `l`.
    buckets: Vec<Vec<RecordId>>,
    record_count: usize,
}

impl LengthBuckets {
    /// Builds the buckets for `dataset`.
    pub fn build(dataset: &Dataset) -> Self {
        let max_len = dataset.max_len().unwrap_or(0);
        let mut buckets = vec![Vec::new(); max_len + 1];
        for (id, record) in dataset.iter() {
            buckets[record.len()].push(id);
        }
        Self {
            buckets,
            record_count: dataset.len(),
        }
    }

    /// Number of indexed records.
    pub fn record_count(&self) -> usize {
        self.record_count
    }

    /// Number of non-empty buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.iter().filter(|b| !b.is_empty()).count()
    }

    /// Returns every record of `dataset` within edit distance `k` of
    /// `query`. `dataset` must be the dataset the buckets were built from.
    pub fn search(&self, dataset: &Dataset, query: &[u8], k: u32) -> MatchSet {
        let mut rows = Vec::new();
        let lo = query.len().saturating_sub(k as usize);
        let hi = (query.len() + k as usize).min(self.buckets.len().saturating_sub(1));
        let mut out = Vec::new();
        for len in lo..=hi {
            if len >= self.buckets.len() {
                break;
            }
            for &id in &self.buckets[len] {
                if let Some(d) = ed_within_banded_with(&mut rows, query, dataset.get(id), k) {
                    out.push(Match::new(id, d));
                }
            }
        }
        MatchSet::from_unsorted(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_distance::levenshtein;

    fn brute_force(ds: &Dataset, q: &[u8], k: u32) -> MatchSet {
        ds.iter()
            .filter_map(|(id, r)| {
                let d = levenshtein(q, r);
                (d <= k).then_some(Match::new(id, d))
            })
            .collect()
    }

    #[test]
    fn matches_brute_force() {
        let words = ["Berlin", "Bern", "Bonn", "Ulm", "", "B", "Berlingen"];
        let ds = Dataset::from_records(words);
        let buckets = LengthBuckets::build(&ds);
        for q in ["Berlin", "Bern", "", "Ul", "Berlingenn"] {
            for k in 0..5 {
                assert_eq!(
                    buckets.search(&ds, q.as_bytes(), k),
                    brute_force(&ds, q.as_bytes(), k),
                    "q={q} k={k}"
                );
            }
        }
    }

    #[test]
    fn query_longer_than_any_record() {
        let ds = Dataset::from_records(["ab", "cd"]);
        let buckets = LengthBuckets::build(&ds);
        assert!(buckets.search(&ds, b"abcdefgh", 2).is_empty());
        // Both "ab" and "cd" are two deletions away from "abcd".
        assert_eq!(buckets.search(&ds, b"abcd", 2).ids(), vec![0, 1]);
    }

    #[test]
    fn reports_bucket_structure() {
        let ds = Dataset::from_records(["a", "b", "ccc"]);
        let buckets = LengthBuckets::build(&ds);
        assert_eq!(buckets.bucket_count(), 2); // lengths 1 and 3
        assert_eq!(buckets.record_count(), 3);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new();
        let buckets = LengthBuckets::build(&ds);
        assert!(buckets.search(&ds, b"x", 3).is_empty());
    }
}
