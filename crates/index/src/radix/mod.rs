//! The paper's compressed index (§4.2): a radix trie — the prefix tree
//! with single-child chains merged into labelled edges.

mod builder;
mod node;
mod search;

pub use builder::{build, build_with_freq};
pub use node::{NodeId, RadixNode, RadixTrie, ROOT};
