//! Radix-trie similarity search: the trie descent of §4.1 over labelled
//! edges, with mid-edge abandonment.
//!
//! Descending a compressed edge pushes its label bytes one at a time into
//! the incremental DP; as soon as the row prune fires *inside* the edge,
//! the rest of the label — and the whole subtree — is skipped. This is
//! why compression speeds search up (§4.2): chains that the uncompressed
//! trie walks node by node are abandoned after the same number of DP rows
//! but without any node hopping, and the per-node pruning bookkeeping
//! happens once per edge instead of once per byte.

use super::node::{NodeId, RadixTrie, ROOT};
use crate::trace::SearchTrace;
use simsearch_data::freq::{box_lower_bound, FreqVector};
use simsearch_data::{Match, MatchSet};
use simsearch_distance::prefix_bound::{completion_tolerance, length_interval_bound};
use simsearch_distance::IncrementalDp;

impl RadixTrie {
    /// Returns every record within edit distance `k` of `query`, using
    /// the *modern* pruning (banded rows, row-minimum lemma, mid-edge
    /// abandonment) — an extension beyond the paper; see
    /// [`RadixTrie::search_paper`] for the faithful §4.1/§4.2 descent.
    pub fn search(&self, query: &[u8], k: u32) -> MatchSet {
        self.search_traced(query, k).0
    }

    /// [`RadixTrie::search`] with work counters.
    pub fn search_traced(&self, query: &[u8], k: u32) -> (MatchSet, SearchTrace) {
        let mut dp = IncrementalDp::new(query, k);
        let query_freq = self
            .freq_tracked
            .map(|tracked| FreqVector::compute(query, &tracked));
        let mut out = Vec::new();
        let mut trace = SearchTrace::default();
        self.descend(
            ROOT,
            query.len(),
            query_freq.as_ref(),
            &mut dp,
            &mut out,
            &mut trace,
        );
        (MatchSet::from_unsorted(out), trace)
    }

    /// The paper's compressed-index search: the §4.1 descent with the
    /// prefix condition `ed(x_0..i, y_0..i) ≤ k + d_m` evaluated once per
    /// node — compression's benefit in the paper's own terms ("fewer
    /// calculations of the edit distance", §4.2): chains that the
    /// uncompressed tree checks at every character are checked once per
    /// merged edge.
    pub fn search_paper(&self, query: &[u8], k: u32) -> MatchSet {
        self.search_paper_traced(query, k).0
    }

    /// [`RadixTrie::search_paper`] with work counters.
    pub fn search_paper_traced(&self, query: &[u8], k: u32) -> (MatchSet, SearchTrace) {
        let mut dp = IncrementalDp::new_unbounded(query, k);
        let mut out = Vec::new();
        let mut trace = SearchTrace::default();
        self.descend_paper(ROOT, query.len(), &mut dp, &mut out, &mut trace);
        (MatchSet::from_unsorted(out), trace)
    }

    fn descend_paper(
        &self,
        node: NodeId,
        qlen: usize,
        dp: &mut IncrementalDp,
        out: &mut Vec<Match>,
        trace: &mut SearchTrace,
    ) {
        let n = self.node(node);
        trace.nodes_visited += 1;
        if !n.records.is_empty() {
            if let Some(d) = dp.distance() {
                out.extend(n.records.iter().map(|&id| Match::new(id, d)));
            }
        }
        let d_m = completion_tolerance(qlen, n.min_len as usize, n.max_len as usize);
        if dp.prefix_distance() > dp.threshold() + d_m {
            trace.subtrees_pruned += 1;
            return;
        }
        for &(_, child) in &n.children {
            let c = self.node(child);
            let depth_before = dp.depth();
            // Inside a compressed edge the subtree is already the child's,
            // so the paper's condition applies at every interior position
            // with the child's completion tolerance — compression changes
            // the data structure, not the set of prefixes the §4.1 rule
            // would have pruned in the uncompressed tree.
            let child_d_m =
                completion_tolerance(qlen, c.min_len as usize, c.max_len as usize);
            let mut alive = true;
            for &b in self.label(c) {
                dp.push(b);
                trace.rows_computed += 1;
                if dp.prefix_distance() > dp.threshold() + child_d_m {
                    alive = false;
                    break;
                }
            }
            if alive {
                self.descend_paper(child, qlen, dp, out, trace);
            } else {
                trace.subtrees_pruned += 1;
            }
            dp.truncate(depth_before);
        }
    }

    fn descend(
        &self,
        node: NodeId,
        qlen: usize,
        query_freq: Option<&FreqVector>,
        dp: &mut IncrementalDp,
        out: &mut Vec<Match>,
        trace: &mut SearchTrace,
    ) {
        let n = self.node(node);
        trace.nodes_visited += 1;
        if !n.records.is_empty() {
            if let Some(d) = dp.distance() {
                out.extend(n.records.iter().map(|&id| Match::new(id, d)));
            }
        }
        for &(_, child) in &n.children {
            let c = self.node(child);
            if length_interval_bound(qlen, c.min_len as usize, c.max_len as usize)
                > dp.threshold()
            {
                trace.subtrees_pruned += 1;
                continue;
            }
            if let (Some(qf), Some(boxes)) = (query_freq, self.freq_boxes.as_ref()) {
                let (lo, hi) = &boxes[child as usize];
                if box_lower_bound(qf, lo, hi) > dp.threshold() {
                    trace.subtrees_pruned += 1;
                    continue;
                }
            }
            let depth_before = dp.depth();
            let mut alive = true;
            for &b in self.label(c) {
                dp.push(b);
                trace.rows_computed += 1;
                if !dp.can_extend() {
                    alive = false;
                    break;
                }
            }
            if alive {
                self.descend(child, qlen, query_freq, dp, out, trace);
            } else {
                trace.subtrees_pruned += 1;
            }
            dp.truncate(depth_before);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix::{build, build_with_freq};
    use simsearch_data::Dataset;
    use simsearch_distance::levenshtein;

    fn brute_force(ds: &Dataset, q: &[u8], k: u32) -> MatchSet {
        ds.iter()
            .filter_map(|(id, r)| {
                let d = levenshtein(q, r);
                (d <= k).then_some(Match::new(id, d))
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_on_city_like_words() {
        let words = [
            "Berlin", "Bern", "Bonn", "Ulm", "Bärlin", "Berlingen", "B", "", "Ber",
            "Ulmen", "Bernau",
        ];
        let ds = Dataset::from_records(words);
        let radix = build(&ds);
        for q in ["Berlin", "Bern", "Urm", "", "Xyz", "Berli", "Ulm"] {
            for k in 0..5 {
                assert_eq!(
                    radix.search(q.as_bytes(), k),
                    brute_force(&ds, q.as_bytes(), k),
                    "q={q} k={k}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_uncompressed_trie() {
        let words = ["aaa", "aab", "abb", "bbb", "ab", "a", "", "aabb"];
        let ds = Dataset::from_records(words);
        let radix = build(&ds);
        let trie = crate::trie::build(&ds);
        for q in ["aa", "ab", "b", "", "aabb", "zz"] {
            for k in 0..4 {
                assert_eq!(
                    radix.search(q.as_bytes(), k),
                    trie.search(q.as_bytes(), k),
                    "q={q} k={k}"
                );
            }
        }
    }

    #[test]
    fn freq_annotated_search_is_identical() {
        let words = ["AAAA", "AATT", "TTTT", "ACGT", "AAGT", "AC"];
        let ds = Dataset::from_records(words);
        let plain = build(&ds);
        let annotated = build_with_freq(&ds, *b"ACGNT");
        for q in ["AAAA", "TTTT", "ACG", "GG", ""] {
            for k in 0..5 {
                assert_eq!(
                    annotated.search(q.as_bytes(), k),
                    plain.search(q.as_bytes(), k),
                    "q={q} k={k}"
                );
            }
        }
    }

    #[test]
    fn mid_edge_abandonment_still_finds_matches() {
        // One very long shared edge; queries that die inside it and
        // queries that survive it.
        let long = "x".repeat(50);
        let ds = Dataset::from_records([long.clone(), format!("{long}y")]);
        let radix = build(&ds);
        assert_eq!(radix.search(long.as_bytes(), 1).len(), 2);
        assert_eq!(radix.search(b"zzz", 2).len(), 0);
    }
}
