//! Radix-trie construction.
//!
//! Built directly from the sorted record list (never materializing the
//! uncompressed tree — at DNA scale the uncompressed trie is the very
//! index-size problem the paper's related work §2.3 discusses). For a
//! sorted group of records sharing a prefix of length `depth`, the common
//! continuation of the whole group is `lcp(first, last)`, which becomes
//! one labelled edge; branching happens only where the group splits.

use super::node::{NodeId, RadixNode, RadixTrie, ROOT};
use simsearch_data::freq::FreqVector;
use simsearch_data::{Dataset, RecordId};

/// Builds the compressed prefix tree for `dataset`.
pub fn build(dataset: &Dataset) -> RadixTrie {
    build_inner(dataset, None)
}

/// Builds the compressed prefix tree with per-node frequency-vector
/// boxes for the given tracked symbol set (paper §6 future work).
pub fn build_with_freq(dataset: &Dataset, tracked: [u8; 5]) -> RadixTrie {
    build_inner(dataset, Some(tracked))
}

fn build_inner(dataset: &Dataset, tracked: Option<[u8; 5]>) -> RadixTrie {
    // Sort record ids by their bytes; groups become contiguous ranges.
    let mut order: Vec<RecordId> = (0..dataset.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| dataset.get(a).cmp(dataset.get(b)));

    let mut trie = RadixTrie {
        nodes: vec![RadixNode {
            label_start: 0,
            label_len: 0,
            children: Vec::new(),
            records: Vec::new(),
            min_len: dataset.min_len().unwrap_or(0) as u32,
            max_len: dataset.max_len().unwrap_or(0) as u32,
        }],
        labels: Vec::new(),
        record_count: dataset.len(),
        freq_boxes: None,
        freq_tracked: tracked,
    };
    if dataset.is_empty() {
        trie.nodes[0].min_len = 0;
        if tracked.is_some() {
            trie.freq_boxes = Some(vec![(FreqVector::default(), FreqVector::default())]);
        }
        return trie;
    }
    fill_node(&mut trie, dataset, ROOT, &order, 0);
    if let Some(tracked) = tracked {
        let mut boxes =
            vec![(FreqVector::default(), FreqVector::default()); trie.nodes.len()];
        compute_freq_boxes(&trie, dataset, &tracked, ROOT, &mut boxes);
        trie.freq_boxes = Some(boxes);
    }
    trie
}

/// Populates `node` from the sorted record group `group`, all of which
/// share a prefix of length `depth` (already consumed by edges above).
fn fill_node(
    trie: &mut RadixTrie,
    dataset: &Dataset,
    node: NodeId,
    group: &[RecordId],
    depth: usize,
) {
    // Subtree length bounds.
    {
        let min_len = group
            .iter()
            .map(|&id| dataset.record_len(id) as u32)
            .min()
            .expect("group is non-empty");
        let max_len = group
            .iter()
            .map(|&id| dataset.record_len(id) as u32)
            .max()
            .expect("group is non-empty");
        let n = &mut trie.nodes[node as usize];
        n.min_len = min_len;
        n.max_len = max_len;
    }
    // Records ending exactly here (sorted order puts them first).
    let mut rest = group;
    while let Some((&id, tail)) = rest.split_first() {
        if dataset.record_len(id) == depth {
            trie.nodes[node as usize].records.push(id);
            rest = tail;
        } else {
            break;
        }
    }
    // Group the remainder by the byte at `depth`, take the group LCP as
    // the edge label, and recurse.
    while !rest.is_empty() {
        let b = dataset.get(rest[0])[depth];
        let split = rest.partition_point(|&id| dataset.get(id)[depth] == b);
        let (sub, tail) = rest.split_at(split);
        rest = tail;
        // LCP of a sorted group = LCP of its first and last member.
        let first = dataset.get(sub[0]);
        let last = dataset.get(sub[sub.len() - 1]);
        let max_lcp = first.len().min(last.len());
        let mut lcp = depth + 1;
        while lcp < max_lcp && first[lcp] == last[lcp] {
            lcp += 1;
        }
        let label_start = trie.labels.len() as u32;
        trie.labels.extend_from_slice(&first[depth..lcp]);
        let child = trie.nodes.len() as NodeId;
        trie.nodes.push(RadixNode {
            label_start,
            label_len: (lcp - depth) as u32,
            children: Vec::new(),
            records: Vec::new(),
            min_len: u32::MAX,
            max_len: 0,
        });
        trie.nodes[node as usize].children.push((b, child));
        fill_node(trie, dataset, child, sub, lcp);
    }
}

fn compute_freq_boxes(
    trie: &RadixTrie,
    dataset: &Dataset,
    tracked: &[u8; 5],
    node: NodeId,
    boxes: &mut Vec<(FreqVector, FreqVector)>,
) {
    let n = trie.node(node);
    let mut lo: Option<FreqVector> = None;
    let mut hi = FreqVector::default();
    for &id in &n.records {
        let v = FreqVector::compute(dataset.get(id), tracked);
        lo = Some(lo.map_or(v, |l| l.component_min(&v)));
        hi = hi.component_max(&v);
    }
    let children: Vec<NodeId> = n.children.iter().map(|&(_, c)| c).collect();
    for c in children {
        compute_freq_boxes(trie, dataset, tracked, c, boxes);
        let (clo, chi) = boxes[c as usize];
        lo = Some(lo.map_or(clo, |l| l.component_min(&clo)));
        hi = hi.component_max(&chi);
    }
    boxes[node as usize] = (lo.unwrap_or_default(), hi);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix::node::ROOT;

    #[test]
    fn paper_figure_4_compressed_node_count() {
        // Berlin, Bern, Ulm compresses to root + "Ber" + "lin" + "n"
        // + "Ulm" = 5 nodes (the uncompressed trie has 11; the paper's
        // figure illustrates roughly a halving).
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm"]);
        let radix = build(&ds);
        assert_eq!(radix.node_count(), 5);
        let uncompressed = crate::trie::build(&ds);
        assert!(radix.node_count() * 2 <= uncompressed.node_count());
    }

    #[test]
    fn edge_labels_reconstruct_records() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm", "Bern"]);
        let radix = build(&ds);
        // Walk every path and reconstruct terminal strings.
        fn walk(
            t: &RadixTrie,
            node: super::NodeId,
            prefix: &mut Vec<u8>,
            out: &mut Vec<(RecordId, Vec<u8>)>,
        ) {
            let n = t.node(node);
            prefix.extend_from_slice(t.label(n));
            for &id in n.records() {
                out.push((id, prefix.clone()));
            }
            for &(_, c) in n.children() {
                walk(t, c, prefix, out);
            }
            prefix.truncate(prefix.len() - t.label(n).len());
        }
        let mut out = Vec::new();
        walk(&radix, ROOT, &mut Vec::new(), &mut out);
        out.sort_by_key(|(id, _)| *id);
        let strings: Vec<Vec<u8>> = out.into_iter().map(|(_, s)| s).collect();
        assert_eq!(
            strings,
            vec![
                b"Berlin".to_vec(),
                b"Bern".to_vec(),
                b"Ulm".to_vec(),
                b"Bern".to_vec()
            ]
        );
    }

    #[test]
    fn min_max_lengths_aggregate() {
        let ds = Dataset::from_records(["a", "abcd", "ab"]);
        let radix = build(&ds);
        let root = radix.node(ROOT);
        assert_eq!(root.min_len(), 1);
        assert_eq!(root.max_len(), 4);
    }

    #[test]
    fn empty_dataset_builds_root_only() {
        let radix = build(&Dataset::new());
        assert_eq!(radix.node_count(), 1);
        assert_eq!(radix.record_count(), 0);
    }

    #[test]
    fn prefix_record_terminates_mid_path() {
        let ds = Dataset::from_records(["ab", "abcd"]);
        let radix = build(&ds);
        // root -> "ab" (terminal for 0) -> "cd" (terminal for 1).
        assert_eq!(radix.node_count(), 3);
    }

    #[test]
    fn freq_boxes_bound_subtrees() {
        let ds = Dataset::from_records(["AAAA", "AATT", "TTTT"]);
        let radix = build_with_freq(&ds, *b"ACGNT");
        assert!(radix.has_freq_annotations());
        let boxes = radix.freq_boxes.as_ref().unwrap();
        let (lo, hi) = &boxes[ROOT as usize];
        // A-count ranges over 0..=4, T-count over 0..=4.
        assert_eq!(lo.counts[0], 0);
        assert_eq!(hi.counts[0], 4);
        assert_eq!(lo.counts[4], 0);
        assert_eq!(hi.counts[4], 4);
    }
}
