//! Radix-trie storage: nodes in one arena, edge labels in one shared
//! byte arena.
//!
//! The compression goal of the paper's §4.2 — "create only as many nodes
//! as needed" — is achieved structurally: a node exists only where a
//! branch or a terminal record exists, so chains of single-child nodes
//! collapse into one labelled edge (Figure 4: Berlin/Bern/Ulm shrinks
//! from 11 nodes to 5).

use simsearch_data::freq::FreqVector;
use simsearch_data::RecordId;

/// Index of a node within the radix arena.
pub type NodeId = u32;

/// The arena index of the root node.
pub const ROOT: NodeId = 0;

/// A per-node frequency-vector interval `(component-min, component-max)`.
pub type FreqBox = (FreqVector, FreqVector);

/// One radix-trie node. The edge *leading into* the node carries a label
/// (empty for the root); children are keyed by their label's first byte.
#[derive(Debug, Clone)]
pub struct RadixNode {
    /// Offset of this node's incoming edge label in the label arena.
    pub(crate) label_start: u32,
    /// Length of the incoming edge label.
    pub(crate) label_len: u32,
    /// Sorted `(first label byte, child node)` pairs.
    pub(crate) children: Vec<(u8, NodeId)>,
    /// Records whose full string ends at this node.
    pub(crate) records: Vec<RecordId>,
    /// Minimal record length in this subtree.
    pub(crate) min_len: u32,
    /// Maximal record length in this subtree.
    pub(crate) max_len: u32,
}

impl RadixNode {
    /// Sorted `(byte, child)` pairs.
    pub fn children(&self) -> &[(u8, NodeId)] {
        &self.children
    }

    /// Records terminating at this node.
    pub fn records(&self) -> &[RecordId] {
        &self.records
    }

    /// Minimal record length below (and at) this node.
    pub fn min_len(&self) -> u32 {
        self.min_len
    }

    /// Maximal record length below (and at) this node.
    pub fn max_len(&self) -> u32 {
        self.max_len
    }

    /// `(start, len)` of the incoming edge label in the label arena.
    pub fn label_range(&self) -> (u32, u32) {
        (self.label_start, self.label_len)
    }

    /// Reassembles a node from its raw parts (persistence support).
    pub fn from_parts(
        label_start: u32,
        label_len: u32,
        children: Vec<(u8, NodeId)>,
        records: Vec<simsearch_data::RecordId>,
        min_len: u32,
        max_len: u32,
    ) -> Self {
        Self {
            label_start,
            label_len,
            children,
            records,
            min_len,
            max_len,
        }
    }
}

/// A compressed (radix) prefix tree over a dataset.
/// # Examples
///
/// ```
/// use simsearch_data::Dataset;
///
/// let ds = Dataset::from_records(["Berlin", "Bern", "Ulm"]);
/// let radix = simsearch_index::radix::build(&ds);
/// assert_eq!(radix.node_count(), 5); // the paper's Figure 4
/// let hits = radix.search(b"Berlyn", 1);
/// assert_eq!(hits.ids(), vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct RadixTrie {
    pub(crate) nodes: Vec<RadixNode>,
    pub(crate) labels: Vec<u8>,
    pub(crate) record_count: usize,
    /// Optional per-node frequency-vector boxes `(component-min,
    /// component-max)` over the subtree's records — the paper's §6
    /// "frequency vectors" future work as an index annotation.
    pub(crate) freq_boxes: Option<Vec<(FreqVector, FreqVector)>>,
    /// The tracked symbol set for `freq_boxes`.
    pub(crate) freq_tracked: Option<[u8; 5]>,
}

impl RadixTrie {
    /// Number of nodes, including the root (the Figure 4 metric).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of indexed records.
    pub fn record_count(&self) -> usize {
        self.record_count
    }

    /// Whether frequency-vector pruning is enabled.
    pub fn has_freq_annotations(&self) -> bool {
        self.freq_boxes.is_some()
    }

    /// Borrows a node.
    pub fn node(&self, id: NodeId) -> &RadixNode {
        &self.nodes[id as usize]
    }

    /// The incoming edge label of a node.
    pub fn label(&self, node: &RadixNode) -> &[u8] {
        let s = node.label_start as usize;
        &self.labels[s..s + node.label_len as usize]
    }

    /// The shared edge-label arena.
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// Frequency annotation parts, if present (persistence support).
    pub fn freq_parts(&self) -> Option<([u8; 5], &[FreqBox])> {
        match (&self.freq_tracked, &self.freq_boxes) {
            (Some(t), Some(b)) => Some((*t, b.as_slice())),
            _ => None,
        }
    }

    /// Reassembles a tree from its raw parts (persistence support).
    ///
    /// # Panics
    /// Panics if `nodes` is empty or `freq` boxes do not cover every node.
    pub fn from_parts(
        nodes: Vec<RadixNode>,
        labels: Vec<u8>,
        record_count: usize,
        freq: Option<([u8; 5], Vec<FreqBox>)>,
    ) -> Self {
        assert!(!nodes.is_empty(), "a radix tree has at least a root");
        let (freq_tracked, freq_boxes) = match freq {
            Some((t, b)) => {
                assert_eq!(b.len(), nodes.len(), "one frequency box per node");
                (Some(t), Some(b))
            }
            None => (None, None),
        };
        Self {
            nodes,
            labels,
            record_count,
            freq_boxes,
            freq_tracked,
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<RadixNode>()
            + self.labels.len()
            + self
                .nodes
                .iter()
                .map(|n| {
                    n.children.len() * std::mem::size_of::<(u8, NodeId)>()
                        + n.records.len() * std::mem::size_of::<RecordId>()
                })
                .sum::<usize>()
            + self
                .freq_boxes
                .as_ref()
                .map_or(0, |b| b.len() * std::mem::size_of::<(FreqVector, FreqVector)>())
    }
}
