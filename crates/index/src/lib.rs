//! # simsearch-index
//!
//! Index structures for the `simsearch` workspace — the "well-known
//! index" side of the paper plus the baselines and future-work structures:
//!
//! * [`trie`] — the paper's base index (§4.1): uncompressed prefix tree
//!   with per-node min/max subtree lengths and incremental-DP descent;
//! * [`radix`] — the paper's compressed index (§4.2): radix trie with
//!   labelled edges, optional frequency-vector annotations (§6);
//! * [`qgram`] — inverted q-gram filter-and-verify baseline from the
//!   surrounding literature;
//! * [`length_bucket`] — the paper's §6 "sorting by length" future work;
//! * [`suffix`] — suffix array with query partitioning (the related
//!   work's second approach, §2.3);
//! * [`bktree`] — the classic metric-space index (Burkhard–Keller),
//!   another well-known baseline.
//!
//! All structures answer the same question — every record within edit
//! distance `k` of a query — and return a normalized
//! [`simsearch_data::MatchSet`], so cross-validation against the
//! sequential scan is an equality check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bktree;
pub mod length_bucket;
pub mod persist;
pub mod qgram;
pub mod radix;
pub mod suffix;
pub mod trace;
pub mod trie;

pub use bktree::BkTree;
pub use persist::{
    load_radix, load_radix_full, load_radix_with_stats, save_radix, save_radix_with_calibration,
    save_radix_with_stats, CalibrationRecord, PersistError,
};
pub use length_bucket::LengthBuckets;
pub use qgram::QgramIndex;
pub use radix::RadixTrie;
pub use suffix::{SuffixArray, SuffixIndex};
pub use trace::SearchTrace;
pub use trie::Trie;
