//! Inverted q-gram index — the classical filter-and-verify baseline from
//! the string-similarity literature the paper competes in.
//!
//! Build: every record's q-grams go into posting lists
//! (`gram code → sorted record ids`). Search: the count filter (one edit
//! destroys at most `q` grams) requires
//! `shared ≥ (|query| − q + 1) − k·q` shared grams; candidates are
//! gathered by merging the query grams' posting lists with a reusable
//! per-record counter, then verified with the banded kernel. When the
//! required count is ≤ 0 (short queries or large `k`) the filter is
//! vacuous and the search degrades to a length-filtered scan — the
//! crossover the `ablation_qgram` benchmark measures.

use simsearch_data::{Dataset, Match, MatchSet, RecordId};
use simsearch_distance::ed_within_banded_with;
use simsearch_filters::qgram::collect_profile;
use std::collections::HashMap;

/// An inverted q-gram index over a dataset (keeps a reference-free copy
/// of nothing: records are verified against the dataset passed to
/// [`QgramIndex::search`], which must be the one it was built from).
#[derive(Debug, Clone)]
pub struct QgramIndex {
    q: usize,
    /// Posting lists: gram code → ascending record ids (with per-record
    /// multiplicity, matching multiset q-gram semantics).
    postings: HashMap<u64, Vec<RecordId>>,
    record_count: usize,
}

impl QgramIndex {
    /// Builds the index with gram size `q` (1 ≤ q ≤ 8).
    ///
    /// # Panics
    /// Panics if `q` is 0 or greater than 8.
    pub fn build(dataset: &Dataset, q: usize) -> Self {
        assert!((1..=8).contains(&q), "q must be in 1..=8");
        let mut postings: HashMap<u64, Vec<RecordId>> = HashMap::new();
        let mut profile = Vec::new();
        for (id, record) in dataset.iter() {
            collect_profile(record, q, &mut profile);
            for &g in &profile {
                postings.entry(g).or_default().push(id);
            }
        }
        Self {
            q,
            postings,
            record_count: dataset.len(),
        }
    }

    /// The gram size.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of distinct grams with posting lists.
    pub fn distinct_grams(&self) -> usize {
        self.postings.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.postings
            .values()
            .map(|v| v.len() * std::mem::size_of::<RecordId>() + std::mem::size_of::<u64>())
            .sum()
    }

    /// Returns every record of `dataset` within edit distance `k` of
    /// `query`. `dataset` must be the dataset the index was built from.
    pub fn search(&self, dataset: &Dataset, query: &[u8], k: u32) -> MatchSet {
        let mut scratch = SearchScratch::new(self.record_count);
        self.search_with(dataset, query, k, &mut scratch)
    }

    /// Like [`QgramIndex::search`] with caller-provided scratch space
    /// (reused across queries in hot loops).
    pub fn search_with(
        &self,
        dataset: &Dataset,
        query: &[u8],
        k: u32,
        scratch: &mut SearchScratch,
    ) -> MatchSet {
        let required = query.len() as i64 - self.q as i64 + 1 - (k as i64) * (self.q as i64);
        let mut out = Vec::new();
        if required <= 0 {
            // Vacuous filter: length-filtered scan.
            for (id, record) in dataset.iter() {
                if record.len().abs_diff(query.len()) > k as usize {
                    continue;
                }
                if let Some(d) = ed_within_banded_with(&mut scratch.rows, query, record, k) {
                    out.push(Match::new(id, d));
                }
            }
            return MatchSet::from_unsorted(out);
        }
        // Count shared grams per candidate.
        collect_profile(query, self.q, &mut scratch.profile);
        scratch.reset_counts();
        // The query profile is sorted; duplicate grams must consume
        // multiplicity from the posting list, so walk runs of equal grams.
        let profile = std::mem::take(&mut scratch.profile);
        let mut i = 0;
        while i < profile.len() {
            let g = profile[i];
            let mut mult = 1;
            while i + mult < profile.len() && profile[i + mult] == g {
                mult += 1;
            }
            if let Some(list) = self.postings.get(&g) {
                // list holds each record id once per occurrence; shared
                // count for this gram = min(query mult, record mult).
                let mut j = 0;
                while j < list.len() {
                    let id = list[j];
                    let mut rec_mult = 1;
                    while j + rec_mult < list.len() && list[j + rec_mult] == id {
                        rec_mult += 1;
                    }
                    scratch.bump(id, rec_mult.min(mult) as u32);
                    j += rec_mult;
                }
            }
            i += mult;
        }
        scratch.profile = profile;
        // Verify survivors.
        for &id in &scratch.touched {
            if (scratch.counts[id as usize] as i64) < required {
                continue;
            }
            let record = dataset.get(id);
            if record.len().abs_diff(query.len()) > k as usize {
                continue;
            }
            if let Some(d) = ed_within_banded_with(&mut scratch.rows, query, record, k) {
                out.push(Match::new(id, d));
            }
        }
        MatchSet::from_unsorted(out)
    }
}

/// Reusable per-query scratch space for [`QgramIndex::search_with`].
#[derive(Debug, Clone)]
pub struct SearchScratch {
    counts: Vec<u32>,
    touched: Vec<RecordId>,
    profile: Vec<u64>,
    rows: Vec<u32>,
}

impl SearchScratch {
    /// Creates scratch space for a dataset of `record_count` records.
    pub fn new(record_count: usize) -> Self {
        Self {
            counts: vec![0; record_count],
            touched: Vec::new(),
            profile: Vec::new(),
            rows: Vec::new(),
        }
    }

    fn reset_counts(&mut self) {
        for &id in &self.touched {
            self.counts[id as usize] = 0;
        }
        self.touched.clear();
    }

    fn bump(&mut self, id: RecordId, by: u32) {
        let c = &mut self.counts[id as usize];
        if *c == 0 {
            self.touched.push(id);
        }
        *c += by;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_distance::levenshtein;

    fn brute_force(ds: &Dataset, q: &[u8], k: u32) -> MatchSet {
        ds.iter()
            .filter_map(|(id, r)| {
                let d = levenshtein(q, r);
                (d <= k).then_some(Match::new(id, d))
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_across_qs_and_ks() {
        let words = [
            "Berlin", "Bern", "Bonn", "Ulm", "Berlingen", "", "B", "Bärlin", "Bernau",
        ];
        let ds = Dataset::from_records(words);
        for qsize in [1usize, 2, 3] {
            let idx = QgramIndex::build(&ds, qsize);
            for q in ["Berlin", "Bern", "", "Xyz", "Ulm", "Bonnn"] {
                for k in 0..4 {
                    assert_eq!(
                        idx.search(&ds, q.as_bytes(), k),
                        brute_force(&ds, q.as_bytes(), k),
                        "qsize={qsize} q={q} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn vacuous_filter_falls_back_to_scan() {
        // Query shorter than q: required ≤ 0 for any k.
        let ds = Dataset::from_records(["ab", "ba", "zzz"]);
        let idx = QgramIndex::build(&ds, 3);
        assert_eq!(idx.search(&ds, b"ab", 1), brute_force(&ds, b"ab", 1));
    }

    #[test]
    fn duplicate_grams_use_multiset_counts() {
        // "aaaa" has grams aa, aa, aa; "aa" has one. Multiset sharing = 1.
        let ds = Dataset::from_records(["aaaa", "aa"]);
        let idx = QgramIndex::build(&ds, 2);
        assert_eq!(idx.search(&ds, b"aaaa", 2), brute_force(&ds, b"aaaa", 2));
        assert_eq!(idx.search(&ds, b"aaaa", 1), brute_force(&ds, b"aaaa", 1));
    }

    #[test]
    fn scratch_reuse_across_queries_is_clean() {
        let ds = Dataset::from_records(["Berlin", "Bern", "Ulm"]);
        let idx = QgramIndex::build(&ds, 2);
        let mut scratch = SearchScratch::new(ds.len());
        let a = idx.search_with(&ds, b"Berlin", 1, &mut scratch);
        let b = idx.search_with(&ds, b"Ulm", 1, &mut scratch);
        let c = idx.search_with(&ds, b"Berlin", 1, &mut scratch);
        assert_eq!(a, c);
        assert_eq!(b.ids(), vec![2]);
    }

    #[test]
    fn reports_structure_stats() {
        let ds = Dataset::from_records(["abc", "abd"]);
        let idx = QgramIndex::build(&ds, 2);
        // Grams: ab, bc, ab, bd -> distinct {ab, bc, bd}.
        assert_eq!(idx.distinct_grams(), 3);
        assert!(idx.memory_bytes() > 0);
        assert_eq!(idx.q(), 2);
    }
}
