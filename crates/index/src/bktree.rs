//! BK-tree: the classic metric-space index for the edit distance
//! (Burkhard & Keller 1973) — another "well-known index" to pit against
//! the sequential scan.
//!
//! Every node stores one record; a child edge labelled `d` leads to the
//! subtree of records at distance exactly `d` from the node's record.
//! The triangle inequality restricts a search with threshold `k` to
//! child edges in `[d(q, node) − k, d(q, node) + k]`. Unlike the trie,
//! pruning power comes from the metric alone — on large thresholds
//! relative to string length (the city k = 3 profile) BK-trees famously
//! degrade towards a full scan, which the `ablation_bktree` benchmark
//! shows.

use crate::trace::SearchTrace;
use simsearch_data::{Dataset, Match, MatchSet, RecordId};
use simsearch_distance::levenshtein;

/// Index of a node within the BK-tree arena.
type NodeId = u32;

#[derive(Debug, Clone)]
struct BkNode {
    record: RecordId,
    /// Sorted `(distance, child)` edges.
    children: Vec<(u32, NodeId)>,
}

/// A BK-tree over a dataset.
#[derive(Debug, Clone)]
pub struct BkTree {
    nodes: Vec<BkNode>,
}

impl BkTree {
    /// Builds the tree by inserting every record in id order.
    pub fn build(dataset: &Dataset) -> Self {
        let mut tree = Self { nodes: Vec::new() };
        for (id, record) in dataset.iter() {
            tree.insert(dataset, id, record);
        }
        tree
    }

    fn insert(&mut self, dataset: &Dataset, id: RecordId, record: &[u8]) {
        if self.nodes.is_empty() {
            self.nodes.push(BkNode {
                record: id,
                children: Vec::new(),
            });
            return;
        }
        let mut at: NodeId = 0;
        loop {
            let node_record = dataset.get(self.nodes[at as usize].record);
            let d = levenshtein(record, node_record);
            match self.nodes[at as usize]
                .children
                .binary_search_by_key(&d, |&(dist, _)| dist)
            {
                Ok(i) => at = self.nodes[at as usize].children[i].1,
                Err(i) => {
                    let new_id = self.nodes.len() as NodeId;
                    self.nodes.push(BkNode {
                        record: id,
                        children: Vec::new(),
                    });
                    self.nodes[at as usize].children.insert(i, (d, new_id));
                    return;
                }
            }
        }
    }

    /// Number of nodes (= records indexed).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns every record of `dataset` within edit distance `k` of
    /// `query`. `dataset` must be the dataset the tree was built from.
    pub fn search(&self, dataset: &Dataset, query: &[u8], k: u32) -> MatchSet {
        self.search_traced(dataset, query, k).0
    }

    /// [`BkTree::search`] with work counters (`rows_computed` counts
    /// full distance evaluations, the BK-tree's unit of work).
    pub fn search_traced(
        &self,
        dataset: &Dataset,
        query: &[u8],
        k: u32,
    ) -> (MatchSet, SearchTrace) {
        let mut out = Vec::new();
        let mut trace = SearchTrace::default();
        if !self.nodes.is_empty() {
            let mut stack = vec![0 as NodeId];
            while let Some(at) = stack.pop() {
                let node = &self.nodes[at as usize];
                trace.nodes_visited += 1;
                trace.rows_computed += 1; // one full distance evaluation
                let d = levenshtein(query, dataset.get(node.record));
                if d <= k {
                    out.push(Match::new(node.record, d));
                }
                let lo = d.saturating_sub(k);
                let hi = d + k;
                for &(edge, child) in &node.children {
                    if (lo..=hi).contains(&edge) {
                        stack.push(child);
                    } else {
                        trace.subtrees_pruned += 1;
                    }
                }
            }
        }
        (MatchSet::from_unsorted(out), trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(ds: &Dataset, q: &[u8], k: u32) -> MatchSet {
        ds.iter()
            .filter_map(|(id, r)| {
                let d = levenshtein(q, r);
                (d <= k).then_some(Match::new(id, d))
            })
            .collect()
    }

    #[test]
    fn matches_brute_force() {
        let words = [
            "Berlin", "Bern", "Bonn", "Ulm", "Bärlin", "Berlingen", "B", "", "Ber", "Bern",
        ];
        let ds = Dataset::from_records(words);
        let tree = BkTree::build(&ds);
        assert_eq!(tree.node_count(), words.len());
        for q in ["Berlin", "Bern", "Urm", "", "Xyz"] {
            for k in 0..5 {
                assert_eq!(
                    tree.search(&ds, q.as_bytes(), k),
                    brute_force(&ds, q.as_bytes(), k),
                    "q={q} k={k}"
                );
            }
        }
    }

    #[test]
    fn triangle_pruning_skips_subtrees() {
        // Two well-separated clusters: searching in one must prune the
        // other.
        let mut words: Vec<String> = (0..20).map(|i| format!("aaaaaaaa{i:02}")).collect();
        words.extend((0..20).map(|i| format!("zzzzzzzzzzzzzzzzzzzz{i:02}")));
        let ds = Dataset::from_records(&words);
        let tree = BkTree::build(&ds);
        let (res, trace) = tree.search_traced(&ds, b"aaaaaaaa00", 2);
        assert!(!res.is_empty());
        assert!(
            trace.subtrees_pruned > 0,
            "no pruning on separated clusters: {trace:?}"
        );
        assert!(trace.rows_computed < ds.len() as u64);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new();
        let tree = BkTree::build(&ds);
        assert_eq!(tree.node_count(), 0);
        assert!(tree.search(&ds, b"x", 3).is_empty());
    }

    #[test]
    fn duplicate_records_chain_through_distance_zero() {
        let ds = Dataset::from_records(["dup", "dup", "dup"]);
        let tree = BkTree::build(&ds);
        assert_eq!(tree.search(&ds, b"dup", 0).ids(), vec![0, 1, 2]);
    }
}
