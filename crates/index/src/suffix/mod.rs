//! Suffix-array index with query partitioning — the second related-work
//! approach the paper builds on (§2.3, Navarro et al.): a suffix *array*
//! instead of a suffix tree to bound index size, and "splitting the
//! query string and later integrating the particular results" to tame
//! the exponential dependence on the threshold.

mod sa;
mod search;

pub use sa::SuffixArray;
pub use search::SuffixIndex;
