//! Partition-based similarity search over a suffix array (the approach
//! of Navarro et al., paper §2.3).
//!
//! The pigeonhole argument: split the query into `k + 1` contiguous
//! pieces; `k` edit operations can corrupt at most `k` of them, so any
//! record within distance `k` contains at least one piece *exactly* —
//! and, because an edit changes positions by at most one, that piece
//! occurs within `±k` of its position in the query. Candidates are
//! gathered through exact piece lookups on the suffix array of the
//! concatenated records, then verified with the banded kernel.
//!
//! When the query is shorter than `k + 1` (no non-empty pieces) the
//! filter is vacuous and the search degrades to a length-filtered scan.

use super::sa::SuffixArray;
use crate::length_bucket::LengthBuckets;
use simsearch_data::{Dataset, Match, MatchSet, RecordId};
use simsearch_distance::ed_within_banded_with;

/// A suffix-array similarity index over a dataset.
#[derive(Debug, Clone)]
pub struct SuffixIndex {
    sa: SuffixArray,
    /// Record boundaries in the concatenated text (`record_count + 1`
    /// entries, ascending).
    offsets: Vec<u32>,
    /// Fallback structure for vacuous-filter queries.
    buckets: LengthBuckets,
}

impl SuffixIndex {
    /// Builds the index (concatenates the records and constructs the
    /// suffix array).
    pub fn build(dataset: &Dataset) -> Self {
        let mut text = Vec::with_capacity(dataset.arena_len());
        let mut offsets = Vec::with_capacity(dataset.len() + 1);
        offsets.push(0);
        for (_, record) in dataset.iter() {
            text.extend_from_slice(record);
            offsets.push(text.len() as u32);
        }
        Self {
            sa: SuffixArray::build(text),
            offsets,
            buckets: LengthBuckets::build(dataset),
        }
    }

    /// Number of indexed records.
    pub fn record_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.sa.memory_bytes() + self.offsets.len() * std::mem::size_of::<u32>()
    }

    /// Record containing text position `pos`, with the position's offset
    /// inside that record.
    fn locate(&self, pos: u32) -> (RecordId, usize) {
        // partition_point gives the first offset > pos; the record is the
        // one before it.
        let idx = self.offsets.partition_point(|&o| o <= pos) - 1;
        (idx as RecordId, (pos - self.offsets[idx]) as usize)
    }

    /// Splits `0..len` into `pieces` near-equal contiguous ranges.
    fn split(len: usize, pieces: usize) -> Vec<(usize, usize)> {
        let base = len / pieces;
        let extra = len % pieces;
        let mut out = Vec::with_capacity(pieces);
        let mut start = 0;
        for i in 0..pieces {
            let l = base + usize::from(i < extra);
            out.push((start, l));
            start += l;
        }
        out
    }

    /// Returns every record of `dataset` within edit distance `k` of
    /// `query`. `dataset` must be the dataset the index was built from.
    pub fn search(&self, dataset: &Dataset, query: &[u8], k: u32) -> MatchSet {
        let pieces = k as usize + 1;
        if query.len() < pieces {
            // Some piece would be empty: the pigeonhole filter is vacuous.
            return self.buckets.search(dataset, query, k);
        }
        let mut candidates: Vec<RecordId> = Vec::new();
        for (start, len) in Self::split(query.len(), pieces) {
            let piece = &query[start..start + len];
            for &pos in self.sa.find(piece) {
                let (id, offset_in_record) = self.locate(pos);
                // The piece must lie entirely within the record (the
                // concatenation has no separators) ...
                let rec_len = (self.offsets[id as usize + 1] - self.offsets[id as usize]) as usize;
                if offset_in_record + len > rec_len {
                    continue;
                }
                // ... and near its query position (edits shift by ≤ k).
                if offset_in_record.abs_diff(start) > k as usize {
                    continue;
                }
                candidates.push(id);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut rows = Vec::new();
        let mut out = Vec::new();
        for id in candidates {
            let record = dataset.get(id);
            if record.len().abs_diff(query.len()) > k as usize {
                continue;
            }
            if let Some(d) = ed_within_banded_with(&mut rows, query, record, k) {
                out.push(Match::new(id, d));
            }
        }
        MatchSet::from_unsorted(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_distance::levenshtein;

    fn brute_force(ds: &Dataset, q: &[u8], k: u32) -> MatchSet {
        ds.iter()
            .filter_map(|(id, r)| {
                let d = levenshtein(q, r);
                (d <= k).then_some(Match::new(id, d))
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_on_city_like_words() {
        let words = [
            "Berlin", "Bern", "Bonn", "Ulm", "Bärlin", "Berlingen", "B", "", "Ber",
            "Ulmen", "Bernau", "nil", "reB",
        ];
        let ds = Dataset::from_records(words);
        let idx = SuffixIndex::build(&ds);
        for q in ["Berlin", "Bern", "Urm", "", "Xyz", "Berli", "Ulm", "rlin"] {
            for k in 0..5 {
                assert_eq!(
                    idx.search(&ds, q.as_bytes(), k),
                    brute_force(&ds, q.as_bytes(), k),
                    "q={q} k={k}"
                );
            }
        }
    }

    #[test]
    fn pieces_straddling_record_boundaries_are_rejected() {
        // "abc"+"def" concatenates to "abcdef"; a piece "cd" occurs in
        // the text but inside no record.
        let ds = Dataset::from_records(["abc", "def"]);
        let idx = SuffixIndex::build(&ds);
        assert_eq!(idx.search(&ds, b"cde", 1), brute_force(&ds, b"cde", 1));
        assert!(idx.search(&ds, b"cde", 1).is_empty());
    }

    #[test]
    fn split_is_balanced_and_complete() {
        for len in [1usize, 5, 17, 100] {
            for pieces in 1..=5.min(len) {
                let parts = SuffixIndex::split(len, pieces);
                assert_eq!(parts.len(), pieces);
                assert_eq!(parts.iter().map(|&(_, l)| l).sum::<usize>(), len);
                assert!(parts.iter().all(|&(_, l)| l > 0));
                // Contiguity.
                let mut expect = 0;
                for &(s, l) in &parts {
                    assert_eq!(s, expect);
                    expect += l;
                }
            }
        }
    }

    #[test]
    fn vacuous_filter_short_queries() {
        let ds = Dataset::from_records(["ab", "ba", "zz", ""]);
        let idx = SuffixIndex::build(&ds);
        // |q| = 2 < k + 1 = 4: falls back to the bucket scan.
        assert_eq!(idx.search(&ds, b"ab", 3), brute_force(&ds, b"ab", 3));
        assert_eq!(idx.search(&ds, b"", 1), brute_force(&ds, b"", 1));
    }

    #[test]
    fn duplicate_candidates_are_deduplicated() {
        // One record contains a repeated piece; it must be reported once.
        let ds = Dataset::from_records(["abcabc", "xyz"]);
        let idx = SuffixIndex::build(&ds);
        let res = idx.search(&ds, b"abcabc", 2);
        assert_eq!(res.ids(), vec![0]);
    }
}
