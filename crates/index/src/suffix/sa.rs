//! Suffix-array construction and exact pattern lookup.
//!
//! Prefix-doubling construction (Manber–Myers style, O(n log² n)) over
//! an arbitrary byte text; lookups are the classical two binary searches
//! yielding the contiguous suffix range whose suffixes start with the
//! pattern. Navarro et al.'s point — an array is at most a small constant
//! times the text, unlike a suffix tree — is visible in
//! [`SuffixArray::memory_bytes`].

/// A suffix array over a byte text.
#[derive(Debug, Clone)]
pub struct SuffixArray {
    text: Vec<u8>,
    /// Suffix start positions, sorted by suffix.
    sa: Vec<u32>,
}

impl SuffixArray {
    /// Builds the suffix array of `text` by prefix doubling.
    pub fn build(text: Vec<u8>) -> Self {
        let n = text.len();
        let mut sa: Vec<u32> = (0..n as u32).collect();
        if n == 0 {
            return Self { text, sa };
        }
        // Initial ranks: the byte values.
        let mut rank: Vec<u32> = text.iter().map(|&b| b as u32).collect();
        let mut next_rank = vec![0u32; n];
        let mut len = 1usize;
        loop {
            let key = |i: u32| -> (u32, i64) {
                let i = i as usize;
                let second = if i + len < n {
                    rank[i + len] as i64
                } else {
                    -1
                };
                (rank[i], second)
            };
            sa.sort_unstable_by_key(|&i| key(i));
            // Re-rank.
            next_rank[sa[0] as usize] = 0;
            let mut r = 0u32;
            for w in 1..n {
                if key(sa[w]) != key(sa[w - 1]) {
                    r += 1;
                }
                next_rank[sa[w] as usize] = r;
            }
            std::mem::swap(&mut rank, &mut next_rank);
            if r as usize == n - 1 {
                break; // all ranks distinct: fully sorted
            }
            len *= 2;
            if len >= n {
                // One more re-rank pass above has already resolved ties up
                // to 2·len; a final sort by rank alone finishes the array.
                sa.sort_unstable_by_key(|&i| rank[i as usize]);
                break;
            }
        }
        Self { text, sa }
    }

    /// The indexed text.
    pub fn text(&self) -> &[u8] {
        &self.text
    }

    /// Number of suffixes (= text length).
    pub fn len(&self) -> usize {
        self.sa.len()
    }

    /// True for an empty text.
    pub fn is_empty(&self) -> bool {
        self.sa.is_empty()
    }

    /// Approximate heap footprint: text + 4 bytes per suffix (the
    /// "maximum size of four times the number" property from §2.3).
    pub fn memory_bytes(&self) -> usize {
        self.text.len() + self.sa.len() * std::mem::size_of::<u32>()
    }

    /// Start positions (ascending within the suffix order) of every
    /// occurrence of `pattern` in the text. Empty patterns yield an
    /// empty result (every position matches trivially; callers handle
    /// that case themselves).
    pub fn find(&self, pattern: &[u8]) -> &[u32] {
        if pattern.is_empty() {
            return &[];
        }
        let suffix = |i: u32| &self.text[i as usize..];
        // First suffix >= pattern.
        let lo = self.sa.partition_point(|&i| suffix(i) < pattern);
        // First suffix that does not start with pattern.
        let hi = lo
            + self.sa[lo..]
                .partition_point(|&i| suffix(i).starts_with(pattern));
        &self.sa[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: all occurrence positions by naive scanning.
    fn naive_find(text: &[u8], pattern: &[u8]) -> Vec<u32> {
        if pattern.is_empty() || pattern.len() > text.len() {
            return Vec::new();
        }
        (0..=text.len() - pattern.len())
            .filter(|&i| &text[i..i + pattern.len()] == pattern)
            .map(|i| i as u32)
            .collect()
    }

    fn check(text: &[u8], pattern: &[u8]) {
        let sa = SuffixArray::build(text.to_vec());
        let mut got: Vec<u32> = sa.find(pattern).to_vec();
        got.sort_unstable();
        assert_eq!(got, naive_find(text, pattern), "text={text:?} pat={pattern:?}");
    }

    #[test]
    fn suffixes_are_sorted() {
        for text in [&b"banana"[..], b"mississippi", b"", b"a", b"aaaa", b"abab"] {
            let sa = SuffixArray::build(text.to_vec());
            for w in sa.sa.windows(2) {
                assert!(
                    sa.text[w[0] as usize..] < sa.text[w[1] as usize..],
                    "unsorted suffixes in {text:?}"
                );
            }
            assert_eq!(sa.len(), text.len());
        }
    }

    #[test]
    fn find_matches_naive_scan() {
        let text = b"bananabandana";
        for pat in [&b"ana"[..], b"ban", b"a", b"na", b"xyz", b"bananabandana", b"n"] {
            check(text, pat);
        }
    }

    #[test]
    fn repetitive_text() {
        let text = vec![b'A'; 200];
        check(&text, b"AAA");
        check(&text, b"AT");
    }

    #[test]
    fn dna_like_text() {
        let text = b"ACGTACGTNNACGTTTACG".repeat(5);
        for pat in [&b"ACGT"[..], b"NN", b"TTT", b"GTA", b"CGTACGTN"] {
            check(&text, pat);
        }
    }

    #[test]
    fn empty_cases() {
        let sa = SuffixArray::build(Vec::new());
        assert!(sa.is_empty());
        assert!(sa.find(b"x").is_empty());
        let sa = SuffixArray::build(b"abc".to_vec());
        assert!(sa.find(b"").is_empty());
    }

    #[test]
    fn memory_is_text_plus_four_per_suffix() {
        let sa = SuffixArray::build(b"hello world".to_vec());
        assert_eq!(sa.memory_bytes(), 11 + 11 * 4);
    }
}
