//! Property tests: every index structure returns exactly the brute-force
//! result set on random datasets and queries — the paper's correctness
//! methodology (§4.4) as a property.

use proptest::prelude::*;
use simsearch_data::{Dataset, Match, MatchSet};
use simsearch_distance::levenshtein;
use simsearch_index::{qgram::SearchScratch, LengthBuckets, QgramIndex, RadixTrie, Trie};

fn brute_force(ds: &Dataset, q: &[u8], k: u32) -> MatchSet {
    ds.iter()
        .filter_map(|(id, r)| {
            let d = levenshtein(q, r);
            (d <= k).then_some(Match::new(id, d))
        })
        .collect()
}

fn word() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"abcAB\xC3".to_vec()), 0..10)
}

fn corpus() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(word(), 0..25)
}

proptest! {
    #[test]
    fn trie_equals_brute_force(words in corpus(), q in word(), k in 0u32..5) {
        let ds = Dataset::from_records(&words);
        let trie = simsearch_index::trie::build(&ds);
        prop_assert_eq!(trie.search(&q, k), brute_force(&ds, &q, k));
    }

    #[test]
    fn radix_equals_brute_force(words in corpus(), q in word(), k in 0u32..5) {
        let ds = Dataset::from_records(&words);
        let radix = simsearch_index::radix::build(&ds);
        prop_assert_eq!(radix.search(&q, k), brute_force(&ds, &q, k));
    }

    #[test]
    fn radix_with_freq_equals_brute_force(words in corpus(), q in word(), k in 0u32..5) {
        let ds = Dataset::from_records(&words);
        let radix = simsearch_index::radix::build_with_freq(&ds, *b"ABabc");
        prop_assert_eq!(radix.search(&q, k), brute_force(&ds, &q, k));
    }

    #[test]
    fn qgram_equals_brute_force(words in corpus(), q in word(), k in 0u32..5, qsize in 1usize..4) {
        let ds = Dataset::from_records(&words);
        let idx = QgramIndex::build(&ds, qsize);
        let mut scratch = SearchScratch::new(ds.len());
        prop_assert_eq!(idx.search_with(&ds, &q, k, &mut scratch), brute_force(&ds, &q, k));
    }

    #[test]
    fn length_buckets_equal_brute_force(words in corpus(), q in word(), k in 0u32..5) {
        let ds = Dataset::from_records(&words);
        let buckets = LengthBuckets::build(&ds);
        prop_assert_eq!(buckets.search(&ds, &q, k), brute_force(&ds, &q, k));
    }

    #[test]
    fn compression_preserves_structure_counts(words in corpus()) {
        let ds = Dataset::from_records(&words);
        let trie: Trie = simsearch_index::trie::build(&ds);
        let radix: RadixTrie = simsearch_index::radix::build(&ds);
        // Compression never increases the node count, and both see the
        // same number of records.
        prop_assert!(radix.node_count() <= trie.node_count());
        prop_assert_eq!(radix.record_count(), trie.record_count());
    }
}

proptest! {
    #[test]
    fn trie_paper_mode_equals_brute_force(words in corpus(), q in word(), k in 0u32..5) {
        let ds = Dataset::from_records(&words);
        let trie = simsearch_index::trie::build(&ds);
        prop_assert_eq!(trie.search_paper(&q, k), brute_force(&ds, &q, k));
    }

    #[test]
    fn radix_paper_mode_equals_brute_force(words in corpus(), q in word(), k in 0u32..5) {
        let ds = Dataset::from_records(&words);
        let radix = simsearch_index::radix::build(&ds);
        prop_assert_eq!(radix.search_paper(&q, k), brute_force(&ds, &q, k));
    }

    #[test]
    fn paper_and_modern_modes_agree(words in corpus(), q in word(), k in 0u32..5) {
        let ds = Dataset::from_records(&words);
        let radix = simsearch_index::radix::build(&ds);
        prop_assert_eq!(radix.search_paper(&q, k), radix.search(&q, k));
        let trie = simsearch_index::trie::build(&ds);
        prop_assert_eq!(trie.search_paper(&q, k), trie.search(&q, k));
    }
}

proptest! {
    #[test]
    fn suffix_index_equals_brute_force(words in corpus(), q in word(), k in 0u32..5) {
        let ds = Dataset::from_records(&words);
        let idx = simsearch_index::SuffixIndex::build(&ds);
        prop_assert_eq!(idx.search(&ds, &q, k), brute_force(&ds, &q, k));
    }
}

proptest! {
    #[test]
    fn trie_hamming_equals_brute_force(words in corpus(), q in word(), k in 0u32..5) {
        use simsearch_distance::hamming::hamming_within;
        let ds = Dataset::from_records(&words);
        let trie = simsearch_index::trie::build(&ds);
        let expected: MatchSet = ds
            .iter()
            .filter_map(|(id, r)| hamming_within(&q, r, k).map(|d| Match::new(id, d)))
            .collect();
        prop_assert_eq!(trie.search_hamming(&q, k), expected);
    }

    #[test]
    fn traced_searches_equal_untraced(words in corpus(), q in word(), k in 0u32..4) {
        let ds = Dataset::from_records(&words);
        let radix = simsearch_index::radix::build(&ds);
        let (m1, t1) = radix.search_traced(&q, k);
        prop_assert_eq!(&m1, &radix.search(&q, k));
        let (m2, t2) = radix.search_paper_traced(&q, k);
        prop_assert_eq!(&m2, &m1);
        // The paper descent never prunes earlier than the modern one.
        prop_assert!(t2.rows_computed >= t1.rows_computed || t1.nodes_visited >= t2.nodes_visited);
        let _ = (t1, t2);
    }
}

proptest! {
    #[test]
    fn bktree_equals_brute_force(words in corpus(), q in word(), k in 0u32..5) {
        let ds = Dataset::from_records(&words);
        let tree = simsearch_index::BkTree::build(&ds);
        prop_assert_eq!(tree.search(&ds, &q, k), brute_force(&ds, &q, k));
    }
}
