//! Lexicographically sorted view of a [`Dataset`] with an LCP array.
//!
//! The paper's trie amortizes DP work across shared prefixes; that
//! amortization does not require a tree, only *adjacency* of shared
//! prefixes — which a sorted flat arena provides with strictly
//! sequential memory access (the same ordering insight sort-based
//! methods like PASS-JOIN exploit). [`SortedView`] is the one-time
//! preprocessing behind the V7 scan rung: a permutation table, a
//! remapped contiguous arena in sorted order, and the longest-common-
//! prefix length between each pair of adjacent records, so a scanner
//! can resume a row-stack DP at `lcp[i]` instead of row zero.

use crate::dataset::{Dataset, RecordId};

/// A dataset re-ordered lexicographically, with adjacency metadata.
///
/// Positions (`0..len()`) address records in *sorted* order; every match
/// is translated back to the insertion-order [`RecordId`] via
/// [`SortedView::original_id`], so result sets stay comparable with every
/// other engine.
///
/// # Examples
///
/// ```
/// use simsearch_data::{Dataset, SortedView};
///
/// let ds = Dataset::from_records(["Ulm", "Bern", "Berlin"]);
/// let sv = SortedView::build(&ds);
/// assert_eq!(sv.get(0), b"Berlin");
/// assert_eq!(sv.get(1), b"Bern");
/// assert_eq!(sv.lcp(1), 3); // "Ber" shared with "Berlin"
/// assert_eq!(sv.original_id(0), 2); // "Berlin" was inserted third
/// ```
#[derive(Clone, Debug)]
pub struct SortedView {
    /// Records remapped into one contiguous arena in sorted order.
    sorted: Dataset,
    /// `perm[pos]` = insertion-order id of the record at sorted `pos`.
    perm: Vec<RecordId>,
    /// `lcp[pos]` = length of the longest common prefix of the records at
    /// sorted positions `pos - 1` and `pos`; `lcp[0] = 0`.
    lcp: Vec<u32>,
    /// `lens[pos]` = record length at sorted `pos`, densely packed so a
    /// length-filter sweep touches 16 records per cache line instead of
    /// striding through the (twice as wide) offsets table.
    lens: Vec<u32>,
}

/// Longest common prefix length of two byte strings.
fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

impl SortedView {
    /// Sorts the dataset (ties broken by insertion id, so the permutation
    /// is deterministic), remaps the arena, and computes the LCP array.
    pub fn build(dataset: &Dataset) -> Self {
        let mut perm: Vec<RecordId> = (0..dataset.len() as u32).collect();
        perm.sort_by(|&a, &b| dataset.get(a).cmp(dataset.get(b)).then(a.cmp(&b)));
        let mut sorted = Dataset::with_capacity(dataset.len(), dataset.arena_len());
        let mut lcp = Vec::with_capacity(dataset.len());
        let mut lens = Vec::with_capacity(dataset.len());
        for (pos, &id) in perm.iter().enumerate() {
            let record = dataset.get(id);
            lcp.push(if pos == 0 {
                0
            } else {
                common_prefix(sorted.get(pos as u32 - 1), record) as u32
            });
            lens.push(record.len() as u32);
            sorted.push(record);
        }
        Self {
            sorted,
            perm,
            lcp,
            lens,
        }
    }

    /// Number of records (same as the source dataset).
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the view holds no records.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Borrows the record at sorted position `pos`.
    #[inline]
    pub fn get(&self, pos: usize) -> &[u8] {
        self.sorted.get(pos as u32)
    }

    /// Length of the record at sorted position `pos`, from the offsets
    /// table alone.
    #[inline]
    pub fn record_len(&self, pos: usize) -> usize {
        self.sorted.record_len(pos as u32)
    }

    /// Longest common prefix between the records at sorted positions
    /// `pos - 1` and `pos` (`0` at position `0`).
    #[inline]
    pub fn lcp(&self, pos: usize) -> usize {
        self.lcp[pos] as usize
    }

    /// Translates a sorted position back to the insertion-order id.
    #[inline]
    pub fn original_id(&self, pos: usize) -> RecordId {
        self.perm[pos]
    }

    /// The permutation table: `permutation()[pos]` is the insertion-order
    /// id of the record at sorted position `pos`.
    pub fn permutation(&self) -> &[RecordId] {
        &self.perm
    }

    /// The dense structure-of-arrays lengths table (`lengths()[pos]` =
    /// `record_len(pos)`), for scans whose length filter should stream
    /// one packed column instead of probing the offsets table.
    pub fn lengths(&self) -> &[u32] {
        &self.lens
    }

    /// The remapped (sorted-order) dataset backing this view.
    pub fn sorted_dataset(&self) -> &Dataset {
        &self.sorted
    }

    /// Iterates `(original_id, record)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, &[u8])> + '_ {
        (0..self.len()).map(move |pos| (self.perm[pos], self.get(pos)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(records: &[&str]) -> SortedView {
        SortedView::build(&Dataset::from_records(records))
    }

    #[test]
    fn records_come_out_sorted_with_exact_lcp() {
        let sv = view(&["Ulm", "Berlin", "Bern", "", "Berlingen", "Ulm"]);
        let order: Vec<&[u8]> = (0..sv.len()).map(|p| sv.get(p)).collect();
        let mut expected = order.clone();
        expected.sort();
        assert_eq!(order, expected);
        assert_eq!(sv.lcp(0), 0);
        for pos in 1..sv.len() {
            assert_eq!(
                sv.lcp(pos),
                common_prefix(sv.get(pos - 1), sv.get(pos)),
                "pos {pos}"
            );
        }
    }

    #[test]
    fn permutation_translates_back_to_insertion_order() {
        let ds = Dataset::from_records(["Ulm", "Berlin", "Bern"]);
        let sv = SortedView::build(&ds);
        for pos in 0..sv.len() {
            assert_eq!(ds.get(sv.original_id(pos)), sv.get(pos));
        }
        let mut seen: Vec<RecordId> = sv.permutation().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_records_keep_insertion_order() {
        let sv = view(&["b", "a", "b", "a"]);
        // Ties break by insertion id: both "a"s first, ids ascending.
        assert_eq!(sv.permutation(), &[1, 3, 0, 2]);
        assert_eq!(sv.lcp(1), 1);
        assert_eq!(sv.lcp(2), 0);
        assert_eq!(sv.lcp(3), 1);
    }

    #[test]
    fn empty_dataset_and_empty_records() {
        let sv = SortedView::build(&Dataset::new());
        assert!(sv.is_empty());
        let sv = view(&["", "", "x"]);
        assert_eq!(sv.get(0), b"");
        assert_eq!(sv.lcp(1), 0);
        assert_eq!(sv.record_len(2), 1);
    }

    #[test]
    fn lengths_table_matches_record_len() {
        let sv = view(&["Ulm", "Berlin", "", "Bern"]);
        assert_eq!(sv.lengths().len(), sv.len());
        for pos in 0..sv.len() {
            assert_eq!(sv.lengths()[pos] as usize, sv.record_len(pos), "pos {pos}");
        }
    }

    #[test]
    fn iter_pairs_sorted_records_with_original_ids() {
        let ds = Dataset::from_records(["bb", "aa"]);
        let sv = SortedView::build(&ds);
        let pairs: Vec<(RecordId, &[u8])> = sv.iter().collect();
        assert_eq!(pairs, vec![(1, b"aa" as &[u8]), (0, b"bb")]);
    }
}
