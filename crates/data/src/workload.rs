//! Query workloads: the `(query string, threshold)` sequences the
//! evaluation executes.
//!
//! The paper measures the execution of 100, 500 and 1,000 queries per
//! dataset, with thresholds `k ∈ {0, 1, 2, 3}` for city names and
//! `k ∈ {0, 4, 8, 16}` for DNA (Table I). [`WorkloadSpec::generate`]
//! reproduces the competition's construction: each query is a dataset
//! record perturbed by at most `k` random edits, and thresholds cycle
//! round-robin so every prefix of the workload (the first 100, the first
//! 500, …) contains a balanced threshold mix — which is why the 100/500/
//! 1,000-query measurements of one table are comparable.

use crate::alphabet::Alphabet;
use crate::dataset::Dataset;
use crate::generate::edits::apply_random_edits;
use crate::rng::Xoshiro256;

/// The thresholds the paper uses for the city-names dataset (Table I).
pub const CITY_THRESHOLDS: [u32; 4] = [0, 1, 2, 3];

/// The thresholds the paper uses for the DNA dataset (Table I).
pub const DNA_THRESHOLDS: [u32; 4] = [0, 4, 8, 16];

/// One similarity query: find all records within edit distance
/// `threshold` of `text`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRecord {
    /// The query string (byte semantics, like the records).
    pub text: Vec<u8>,
    /// The maximum edit distance `k`.
    pub threshold: u32,
}

impl QueryRecord {
    /// Convenience constructor.
    pub fn new(text: impl Into<Vec<u8>>, threshold: u32) -> Self {
        Self {
            text: text.into(),
            threshold,
        }
    }
}

/// An ordered sequence of queries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Workload {
    /// Queries in execution order.
    pub queries: Vec<QueryRecord>,
}

impl Workload {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the workload holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The first `n` queries, as the paper's 100/500/1,000-query runs are
    /// prefixes of one generated workload.
    ///
    /// # Panics
    /// Panics if `n` exceeds the workload size.
    pub fn prefix(&self, n: usize) -> Workload {
        assert!(n <= self.queries.len(), "prefix longer than workload");
        Workload {
            queries: self.queries[..n].to_vec(),
        }
    }

    /// Iterates over the queries.
    pub fn iter(&self) -> impl Iterator<Item = &QueryRecord> + '_ {
        self.queries.iter()
    }

    /// Largest threshold in the workload (0 for an empty workload).
    pub fn max_threshold(&self) -> u32 {
        self.queries.iter().map(|q| q.threshold).max().unwrap_or(0)
    }
}

/// Recipe for generating a [`Workload`] from a dataset.
#[derive(Debug, Clone)]
pub struct WorkloadSpec<'a> {
    /// Threshold cycle (e.g. [`CITY_THRESHOLDS`]).
    pub thresholds: &'a [u32],
    /// Number of queries to generate.
    pub count: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl<'a> WorkloadSpec<'a> {
    /// Creates a spec.
    pub fn new(thresholds: &'a [u32], count: usize, seed: u64) -> Self {
        assert!(!thresholds.is_empty(), "threshold cycle must be non-empty");
        Self {
            thresholds,
            count,
            seed,
        }
    }

    /// Generates the workload by sampling and perturbing records of
    /// `dataset`. Replacement symbols are drawn from `alphabet` (pass the
    /// corpus alphabet so edited queries stay in-domain).
    ///
    /// # Panics
    /// Panics if the dataset is empty but `count > 0`.
    pub fn generate(&self, dataset: &Dataset, alphabet: &Alphabet) -> Workload {
        assert!(
            self.count == 0 || !dataset.is_empty(),
            "cannot sample queries from an empty dataset"
        );
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let mut queries = Vec::with_capacity(self.count);
        for i in 0..self.count {
            let threshold = self.thresholds[i % self.thresholds.len()];
            let base = dataset.get(rng.index(dataset.len()) as u32);
            // Perturb by 0..=k edits: uniformly distributed edit load, so
            // some queries match exactly and some sit right at the
            // threshold boundary.
            let edits = rng.index(threshold as usize + 1);
            let text = apply_random_edits(&mut rng, base, edits, alphabet);
            queries.push(QueryRecord { text, threshold });
        }
        Workload { queries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::city::CityGenerator;

    fn small_dataset() -> (Dataset, Alphabet) {
        let ds = CityGenerator::new(11).generate(500);
        let alpha = Alphabet::from_corpus(ds.records());
        (ds, alpha)
    }

    #[test]
    fn thresholds_cycle_round_robin() {
        let (ds, alpha) = small_dataset();
        let w = WorkloadSpec::new(&CITY_THRESHOLDS, 10, 1).generate(&ds, &alpha);
        let ks: Vec<u32> = w.iter().map(|q| q.threshold).collect();
        assert_eq!(ks, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn workload_is_deterministic() {
        let (ds, alpha) = small_dataset();
        let a = WorkloadSpec::new(&DNA_THRESHOLDS, 50, 2).generate(&ds, &alpha);
        let b = WorkloadSpec::new(&DNA_THRESHOLDS, 50, 2).generate(&ds, &alpha);
        assert_eq!(a, b);
        let c = WorkloadSpec::new(&DNA_THRESHOLDS, 50, 3).generate(&ds, &alpha);
        assert_ne!(a, c);
    }

    #[test]
    fn prefix_preserves_order() {
        let (ds, alpha) = small_dataset();
        let w = WorkloadSpec::new(&CITY_THRESHOLDS, 100, 4).generate(&ds, &alpha);
        let p = w.prefix(10);
        assert_eq!(p.len(), 10);
        assert_eq!(p.queries[..], w.queries[..10]);
    }

    #[test]
    fn zero_threshold_queries_are_exact_records() {
        let (ds, alpha) = small_dataset();
        let w = WorkloadSpec::new(&[0], 20, 5).generate(&ds, &alpha);
        for q in w.iter() {
            assert_eq!(q.threshold, 0);
            // 0 edits applied, so the query must literally occur in the data.
            assert!(ds.records().any(|r| r == q.text.as_slice()));
        }
    }

    #[test]
    fn max_threshold_reports_cycle_max() {
        let (ds, alpha) = small_dataset();
        let w = WorkloadSpec::new(&DNA_THRESHOLDS, 8, 6).generate(&ds, &alpha);
        assert_eq!(w.max_threshold(), 16);
        assert_eq!(Workload::default().max_threshold(), 0);
    }
}
