//! File I/O in the competition's formats.
//!
//! * **Data files**: one record per line (`\n`-terminated byte strings).
//! * **Query files**: `query<TAB>threshold` per line.
//! * **Result files**: `query-index: id,id,...` per line, ids ascending —
//!   the format the paper's implementations write for cross-checking.
//!
//! All readers and writers are byte-oriented (records may contain non-UTF-8
//! bytes, e.g. Latin-1 diacritics) and buffered, per the I/O guidance of
//! the Rust performance literature.

use crate::dataset::Dataset;
use crate::workload::{QueryRecord, Workload};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes a dataset as a newline-delimited data file.
///
/// # Errors
/// Returns any underlying I/O error.
///
/// # Panics
/// Panics if a record contains a `\n` byte (unrepresentable in the format).
pub fn write_dataset(path: &Path, dataset: &Dataset) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for (_, record) in dataset.iter() {
        assert!(
            !record.contains(&b'\n'),
            "record contains a newline byte and cannot be serialized"
        );
        out.write_all(record)?;
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Reads a newline-delimited data file into a dataset.
///
/// A trailing newline is optional; empty trailing lines are ignored, but
/// interior empty lines become empty records (the format allows them).
///
/// # Errors
/// Returns any underlying I/O error.
pub fn read_dataset(path: &Path) -> io::Result<Dataset> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut ds = Dataset::new();
    let mut line = Vec::new();
    loop {
        line.clear();
        let n = reader.read_until(b'\n', &mut line)?;
        if n == 0 {
            break;
        }
        if line.last() == Some(&b'\n') {
            line.pop();
        } else if line.is_empty() {
            break;
        }
        ds.push(&line);
    }
    // Drop a single phantom empty record caused by a trailing newline at EOF.
    Ok(ds)
}

/// Writes a workload as a `query<TAB>k` file.
///
/// # Errors
/// Returns any underlying I/O error.
///
/// # Panics
/// Panics if a query contains `\t` or `\n` bytes.
pub fn write_queries(path: &Path, workload: &Workload) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for q in workload.iter() {
        assert!(
            !q.text.contains(&b'\n') && !q.text.contains(&b'\t'),
            "query contains a tab or newline byte and cannot be serialized"
        );
        out.write_all(&q.text)?;
        writeln!(out, "\t{}", q.threshold)?;
    }
    out.flush()
}

/// Reads a `query<TAB>k` file into a workload.
///
/// # Errors
/// Returns an I/O error, including `InvalidData` for malformed lines.
pub fn read_queries(path: &Path) -> io::Result<Workload> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut queries = Vec::new();
    let mut line = Vec::new();
    loop {
        line.clear();
        let n = reader.read_until(b'\n', &mut line)?;
        if n == 0 {
            break;
        }
        if line.last() == Some(&b'\n') {
            line.pop();
        }
        if line.is_empty() {
            continue;
        }
        let tab = line
            .iter()
            .rposition(|&b| b == b'\t')
            .ok_or_else(|| malformed("missing tab separator"))?;
        let threshold: u32 = std::str::from_utf8(&line[tab + 1..])
            .map_err(|_| malformed("non-UTF-8 threshold"))?
            .trim()
            .parse()
            .map_err(|_| malformed("unparsable threshold"))?;
        queries.push(QueryRecord {
            text: line[..tab].to_vec(),
            threshold,
        });
    }
    Ok(Workload { queries })
}

/// Writes per-query result id lists: `index: id,id,...` (ids ascending).
///
/// # Errors
/// Returns any underlying I/O error.
pub fn write_results(path: &Path, results: &[Vec<u32>]) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for (i, ids) in results.iter().enumerate() {
        write!(out, "{i}:")?;
        for (j, id) in ids.iter().enumerate() {
            if j == 0 {
                write!(out, " {id}")?;
            } else {
                write!(out, ",{id}")?;
            }
        }
        writeln!(out)?;
    }
    out.flush()
}

fn malformed(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("query file: {what}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("simsearch-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn dataset_round_trip() {
        let path = tmp("ds");
        let ds = Dataset::from_records(["Berlin", "Bern", "", "Ulm"]);
        write_dataset(&path, &ds).unwrap();
        let back = read_dataset(&path).unwrap();
        assert_eq!(back.len(), 4);
        assert!(ds.iter().zip(back.iter()).all(|(a, b)| a == b));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dataset_round_trip_with_high_bytes() {
        let path = tmp("ds-bytes");
        let ds = Dataset::from_records([&b"K\xE4rnten"[..], &b"\xC2\x80\xC3\xBF"[..]]);
        write_dataset(&path, &ds).unwrap();
        let back = read_dataset(&path).unwrap();
        assert_eq!(back.get(0), b"K\xE4rnten");
        assert_eq!(back.get(1), b"\xC2\x80\xC3\xBF");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn queries_round_trip() {
        let path = tmp("q");
        let w = Workload {
            queries: vec![
                QueryRecord::new("Berlin", 2),
                QueryRecord::new("AGGCGT", 16),
            ],
        };
        write_queries(&path, &w).unwrap();
        let back = read_queries(&path).unwrap();
        assert_eq!(back, w);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_query_line_is_invalid_data() {
        let path = tmp("bad");
        std::fs::write(&path, b"no-tab-here\n").unwrap();
        let err = read_queries(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn results_format() {
        let path = tmp("res");
        write_results(&path, &[vec![1, 5, 9], vec![], vec![0]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "0: 1,5,9\n1:\n2: 0\n");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_dataset_without_trailing_newline() {
        let path = tmp("notrail");
        std::fs::write(&path, b"abc\ndef").unwrap();
        let ds = read_dataset(&path).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.get(1), b"def");
        std::fs::remove_file(&path).unwrap();
    }
}
