//! Deterministic synthetic dataset generators.
//!
//! The paper evaluates on the EDBT/ICDT 2013 competition's two data files,
//! which are no longer distributable. These generators produce synthetic
//! stand-ins that match every property the paper's Table I reports and the
//! paper's hypotheses rely on:
//!
//! * **City names** ([`city`]): ~hundreds of thousands of unique,
//!   human-readable names, byte alphabet approaching 255 values
//!   (Latin letters, punctuation, Latin-1 diacritics and non-Latin
//!   high-byte scripts), lengths ≤ 64 with a short-string-heavy
//!   distribution.
//! * **DNA reads** ([`dna`]): fixed-coverage reads of length ≈100 sampled
//!   from a synthetic genome over `{A, C, G, T}` with sequencing errors and
//!   ambiguous `N` calls, alphabet exactly `{A, C, G, N, T}`.
//!
//! Everything is driven by the crate's own deterministic PRNG: a given
//! `(seed, size)` pair always produces the identical dataset.

pub mod city;
pub mod dna;
pub mod edits;

pub use city::CityGenerator;
pub use dna::DnaGenerator;
pub use edits::apply_random_edits;
