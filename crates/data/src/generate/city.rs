//! Synthetic city-name generator.
//!
//! Produces unique, pronounceable place names with the statistical profile
//! of the competition's `geonames`-derived city file (paper Table I):
//! lengths capped at 64 bytes, most names between 4 and 20 bytes, and a
//! byte alphabet of roughly 255 values. The large alphabet comes from three
//! sources, mirroring real multi-language gazetteer data:
//!
//! 1. plain ASCII names built from syllables ("Karlsheim", "Villanova"),
//! 2. Latin-1 diacritic substitutions ("Villanóva", "Kärlsheim"),
//! 3. rare "transliterated foreign-script" names whose bytes are drawn
//!    from the high half of the byte range (as UTF-8 encoded text would
//!    produce).
//!
//! Names never contain control bytes (so line-oriented file I/O is safe)
//! and are deduplicated: every generated dataset consists of distinct
//! records, like a gazetteer.

use crate::dataset::Dataset;
use crate::rng::Xoshiro256;
use std::collections::HashSet;

/// Maximum name length in bytes (paper Table I: "max. 64").
pub const MAX_NAME_LEN: usize = 64;

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "d", "dr", "f", "fr", "g", "gr", "h", "j", "k", "kl", "kr", "l", "m",
    "n", "p", "pr", "qu", "r", "s", "sch", "sh", "st", "str", "t", "th", "tr", "v", "w", "x", "z",
    "zh", "",
];

const NUCLEI: &[&str] = &[
    "a", "e", "i", "o", "u", "y", "aa", "ai", "au", "ea", "ee", "ei", "ia", "ie", "io", "oo",
    "ou", "ua", "ue",
];

const CODAS: &[&str] = &[
    "", "", "", "b", "ck", "d", "g", "l", "ll", "m", "n", "nd", "ng", "nn", "r", "rg", "rn", "rt",
    "s", "ss", "st", "t", "tt", "x",
];

const PREFIXES: &[&str] = &[
    "Bad ", "New ", "Old ", "San ", "Santa ", "Saint ", "St. ", "Port ", "Fort ", "Lake ",
    "Mount ", "Upper ", "Lower ", "East ", "West ", "North ", "South ", "El ", "La ", "Le ",
    "Los ", "Las ", "Al-", "Kara-",
];

const SUFFIXES: &[&str] = &[
    "burg", "berg", "feld", "stadt", "heim", "hausen", "dorf", "hofen", "ville", "ton", "town",
    "field", "ford", "bridge", "mouth", "port", "grad", "sk", "ovo", "evo", "ino", "pur", "abad",
    "shahr", "gawa", "yama", " City", " Falls", " Springs", " Beach", " Heights", "-sur-Mer",
    "-le-Grand", " am See", " an der Oder",
];

/// ASCII vowel → Latin-1 diacritic variants (ISO-8859-1 byte values).
const DIACRITICS: &[(u8, &[u8])] = &[
    (b'a', &[0xE0, 0xE1, 0xE2, 0xE3, 0xE4, 0xE5]),
    (b'e', &[0xE8, 0xE9, 0xEA, 0xEB]),
    (b'i', &[0xEC, 0xED, 0xEE, 0xEF]),
    (b'o', &[0xF2, 0xF3, 0xF4, 0xF5, 0xF6, 0xF8]),
    (b'u', &[0xF9, 0xFA, 0xFB, 0xFC]),
    (b'y', &[0xFD, 0xFF]),
    (b'c', &[0xE7]),
    (b'n', &[0xF1]),
    (b's', &[0xDF]),
    (b'A', &[0xC0, 0xC1, 0xC2, 0xC3, 0xC4, 0xC5]),
    (b'E', &[0xC8, 0xC9, 0xCA, 0xCB]),
    (b'I', &[0xCC, 0xCD, 0xCE, 0xCF]),
    (b'O', &[0xD2, 0xD3, 0xD4, 0xD5, 0xD6, 0xD8]),
    (b'U', &[0xD9, 0xDA, 0xDB, 0xDC]),
];

/// Configurable generator for synthetic city-name datasets.
/// # Examples
///
/// ```
/// use simsearch_data::CityGenerator;
///
/// let names = CityGenerator::new(42).generate(100);
/// assert_eq!(names.len(), 100);
/// assert!(names.records().all(|n| !n.is_empty() && n.len() <= 64));
/// // Same seed, same dataset.
/// let again = CityGenerator::new(42).generate(100);
/// assert!(names.iter().zip(again.iter()).all(|(a, b)| a == b));
/// ```
#[derive(Debug, Clone)]
pub struct CityGenerator {
    seed: u64,
    /// Probability that a name gets a prefix word.
    prefix_prob: f64,
    /// Probability that a name gets a suffix.
    suffix_prob: f64,
    /// Per-vowel probability of a diacritic substitution.
    diacritic_prob: f64,
    /// Probability of a high-byte "foreign script" name.
    foreign_prob: f64,
}

impl CityGenerator {
    /// Creates a generator with the profile used throughout the
    /// reproduction (seed `0xC17E` by default in the harness).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            prefix_prob: 0.12,
            suffix_prob: 0.45,
            diacritic_prob: 0.04,
            foreign_prob: 0.03,
        }
    }

    /// Overrides the probability of high-byte foreign-script names.
    pub fn foreign_prob(mut self, p: f64) -> Self {
        self.foreign_prob = p;
        self
    }

    /// Generates `count` distinct names.
    pub fn generate(&self, count: usize) -> Dataset {
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let mut seen: HashSet<Vec<u8>> = HashSet::with_capacity(count * 2);
        let mut ds = Dataset::with_capacity(count, count * 12);
        while ds.len() < count {
            let name = self.one_name(&mut rng);
            debug_assert!(!name.is_empty() && name.len() <= MAX_NAME_LEN);
            if seen.insert(name.clone()) {
                ds.push(&name);
            }
        }
        ds
    }

    /// Generates a single name (not deduplicated).
    pub fn one_name(&self, rng: &mut Xoshiro256) -> Vec<u8> {
        if rng.chance(self.foreign_prob) {
            return self.foreign_name(rng);
        }
        let mut name = Vec::with_capacity(24);
        if rng.chance(self.prefix_prob) {
            name.extend_from_slice(rng.choose(PREFIXES).as_bytes());
        }
        let body_start = name.len();
        let syllables = 1 + rng.index(3); // 1..=3
        for _ in 0..syllables {
            name.extend_from_slice(rng.choose(ONSETS).as_bytes());
            name.extend_from_slice(rng.choose(NUCLEI).as_bytes());
            name.extend_from_slice(rng.choose(CODAS).as_bytes());
        }
        if rng.chance(self.suffix_prob) {
            name.extend_from_slice(rng.choose(SUFFIXES).as_bytes());
        }
        // Occasionally build a hyphenated compound, pushing the length tail
        // towards the 64-byte cap (real gazetteers have such entries).
        if rng.chance(0.02) {
            name.push(b'-');
            let extra = 1 + rng.index(2);
            for _ in 0..extra {
                name.extend_from_slice(rng.choose(ONSETS).as_bytes());
                name.extend_from_slice(rng.choose(NUCLEI).as_bytes());
                name.extend_from_slice(rng.choose(CODAS).as_bytes());
            }
            name.extend_from_slice(rng.choose(SUFFIXES).as_bytes());
        }
        // Capitalize the body (prefix words are already capitalized).
        if let Some(b) = name.get_mut(body_start) {
            *b = b.to_ascii_uppercase();
        }
        self.apply_diacritics(rng, &mut name);
        name.truncate(MAX_NAME_LEN);
        if name.is_empty() {
            name.push(b'A'); // unreachable in practice; belt and braces
        }
        name
    }

    fn apply_diacritics(&self, rng: &mut Xoshiro256, name: &mut [u8]) {
        for b in name.iter_mut() {
            if rng.chance(self.diacritic_prob) {
                if let Some((_, variants)) = DIACRITICS.iter().find(|(base, _)| base == b) {
                    *b = *rng.choose(variants);
                }
            }
        }
    }

    /// A name whose bytes imitate UTF-8-encoded non-Latin script: pairs of
    /// a lead byte (0xC2–0xDF) and a continuation byte (0x80–0xBF). This
    /// populates the upper half of the byte alphabet.
    fn foreign_name(&self, rng: &mut Xoshiro256) -> Vec<u8> {
        let chars = 3 + rng.index(10); // 3..=12 two-byte characters
        let mut name = Vec::with_capacity(chars * 2);
        for _ in 0..chars {
            name.push(0xC2 + rng.below(30) as u8); // 0xC2..=0xDF
            name.push(0x80 + rng.below(64) as u8); // 0x80..=0xBF
        }
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    #[test]
    fn generates_requested_count_of_unique_names() {
        let ds = CityGenerator::new(1).generate(5_000);
        assert_eq!(ds.len(), 5_000);
        let set: HashSet<&[u8]> = ds.records().collect();
        assert_eq!(set.len(), 5_000, "names must be unique");
    }

    #[test]
    fn is_deterministic() {
        let a = CityGenerator::new(7).generate(1_000);
        let b = CityGenerator::new(7).generate(1_000);
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
        let c = CityGenerator::new(8).generate(1_000);
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.1 != y.1));
    }

    #[test]
    fn respects_length_cap_and_no_control_bytes() {
        let ds = CityGenerator::new(2).generate(20_000);
        for (_, name) in ds.iter() {
            assert!(!name.is_empty());
            assert!(name.len() <= MAX_NAME_LEN, "name longer than 64 bytes");
            assert!(
                name.iter().all(|&b| b >= 0x20),
                "control byte in generated name"
            );
        }
    }

    #[test]
    fn alphabet_is_large() {
        let ds = CityGenerator::new(3).generate(50_000);
        let alpha = Alphabet::from_corpus(ds.records());
        // Table I reports "ca. 255"; the generator should comfortably
        // exceed 150 distinct byte values at this size.
        assert!(
            alpha.len() > 150,
            "alphabet too small: {} symbols",
            alpha.len()
        );
    }

    #[test]
    fn lengths_are_short_string_heavy() {
        let ds = CityGenerator::new(4).generate(20_000);
        let within_20 = ds
            .records()
            .filter(|r| r.len() <= 20)
            .count();
        assert!(
            within_20 * 10 >= ds.len() * 7,
            "expected ≥70% of names within 20 bytes, got {within_20} of {}",
            ds.len()
        );
    }

    #[test]
    fn foreign_names_use_high_bytes() {
        let gen = CityGenerator::new(5).foreign_prob(1.0);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let name = gen.one_name(&mut rng);
        assert!(name.iter().all(|&b| b >= 0x80));
        assert_eq!(name.len() % 2, 0);
    }
}
