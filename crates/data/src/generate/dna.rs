//! Synthetic DNA-read generator.
//!
//! Stands in for the competition's human-genome read file (paper Table I:
//! 750,000 reads, alphabet `{A, C, G, N, T}`, length ≈100). The generator
//! follows the standard shotgun-sequencing model:
//!
//! 1. a random reference genome over `{A, C, G, T}` is synthesized once,
//! 2. reads of length ≈`read_len` are sampled at uniform positions, from
//!    either strand (reverse-complemented for the minus strand),
//! 3. a per-base error model injects substitutions, insertions, deletions
//!    and ambiguous `N` calls, as a real sequencer would.
//!
//! Sampling from a shared genome means reads overlap, so similarity
//! queries have genuine near-matches in the data — the property the
//! paper's DNA experiments (thresholds up to k = 16) exercise.

use crate::dataset::Dataset;
use crate::rng::Xoshiro256;

const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Configurable generator for synthetic DNA-read datasets.
#[derive(Debug, Clone)]
pub struct DnaGenerator {
    seed: u64,
    /// Reference genome length in bases.
    genome_len: usize,
    /// Target read length (paper: ≈100).
    read_len: usize,
    /// Half-width of the uniform read-length jitter.
    len_jitter: usize,
    /// Per-base substitution probability.
    sub_rate: f64,
    /// Per-base insertion probability.
    ins_rate: f64,
    /// Per-base deletion probability.
    del_rate: f64,
    /// Per-base ambiguous-call (`N`) probability.
    n_rate: f64,
}

impl DnaGenerator {
    /// Creates a generator with the sequencing profile used throughout the
    /// reproduction: 100±10-base reads, 0.5% substitutions, 0.1%
    /// insertions/deletions, 0.2% `N` calls.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            genome_len: 1 << 20,
            read_len: 100,
            len_jitter: 10,
            sub_rate: 0.005,
            ins_rate: 0.001,
            del_rate: 0.001,
            n_rate: 0.002,
        }
    }

    /// Overrides the reference genome length.
    pub fn genome_len(mut self, len: usize) -> Self {
        assert!(len >= self.read_len + self.len_jitter);
        self.genome_len = len;
        self
    }

    /// Overrides the target read length.
    pub fn read_len(mut self, len: usize) -> Self {
        assert!(len > self.len_jitter);
        self.read_len = len;
        self
    }

    /// Generates `count` reads.
    pub fn generate(&self, count: usize) -> Dataset {
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let genome = self.synthesize_genome(&mut rng);
        let mut ds = Dataset::with_capacity(count, count * self.read_len);
        let mut read = Vec::with_capacity(self.read_len + self.len_jitter + 8);
        for _ in 0..count {
            self.sample_read(&mut rng, &genome, &mut read);
            ds.push(&read);
        }
        ds
    }

    fn synthesize_genome(&self, rng: &mut Xoshiro256) -> Vec<u8> {
        // Markov-ish composition: GC content ~41% like the human genome.
        // Cumulative weights for A, C, G, T out of 100.
        let cumulative = [30u64, 50, 70, 100];
        (0..self.genome_len)
            .map(|_| BASES[rng.weighted_index(&cumulative)])
            .collect()
    }

    fn sample_read(&self, rng: &mut Xoshiro256, genome: &[u8], out: &mut Vec<u8>) {
        out.clear();
        let len = self.read_len - self.len_jitter
            + rng.index(2 * self.len_jitter + 1);
        let max_start = genome.len() - len;
        let start = rng.index(max_start + 1);
        let template = &genome[start..start + len];
        let reverse = rng.chance(0.5);
        // Copy the template (possibly reverse-complemented) while applying
        // the error model base by base.
        let emit = |rng: &mut Xoshiro256, base: u8, out: &mut Vec<u8>| {
            if rng.chance(self.del_rate) {
                return; // base dropped
            }
            if rng.chance(self.ins_rate) {
                out.push(BASES[rng.index(4)]);
            }
            let b = if rng.chance(self.n_rate) {
                b'N'
            } else if rng.chance(self.sub_rate) {
                // Substitute with a *different* base.
                let mut nb = BASES[rng.index(4)];
                while nb == base {
                    nb = BASES[rng.index(4)];
                }
                nb
            } else {
                base
            };
            out.push(b);
        };
        if reverse {
            for &b in template.iter().rev() {
                emit(rng, complement(b), out);
            }
        } else {
            for &b in template {
                emit(rng, b, out);
            }
        }
        if out.is_empty() {
            out.push(b'A'); // only reachable with a pathological error model
        }
    }
}

/// Watson–Crick complement; `N` stays `N`.
pub fn complement(base: u8) -> u8 {
    match base {
        b'A' => b'T',
        b'T' => b'A',
        b'C' => b'G',
        b'G' => b'C',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    #[test]
    fn generates_requested_count() {
        let ds = DnaGenerator::new(1).genome_len(10_000).generate(500);
        assert_eq!(ds.len(), 500);
    }

    #[test]
    fn is_deterministic() {
        let a = DnaGenerator::new(9).genome_len(20_000).generate(200);
        let b = DnaGenerator::new(9).genome_len(20_000).generate(200);
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
    }

    #[test]
    fn alphabet_is_acgnt() {
        let ds = DnaGenerator::new(2).genome_len(50_000).generate(2_000);
        let alpha = Alphabet::from_corpus(ds.records());
        let dna = Alphabet::dna();
        for &s in alpha.symbols() {
            assert!(dna.contains(s), "unexpected symbol {s:#x}");
        }
        // N must actually occur at the default error rate and this size.
        assert!(alpha.contains(b'N'), "no ambiguous calls generated");
        assert_eq!(alpha.len(), 5);
    }

    #[test]
    fn read_lengths_are_near_100() {
        let ds = DnaGenerator::new(3).genome_len(50_000).generate(2_000);
        for (_, r) in ds.iter() {
            // 100 ± 10 jitter, ±few indels.
            assert!(
                (85..=115).contains(&r.len()),
                "read length {} out of expected envelope",
                r.len()
            );
        }
        let mean: f64 = ds.records().map(|r| r.len() as f64).sum::<f64>() / ds.len() as f64;
        assert!((95.0..105.0).contains(&mean), "mean length {mean}");
    }

    #[test]
    fn reads_overlap_the_genome() {
        // With a small genome and many reads, near-duplicates must exist:
        // at least two reads share a 20-byte substring.
        let ds = DnaGenerator::new(4).genome_len(2_000).generate(200);
        let first = ds.get(0);
        let probe = &first[0..20.min(first.len())];
        let hits = ds
            .records()
            .filter(|r| r.windows(probe.len()).any(|w| w == probe))
            .count();
        assert!(hits >= 1);
    }

    #[test]
    fn complement_is_involutive() {
        for b in [b'A', b'C', b'G', b'T', b'N'] {
            assert_eq!(complement(complement(b)), b);
        }
    }
}
