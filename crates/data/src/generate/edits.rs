//! Random edit operations, used to derive query workloads from records.
//!
//! The competition's query files were built by perturbing data strings;
//! [`apply_random_edits`] reproduces that: it applies a requested number of
//! uniformly chosen insert / delete / substitute operations (the three
//! operations of the unweighted edit distance, paper §2.2) at random
//! positions. After `e` operations the edit distance to the original is at
//! most `e` (it can be less when operations cancel out), so a query built
//! with `e ≤ k` is guaranteed at least one match at threshold `k`.

use crate::alphabet::Alphabet;
use crate::rng::Xoshiro256;

/// One of the three unit-cost operations of the edit distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// Insert a random symbol at a random position.
    Insert,
    /// Delete the symbol at a random position.
    Delete,
    /// Replace the symbol at a random position with a *different* symbol.
    Substitute,
}

/// Applies `count` random edit operations to `input`, drawing replacement
/// symbols from `alphabet`. Returns the edited string.
///
/// Deletions are skipped (replaced by insertions) when the string is empty,
/// so the result of `count` operations always differs from `input` by an
/// edit distance of at most `count`.
///
/// # Panics
/// Panics if `alphabet` is empty (there would be nothing to insert).
pub fn apply_random_edits(
    rng: &mut Xoshiro256,
    input: &[u8],
    count: usize,
    alphabet: &Alphabet,
) -> Vec<u8> {
    assert!(!alphabet.is_empty(), "cannot edit with an empty alphabet");
    let mut s = input.to_vec();
    for _ in 0..count {
        let op = match rng.index(3) {
            0 => EditOp::Insert,
            1 => EditOp::Delete,
            _ => EditOp::Substitute,
        };
        apply_one(rng, &mut s, op, alphabet);
    }
    s
}

fn apply_one(rng: &mut Xoshiro256, s: &mut Vec<u8>, op: EditOp, alphabet: &Alphabet) {
    let op = if s.is_empty() { EditOp::Insert } else { op };
    match op {
        EditOp::Insert => {
            let pos = rng.index(s.len() + 1);
            let sym = *rng.choose(alphabet.symbols());
            s.insert(pos, sym);
        }
        EditOp::Delete => {
            let pos = rng.index(s.len());
            s.remove(pos);
        }
        EditOp::Substitute => {
            let pos = rng.index(s.len());
            if alphabet.len() == 1 {
                // Nothing different to substitute with; degrade to a
                // delete+insert-equivalent no-op substitution.
                s[pos] = alphabet.symbols()[0];
                return;
            }
            let old = s[pos];
            let mut sym = *rng.choose(alphabet.symbols());
            while sym == old {
                sym = *rng.choose(alphabet.symbols());
            }
            s[pos] = sym;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ascii() -> Alphabet {
        Alphabet::new(b"abcdefghij")
    }

    #[test]
    fn zero_edits_is_identity() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let out = apply_random_edits(&mut rng, b"hello", 0, &ascii());
        assert_eq!(out, b"hello");
    }

    #[test]
    fn single_substitute_changes_exactly_one_byte() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut s = b"abcde".to_vec();
        apply_one(&mut rng, &mut s, EditOp::Substitute, &ascii());
        assert_eq!(s.len(), 5);
        let diffs = s.iter().zip(b"abcde").filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn insert_grows_delete_shrinks() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut s = b"abc".to_vec();
        apply_one(&mut rng, &mut s, EditOp::Insert, &ascii());
        assert_eq!(s.len(), 4);
        apply_one(&mut rng, &mut s, EditOp::Delete, &ascii());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn delete_on_empty_becomes_insert() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let mut s = Vec::new();
        apply_one(&mut rng, &mut s, EditOp::Delete, &ascii());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn edit_count_bounds_length_change() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for e in 0..8 {
            let out = apply_random_edits(&mut rng, b"abcdefgh", e, &ascii());
            let diff = (out.len() as i64 - 8).unsigned_abs() as usize;
            assert!(diff <= e, "{e} edits changed length by {diff}");
        }
    }

    #[test]
    fn singleton_alphabet_does_not_hang() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        let a = Alphabet::new(b"x");
        let out = apply_random_edits(&mut rng, b"xxx", 10, &a);
        assert!(out.iter().all(|&b| b == b'x'));
    }
}
