//! Frequency vectors — the paper's "future work" early filter, implemented.
//!
//! §6 of the paper proposes storing, per string, the number of occurrences
//! of a small tracked symbol set (A, C, G, N, T for DNA; the vowels
//! A, E, I, O, U for city names) and using it for early filtering. The
//! underlying bound is classical (it is also what PETER's frequency
//! vectors exploit): a single edit operation changes the full symbol
//! histogram by at most 2 in L1 norm (a substitution decrements one
//! count and increments another; an insert/delete changes one count by 1).
//! Projecting the histogram onto a tracked subset plus an "other" bucket
//! can only shrink the L1 distance, so for any tracked set
//!
//! ```text
//! ed(x, y) ≥ ⌈ L1(freq(x), freq(y)) / 2 ⌉
//! ```
//!
//! which gives a sound reject test: if the bound exceeds `k`, the pair
//! cannot match.

/// Number of tracked symbols in a [`FreqVector`] (plus one "other" bucket).
pub const TRACKED: usize = 5;

/// Per-string occurrence counts of five tracked symbols plus everything
/// else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FreqVector {
    /// `counts[i]` = occurrences of `tracked[i]`; `counts[5]` = all other
    /// bytes.
    pub counts: [u32; TRACKED + 1],
}

impl FreqVector {
    /// Computes the vector of `s` for a tracked symbol set.
    ///
    /// `tracked` must be sorted and contain distinct bytes (e.g.
    /// [`crate::alphabet::DNA_SYMBOLS`] or
    /// [`crate::alphabet::VOWEL_SYMBOLS`]).
    pub fn compute(s: &[u8], tracked: &[u8; TRACKED]) -> Self {
        debug_assert!(tracked.windows(2).all(|w| w[0] < w[1]));
        let mut counts = [0u32; TRACKED + 1];
        for &b in s {
            match tracked.iter().position(|&t| t == b) {
                Some(i) => counts[i] += 1,
                None => counts[TRACKED] += 1,
            }
        }
        Self { counts }
    }

    /// Total number of bytes counted (= string length).
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// L1 distance between two vectors.
    pub fn l1(&self, other: &Self) -> u32 {
        self.counts
            .iter()
            .zip(other.counts.iter())
            .map(|(&a, &b)| a.abs_diff(b))
            .sum()
    }

    /// A lower bound on the edit distance between the two underlying
    /// strings: `max(⌈L1/2⌉, |len(x) − len(y)|)`.
    pub fn ed_lower_bound(&self, other: &Self) -> u32 {
        let l1 = self.l1(other);
        let len_diff = self.total().abs_diff(other.total());
        l1.div_ceil(2).max(len_diff)
    }

    /// Component-wise maximum (used to aggregate subtree bounds in index
    /// nodes).
    pub fn component_max(&self, other: &Self) -> Self {
        let mut counts = [0u32; TRACKED + 1];
        for (c, (a, b)) in counts
            .iter_mut()
            .zip(self.counts.iter().zip(other.counts.iter()))
        {
            *c = (*a).max(*b);
        }
        Self { counts }
    }

    /// Component-wise minimum.
    pub fn component_min(&self, other: &Self) -> Self {
        let mut counts = [0u32; TRACKED + 1];
        for (c, (a, b)) in counts
            .iter_mut()
            .zip(self.counts.iter().zip(other.counts.iter()))
        {
            *c = (*a).min(*b);
        }
        Self { counts }
    }
}

/// Lower bound on the edit distance between a string with vector `q` and
/// *any* string whose vector lies component-wise in `[lo, hi]`.
///
/// Each component contributes its distance from the interval; the sum is an
/// L1 distance to the nearest point of the box, and halving it (rounded up)
/// is sound by the same argument as [`FreqVector::ed_lower_bound`].
pub fn box_lower_bound(q: &FreqVector, lo: &FreqVector, hi: &FreqVector) -> u32 {
    let mut l1 = 0u32;
    for ((&v, &lo), &hi) in q.counts.iter().zip(lo.counts.iter()).zip(hi.counts.iter()) {
        if v < lo {
            l1 += lo - v;
        } else if v > hi {
            l1 += v - hi;
        }
    }
    l1.div_ceil(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{DNA_SYMBOLS, VOWEL_SYMBOLS};

    #[test]
    fn compute_counts_tracked_and_other() {
        let v = FreqVector::compute(b"AGGCGTX", &DNA_SYMBOLS);
        // tracked order: A C G N T
        assert_eq!(v.counts, [1, 1, 3, 0, 1, 1]);
        assert_eq!(v.total(), 7);
    }

    #[test]
    fn l1_is_symmetric_and_zero_on_equal() {
        let a = FreqVector::compute(b"BERLIN", &VOWEL_SYMBOLS);
        let b = FreqVector::compute(b"BERN", &VOWEL_SYMBOLS);
        assert_eq!(a.l1(&b), b.l1(&a));
        assert_eq!(a.l1(&a), 0);
    }

    #[test]
    fn lower_bound_is_sound_on_examples() {
        // Known distances: ed("AGGCGT","AGAGT") = 2 (paper Figure 1).
        let x = FreqVector::compute(b"AGGCGT", &DNA_SYMBOLS);
        let y = FreqVector::compute(b"AGAGT", &DNA_SYMBOLS);
        assert!(x.ed_lower_bound(&y) <= 2);

        // A pair that differs wildly must get a strong bound.
        let p = FreqVector::compute(b"AAAAAAAA", &DNA_SYMBOLS);
        let q = FreqVector::compute(b"TTTTTTTT", &DNA_SYMBOLS);
        assert_eq!(p.ed_lower_bound(&q), 8);
    }

    #[test]
    fn length_difference_dominates_when_larger() {
        let a = FreqVector::compute(b"AA", &DNA_SYMBOLS);
        let b = FreqVector::compute(b"AAAAAA", &DNA_SYMBOLS);
        assert_eq!(a.ed_lower_bound(&b), 4);
    }

    #[test]
    fn component_min_max() {
        let a = FreqVector::compute(b"AACG", &DNA_SYMBOLS);
        let b = FreqVector::compute(b"CGTT", &DNA_SYMBOLS);
        let mx = a.component_max(&b);
        let mn = a.component_min(&b);
        assert_eq!(mx.counts, [2, 1, 1, 0, 2, 0]);
        assert_eq!(mn.counts, [0, 1, 1, 0, 0, 0]);
    }

    #[test]
    fn box_bound_is_zero_inside_the_box() {
        let a = FreqVector::compute(b"AACG", &DNA_SYMBOLS);
        assert_eq!(box_lower_bound(&a, &a, &a), 0);
        let lo = FreqVector::default();
        let hi = FreqVector {
            counts: [9; TRACKED + 1],
        };
        assert_eq!(box_lower_bound(&a, &lo, &hi), 0);
    }

    #[test]
    fn box_bound_counts_distance_to_box() {
        let q = FreqVector::compute(b"AAAA", &DNA_SYMBOLS); // A=4
        let lo = FreqVector::compute(b"C", &DNA_SYMBOLS); // C=1
        let hi = FreqVector::compute(b"CC", &DNA_SYMBOLS); // C=2
        // A: 4 vs [0,0] -> 4; C: 0 vs [1,2] -> 1; total L1 ≥ 5 -> bound 3.
        assert_eq!(box_lower_bound(&q, &lo, &hi), 3);
    }
}
