//! Deterministic pseudo-random number generation.
//!
//! The paper's evaluation depends on the *properties* of its datasets
//! (cardinality, length distribution, alphabet size), not on particular
//! bytes. To make every experiment in this repository bit-for-bit
//! reproducible across machines and dependency versions, dataset and
//! workload generation use this self-contained generator instead of an
//! external crate: a [`SplitMix64`] seeder feeding a [`Xoshiro256`]
//! (xoshiro256** 1.0) main generator.
//!
//! Neither generator is cryptographic; they are used exclusively for
//! synthetic-data generation.

/// SplitMix64: a tiny 64-bit generator used to expand one `u64` seed into
/// the 256-bit state of [`Xoshiro256`].
///
/// Reference: Sebastiano Vigna, <http://prng.di.unimi.it/splitmix64.c>.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0: the workhorse generator for all synthetic data.
///
/// Reference: Blackman & Vigna, <http://prng.di.unimi.it/xoshiro256starstar.c>.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is derived from `seed` via
    /// [`SplitMix64`], as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit output (upper half of the 64-bit output,
    /// which has the best statistical quality in the xoshiro family).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform value in `[0, bound)` using Lemire's unbiased
    /// multiply-shift rejection method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire 2018: "Fast Random Integer Generation in an Interval".
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        if lo == hi {
            return lo;
        }
        let span = hi - lo + 1;
        if span == 0 {
            // lo = 0, hi = u64::MAX: the full domain.
            return self.next_u64();
        }
        lo + self.below(span)
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Returns a uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose on empty slice");
        &items[self.index(items.len())]
    }

    /// Fisher–Yates shuffle of a mutable slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples an index from a cumulative weight table (`cumulative` must be
    /// non-decreasing and end with the total weight).
    ///
    /// # Panics
    /// Panics if `cumulative` is empty or its last element is zero.
    pub fn weighted_index(&mut self, cumulative: &[u64]) -> usize {
        let total = *cumulative.last().expect("empty weight table");
        assert!(total > 0, "zero total weight");
        let x = self.below(total);
        // First index whose cumulative weight exceeds x.
        cumulative.partition_point(|&c| c <= x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values for seed 1234567 from Vigna's splitmix64.c.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Xoshiro256::seed_from_u64(99);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000; allow generous 10% tolerance.
            assert!((9_000..11_000).contains(&c), "count {c} out of tolerance");
        }
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = rng.range_inclusive(3, 6);
            assert!((3..=6).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 6;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(21);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Xoshiro256::seed_from_u64(31);
        // Weights 1, 0, 3 -> cumulative 1, 1, 4.
        let cumulative = [1u64, 1, 4];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&cumulative)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight bucket was sampled");
        assert!(counts[2] > counts[0] * 2, "3:1 weighting not observed");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Xoshiro256::seed_from_u64(0).below(0);
    }
}
