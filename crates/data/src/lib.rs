//! # simsearch-data
//!
//! Dataset substrate for the `simsearch` workspace — the reproduction of
//! *"Trying to outperform a well-known index with a sequential scan"*
//! (Hentschel, Meyer, Rommel; EDBT/ICDT 2013).
//!
//! This crate owns everything about the *data* the paper searches:
//!
//! * [`Dataset`] — the flat byte-arena record store every search
//!   implementation consumes;
//! * [`Alphabet`] — byte-symbol sets (Table I's "#Symbols" column);
//! * [`generate`] — deterministic synthetic generators replacing the
//!   unavailable EDBT/ICDT 2013 competition files (city names and DNA
//!   reads with matching statistical profiles);
//! * [`workload`] — `(query, threshold)` workload construction with the
//!   paper's threshold cycles;
//! * [`io`] — competition-format file readers/writers;
//! * [`freq`] — frequency vectors (paper §6 future work, used by the
//!   filter crate and as trie annotations);
//! * [`packed`] — 3-bit DNA dictionary compression (paper §6 future work);
//! * [`sorted`] — lexicographically sorted arena view with an LCP array
//!   (the V7 sorted-prefix scan's preprocessing);
//! * [`rng`] — the self-contained deterministic PRNG behind it all.
//!
//! Strings are treated as byte sequences throughout, mirroring the
//! paper's C++ `std::string` semantics; edit distances operate on bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod dataset;
pub mod freq;
pub mod generate;
pub mod io;
pub mod matches;
pub mod packed;
pub mod rng;
pub mod sorted;
pub mod stats;
pub mod workload;

pub use alphabet::Alphabet;
pub use dataset::{Dataset, RecordId};
pub use freq::FreqVector;
pub use matches::{Match, MatchSet};
pub use generate::{CityGenerator, DnaGenerator};
pub use packed::{PackedDataset, PackedSeq};
pub use rng::Xoshiro256;
pub use sorted::SortedView;
pub use stats::{DatasetStats, StatsSnapshot};
pub use workload::{QueryRecord, Workload, WorkloadSpec, CITY_THRESHOLDS, DNA_THRESHOLDS};
