//! Dataset property reporting (reproduces the paper's Table I).

use crate::alphabet::Alphabet;
use crate::dataset::Dataset;

/// Measured properties of a dataset, matching the columns of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of records ("#Data sets").
    pub records: usize,
    /// Number of distinct byte symbols ("#Symbols").
    pub symbols: usize,
    /// Shortest record length.
    pub min_len: usize,
    /// Longest record length ("Length").
    pub max_len: usize,
    /// Mean record length.
    pub mean_len: f64,
    /// Total bytes across all records.
    pub total_bytes: usize,
}

impl DatasetStats {
    /// Measures `dataset`.
    pub fn compute(dataset: &Dataset) -> Self {
        let alphabet = Alphabet::from_corpus(dataset.records());
        let records = dataset.len();
        let total_bytes = dataset.arena_len();
        Self {
            records,
            symbols: alphabet.len(),
            min_len: dataset.min_len().unwrap_or(0),
            max_len: dataset.max_len().unwrap_or(0),
            mean_len: if records == 0 {
                0.0
            } else {
                total_bytes as f64 / records as f64
            },
            total_bytes,
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} records, {} symbols, length {}..{} (mean {:.1})",
            self.records, self.symbols, self.min_len, self.max_len, self.mean_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_table_one_columns() {
        let ds = Dataset::from_records(["AG", "AGGT", "T"]);
        let s = DatasetStats::compute(&ds);
        assert_eq!(s.records, 3);
        assert_eq!(s.symbols, 3); // A, G, T
        assert_eq!(s.min_len, 1);
        assert_eq!(s.max_len, 4);
        assert!((s.mean_len - 7.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.total_bytes, 7);
    }

    #[test]
    fn empty_dataset_stats() {
        let s = DatasetStats::compute(&Dataset::new());
        assert_eq!(s.records, 0);
        assert_eq!(s.mean_len, 0.0);
    }

    #[test]
    fn display_is_human_readable() {
        let ds = Dataset::from_records(["ab"]);
        let text = DatasetStats::compute(&ds).to_string();
        assert!(text.contains("1 records"));
    }
}
