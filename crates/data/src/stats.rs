//! Dataset property reporting (reproduces the paper's Table I).

use crate::alphabet::Alphabet;
use crate::dataset::Dataset;

/// Measured properties of a dataset, matching the columns of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Number of records ("#Data sets").
    pub records: usize,
    /// Number of distinct byte symbols ("#Symbols").
    pub symbols: usize,
    /// Shortest record length.
    pub min_len: usize,
    /// Longest record length ("Length").
    pub max_len: usize,
    /// Mean record length.
    pub mean_len: f64,
    /// Total bytes across all records.
    pub total_bytes: usize,
}

impl DatasetStats {
    /// Measures `dataset`.
    pub fn compute(dataset: &Dataset) -> Self {
        let alphabet = Alphabet::from_corpus(dataset.records());
        let records = dataset.len();
        let total_bytes = dataset.arena_len();
        Self {
            records,
            symbols: alphabet.len(),
            min_len: dataset.min_len().unwrap_or(0),
            max_len: dataset.max_len().unwrap_or(0),
            mean_len: if records == 0 {
                0.0
            } else {
                total_bytes as f64 / records as f64
            },
            total_bytes,
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} records, {} symbols, length {}..{} (mean {:.1})",
            self.records, self.symbols, self.min_len, self.max_len, self.mean_len
        )
    }
}

/// Binary-layout version of [`StatsSnapshot`] (bumped on layout change).
pub const SNAPSHOT_VERSION: u8 = 1;

/// Upper bound on the number of length-histogram buckets a snapshot
/// stores (and on what [`StatsSnapshot::read_from`] accepts).
const MAX_BUCKETS: usize = 512;

/// A deterministic, integer-only summary of a dataset — the planner's
/// input and the payload persisted alongside saved indexes.
///
/// Unlike [`DatasetStats`] (a float-bearing report type), a snapshot is
/// `Eq`/`Hash`, round-trips exactly through its binary encoding, and
/// carries a bucketed string-length distribution so the planner can
/// estimate length-filter survivor counts without the dataset in hand.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StatsSnapshot {
    /// Number of records.
    pub records: u64,
    /// Number of distinct byte symbols (alphabet size).
    pub symbols: u32,
    /// Shortest record length.
    pub min_len: u32,
    /// Longest record length.
    pub max_len: u32,
    /// Total bytes across all records.
    pub total_bytes: u64,
    /// Width of each length bucket (≥ 1).
    pub bucket_width: u32,
    /// `len_buckets[i]` counts records whose length falls in
    /// `[i * bucket_width, (i + 1) * bucket_width)`.
    pub len_buckets: Vec<u64>,
}

impl StatsSnapshot {
    /// Measures `dataset`. Deterministic: two computes over the same
    /// records produce identical snapshots.
    pub fn compute(dataset: &Dataset) -> Self {
        let alphabet = Alphabet::from_corpus(dataset.records());
        let hist = dataset.length_histogram();
        let max_len = hist.len().saturating_sub(1);
        let bucket_width = (max_len / MAX_BUCKETS + 1) as u32;
        let buckets = max_len / bucket_width as usize + 1;
        let mut len_buckets = vec![0u64; buckets.min(MAX_BUCKETS)];
        for (len, &count) in hist.iter().enumerate() {
            len_buckets[len / bucket_width as usize] += count as u64;
        }
        Self {
            records: dataset.len() as u64,
            symbols: alphabet.len() as u32,
            min_len: dataset.min_len().unwrap_or(0) as u32,
            max_len: max_len as u32,
            total_bytes: dataset.arena_len() as u64,
            bucket_width,
            len_buckets,
        }
    }

    /// Mean record length.
    pub fn mean_len(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.records as f64
        }
    }

    /// Upper bound on the number of records admitted by the length
    /// filter for a query of `query_len` bytes at threshold `k`
    /// (records with `|len - query_len| ≤ k`, rounded out to bucket
    /// boundaries, so the estimate never under-counts).
    pub fn length_survivors(&self, query_len: usize, k: u32) -> u64 {
        if self.len_buckets.is_empty() {
            return 0;
        }
        let w = self.bucket_width.max(1) as usize;
        let lo = query_len.saturating_sub(k as usize) / w;
        let hi = ((query_len + k as usize) / w).min(self.len_buckets.len() - 1);
        if lo > hi {
            return 0;
        }
        self.len_buckets[lo..=hi].iter().sum()
    }

    /// Serializes the snapshot (little-endian, versioned).
    pub fn write_to<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        out.write_all(&[SNAPSHOT_VERSION])?;
        out.write_all(&self.records.to_le_bytes())?;
        out.write_all(&self.symbols.to_le_bytes())?;
        out.write_all(&self.min_len.to_le_bytes())?;
        out.write_all(&self.max_len.to_le_bytes())?;
        out.write_all(&self.total_bytes.to_le_bytes())?;
        out.write_all(&self.bucket_width.to_le_bytes())?;
        out.write_all(&(self.len_buckets.len() as u32).to_le_bytes())?;
        for b in &self.len_buckets {
            out.write_all(&b.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserializes a snapshot written by [`StatsSnapshot::write_to`].
    /// Returns [`std::io::ErrorKind::InvalidData`] on a version or
    /// bounds mismatch — never panics on corrupt input.
    pub fn read_from<R: std::io::Read>(input: &mut R) -> std::io::Result<Self> {
        fn bad(msg: &str) -> std::io::Error {
            std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
        }
        let mut byte = [0u8; 1];
        input.read_exact(&mut byte)?;
        if byte[0] != SNAPSHOT_VERSION {
            return Err(bad("unsupported stats snapshot version"));
        }
        let mut u64buf = [0u8; 8];
        let mut u32buf = [0u8; 4];
        let read_u64 = |input: &mut R, buf: &mut [u8; 8]| -> std::io::Result<u64> {
            input.read_exact(buf)?;
            Ok(u64::from_le_bytes(*buf))
        };
        let read_u32 = |input: &mut R, buf: &mut [u8; 4]| -> std::io::Result<u32> {
            input.read_exact(buf)?;
            Ok(u32::from_le_bytes(*buf))
        };
        let records = read_u64(input, &mut u64buf)?;
        let symbols = read_u32(input, &mut u32buf)?;
        let min_len = read_u32(input, &mut u32buf)?;
        let max_len = read_u32(input, &mut u32buf)?;
        let total_bytes = read_u64(input, &mut u64buf)?;
        let bucket_width = read_u32(input, &mut u32buf)?;
        if bucket_width == 0 {
            return Err(bad("stats snapshot bucket width of zero"));
        }
        let buckets = read_u32(input, &mut u32buf)? as usize;
        if buckets > MAX_BUCKETS {
            return Err(bad("stats snapshot bucket count out of bounds"));
        }
        let mut len_buckets = Vec::with_capacity(buckets);
        for _ in 0..buckets {
            len_buckets.push(read_u64(input, &mut u64buf)?);
        }
        Ok(Self {
            records,
            symbols,
            min_len,
            max_len,
            total_bytes,
            bucket_width,
            len_buckets,
        })
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} records, {} symbols, length {}..{} (mean {:.1}), {} length buckets × {}",
            self.records,
            self.symbols,
            self.min_len,
            self.max_len,
            self.mean_len(),
            self.len_buckets.len(),
            self.bucket_width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_table_one_columns() {
        let ds = Dataset::from_records(["AG", "AGGT", "T"]);
        let s = DatasetStats::compute(&ds);
        assert_eq!(s.records, 3);
        assert_eq!(s.symbols, 3); // A, G, T
        assert_eq!(s.min_len, 1);
        assert_eq!(s.max_len, 4);
        assert!((s.mean_len - 7.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.total_bytes, 7);
    }

    #[test]
    fn empty_dataset_stats() {
        let s = DatasetStats::compute(&Dataset::new());
        assert_eq!(s.records, 0);
        assert_eq!(s.mean_len, 0.0);
    }

    #[test]
    fn display_is_human_readable() {
        let ds = Dataset::from_records(["ab"]);
        let text = DatasetStats::compute(&ds).to_string();
        assert!(text.contains("1 records"));
    }

    #[test]
    fn snapshot_is_deterministic_and_matches_stats() {
        let ds = Dataset::from_records(["AG", "AGGT", "T", "AG"]);
        let a = StatsSnapshot::compute(&ds);
        let b = StatsSnapshot::compute(&ds);
        assert_eq!(a, b);
        let stats = DatasetStats::compute(&ds);
        assert_eq!(a.records as usize, stats.records);
        assert_eq!(a.symbols as usize, stats.symbols);
        assert_eq!(a.min_len as usize, stats.min_len);
        assert_eq!(a.max_len as usize, stats.max_len);
        assert_eq!(a.total_bytes as usize, stats.total_bytes);
        assert!((a.mean_len() - stats.mean_len).abs() < 1e-9);
    }

    #[test]
    fn snapshot_survivors_never_undercount() {
        let ds = Dataset::from_records(["a", "bb", "ccc", "dddd", "eeeee"]);
        let snap = StatsSnapshot::compute(&ds);
        for q_len in 0..8 {
            for k in 0..4u32 {
                let exact = (0..ds.len() as u32)
                    .filter(|&id| {
                        ds.record_len(id).abs_diff(q_len) <= k as usize
                    })
                    .count() as u64;
                assert!(
                    snap.length_survivors(q_len, k) >= exact,
                    "q_len={q_len} k={k}"
                );
            }
        }
        assert_eq!(snap.length_survivors(2, 1), 3); // bb, a, ccc
    }

    #[test]
    fn snapshot_round_trips_through_binary_encoding() {
        let ds = Dataset::from_records(["Berlin", "Bern", "", "Bonn"]);
        let snap = StatsSnapshot::compute(&ds);
        let mut buf = Vec::new();
        snap.write_to(&mut buf).unwrap();
        let back = StatsSnapshot::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_read_rejects_garbage_without_panicking() {
        for cut in 0..16 {
            let garbage = vec![0xFFu8; cut];
            let err = StatsSnapshot::read_from(&mut garbage.as_slice());
            assert!(err.is_err(), "cut={cut}");
        }
        // Wrong version byte.
        let ds = Dataset::from_records(["x"]);
        let mut buf = Vec::new();
        StatsSnapshot::compute(&ds).write_to(&mut buf).unwrap();
        buf[0] = 0xEE;
        let err = StatsSnapshot::read_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Absurd bucket count.
        let mut truncated = Vec::new();
        StatsSnapshot::compute(&ds).write_to(&mut truncated).unwrap();
        // version(1) + records(8) + symbols/min/max(12) + total(8) + width(4)
        let count_at = 33;
        truncated[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = StatsSnapshot::read_from(&mut truncated.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn snapshot_buckets_stay_bounded_for_long_records() {
        let long = "x".repeat(5000);
        let ds = Dataset::from_records([long.as_str(), "y"]);
        let snap = StatsSnapshot::compute(&ds);
        assert!(snap.len_buckets.len() <= 512);
        assert_eq!(snap.len_buckets.iter().sum::<u64>(), 2);
        assert_eq!(snap.length_survivors(5000, 0) + snap.length_survivors(1, 0), 2);
    }
}
