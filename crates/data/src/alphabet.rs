//! Alphabets: the sets of byte symbols a dataset draws from.
//!
//! The paper characterizes its two datasets chiefly by alphabet size
//! (Table I: ≈255 byte values for city names, 5 for DNA reads) and derives
//! its two hypotheses from that property. All strings in this repository
//! are treated as *byte* sequences — exactly what a C++ `std::string`
//! holds — so an alphabet is a subset of the 256 possible byte values.

/// The five DNA symbols used by the competition's read data,
/// in lexicographic order.
pub const DNA_SYMBOLS: [u8; 5] = [b'A', b'C', b'G', b'N', b'T'];

/// The five vowels the paper's "frequency vectors" future-work item tracks
/// for the city-names dataset.
pub const VOWEL_SYMBOLS: [u8; 5] = [b'A', b'E', b'I', b'O', b'U'];

/// A set of byte symbols with O(1) membership and rank lookup.
#[derive(Clone)]
pub struct Alphabet {
    /// Sorted, deduplicated symbol list.
    symbols: Vec<u8>,
    /// `rank[b]` is the index of byte `b` in `symbols`, or `NONE`.
    rank: [u16; 256],
}

const NONE: u16 = u16::MAX;

impl Alphabet {
    /// Builds an alphabet from an arbitrary byte list (duplicates ignored).
    pub fn new(bytes: &[u8]) -> Self {
        let mut present = [false; 256];
        for &b in bytes {
            present[b as usize] = true;
        }
        let symbols: Vec<u8> = (0u16..256)
            .filter(|&b| present[b as usize])
            .map(|b| b as u8)
            .collect();
        let mut rank = [NONE; 256];
        for (i, &s) in symbols.iter().enumerate() {
            rank[s as usize] = i as u16;
        }
        Self { symbols, rank }
    }

    /// The DNA alphabet `{A, C, G, N, T}`.
    pub fn dna() -> Self {
        Self::new(&DNA_SYMBOLS)
    }

    /// Collects the alphabet actually occurring in a corpus of strings.
    pub fn from_corpus<'a, I>(strings: I) -> Self
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut present = [false; 256];
        for s in strings {
            for &b in s {
                present[b as usize] = true;
            }
        }
        let bytes: Vec<u8> = (0u16..256)
            .filter(|&b| present[b as usize])
            .map(|b| b as u8)
            .collect();
        Self::new(&bytes)
    }

    /// Number of distinct symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True if the alphabet contains no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The sorted symbol list.
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }

    /// Whether byte `b` belongs to the alphabet.
    pub fn contains(&self, b: u8) -> bool {
        self.rank[b as usize] != NONE
    }

    /// Rank (index into [`Self::symbols`]) of byte `b`, if present.
    pub fn rank(&self, b: u8) -> Option<usize> {
        let r = self.rank[b as usize];
        (r != NONE).then_some(r as usize)
    }

    /// Whether every byte of `s` belongs to the alphabet.
    pub fn covers(&self, s: &[u8]) -> bool {
        s.iter().all(|&b| self.contains(b))
    }
}

impl std::fmt::Debug for Alphabet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Alphabet({} symbols)", self.symbols.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_alphabet_has_five_sorted_symbols() {
        let a = Alphabet::dna();
        assert_eq!(a.len(), 5);
        assert_eq!(a.symbols(), b"ACGNT");
        assert_eq!(a.rank(b'A'), Some(0));
        assert_eq!(a.rank(b'T'), Some(4));
        assert_eq!(a.rank(b'X'), None);
    }

    #[test]
    fn duplicates_are_ignored() {
        let a = Alphabet::new(b"aabbcc");
        assert_eq!(a.len(), 3);
        assert_eq!(a.symbols(), b"abc");
    }

    #[test]
    fn from_corpus_collects_all_bytes() {
        let corpus: Vec<&[u8]> = vec![b"abc", b"bcd", b"\xffz"];
        let a = Alphabet::from_corpus(corpus);
        assert!(a.contains(b'a'));
        assert!(a.contains(0xff));
        assert!(!a.contains(b'q'));
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn covers_checks_every_byte() {
        let a = Alphabet::dna();
        assert!(a.covers(b"ACGTN"));
        assert!(!a.covers(b"ACGU"));
        assert!(a.covers(b""));
    }

    #[test]
    fn empty_alphabet() {
        let a = Alphabet::new(b"");
        assert!(a.is_empty());
        assert!(!a.contains(b'a'));
    }
}
