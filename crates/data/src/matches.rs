//! Query results: the `(record, distance)` pairs a similarity search
//! returns.
//!
//! Every search implementation in the workspace — each scan rung, each
//! index — returns a [`MatchSet`] normalized to ascending record id, so
//! the paper's correctness methodology ("the results of the first solution
//! will be used for the comparison in the other approaches", §3.7) is a
//! plain equality check.

use crate::dataset::RecordId;

/// One matching record with its edit distance to the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Match {
    /// The matching record's id.
    pub id: RecordId,
    /// `ed(query, record)` (≤ the query threshold).
    pub distance: u32,
}

impl Match {
    /// Convenience constructor.
    pub fn new(id: RecordId, distance: u32) -> Self {
        Self { id, distance }
    }
}

/// All matches of one query, sorted by record id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchSet {
    matches: Vec<Match>,
}

impl MatchSet {
    /// Builds a set from unsorted matches (normalizes to id order).
    ///
    /// # Panics
    /// Panics (debug) if the same record id occurs twice.
    pub fn from_unsorted(mut matches: Vec<Match>) -> Self {
        matches.sort_unstable();
        debug_assert!(
            matches.windows(2).all(|w| w[0].id != w[1].id),
            "duplicate record id in match set"
        );
        Self { matches }
    }

    /// Number of matches.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// True if the query matched nothing.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// The matches, ascending by id.
    pub fn matches(&self) -> &[Match] {
        &self.matches
    }

    /// Just the record ids, ascending.
    pub fn ids(&self) -> Vec<RecordId> {
        self.matches.iter().map(|m| m.id).collect()
    }

    /// Whether record `id` is in the set.
    pub fn contains(&self, id: RecordId) -> bool {
        self.matches.binary_search_by_key(&id, |m| m.id).is_ok()
    }

    /// Iterates over the matches.
    pub fn iter(&self) -> impl Iterator<Item = &Match> + '_ {
        self.matches.iter()
    }
}

impl FromIterator<Match> for MatchSet {
    fn from_iter<I: IntoIterator<Item = Match>>(iter: I) -> Self {
        Self::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_to_id_order() {
        let set = MatchSet::from_unsorted(vec![
            Match::new(9, 1),
            Match::new(2, 0),
            Match::new(5, 2),
        ]);
        assert_eq!(set.ids(), vec![2, 5, 9]);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn equality_ignores_input_order() {
        let a = MatchSet::from_unsorted(vec![Match::new(1, 1), Match::new(2, 2)]);
        let b = MatchSet::from_unsorted(vec![Match::new(2, 2), Match::new(1, 1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn contains_uses_binary_search() {
        let set: MatchSet = [Match::new(4, 0), Match::new(10, 3)].into_iter().collect();
        assert!(set.contains(4));
        assert!(set.contains(10));
        assert!(!set.contains(7));
        assert!(!MatchSet::default().contains(0));
    }
}
