//! Dictionary compression of DNA sequences — the paper's "future work"
//! packing, implemented.
//!
//! §6 of the paper: *"An alphabet of five symbols makes it possible to
//! represent a symbol with three bits."* [`PackedSeq`] stores a sequence
//! over `{A, C, G, N, T}` at 3 bits per symbol, 21 symbols per `u64` word
//! (63 of 64 bits used). The distance crate provides an edit-distance
//! kernel that reads symbols straight out of the packed form, so the
//! ablation benchmark can measure whether the 8×→3-bit reduction in memory
//! traffic pays for the extra bit arithmetic.

/// Symbol codes: A=0, C=1, G=2, N=3, T=4 (alphabetical, matching
/// [`crate::alphabet::DNA_SYMBOLS`]).
pub const CODES: [u8; 5] = [b'A', b'C', b'G', b'N', b'T'];

/// Symbols per 64-bit word at 3 bits each.
pub const SYMS_PER_WORD: usize = 21;

/// A DNA sequence packed at 3 bits per symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSeq {
    words: Vec<u64>,
    len: usize,
}

impl PackedSeq {
    /// Packs an ASCII DNA string. Returns `None` if a byte outside
    /// `{A, C, G, N, T}` occurs.
    pub fn pack(s: &[u8]) -> Option<Self> {
        let mut words = vec![0u64; s.len().div_ceil(SYMS_PER_WORD)];
        for (i, &b) in s.iter().enumerate() {
            let code = CODES.iter().position(|&c| c == b)? as u64;
            let word = i / SYMS_PER_WORD;
            let shift = (i % SYMS_PER_WORD) * 3;
            words[word] |= code << shift;
        }
        Some(Self { words, len: s.len() })
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Symbol code (0..=4) at position `i`.
    ///
    /// # Panics
    /// Panics (via debug assertion / slice indexing) if out of range.
    #[inline]
    pub fn code(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        let word = self.words[i / SYMS_PER_WORD];
        ((word >> ((i % SYMS_PER_WORD) * 3)) & 0b111) as u8
    }

    /// ASCII symbol at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        CODES[self.code(i) as usize]
    }

    /// Unpacks back to ASCII.
    pub fn unpack(&self) -> Vec<u8> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Iterates over symbol codes.
    pub fn codes(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.len).map(move |i| self.code(i))
    }

    /// Bytes of backing storage (for compression-ratio reporting).
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// A dataset-shaped collection of packed sequences sharing one word arena.
#[derive(Debug, Clone, Default)]
pub struct PackedDataset {
    seqs: Vec<PackedSeq>,
}

impl PackedDataset {
    /// Packs every record of a byte dataset. Returns `None` if any record
    /// contains a non-DNA byte.
    pub fn pack(dataset: &crate::dataset::Dataset) -> Option<Self> {
        let seqs = dataset
            .records()
            .map(PackedSeq::pack)
            .collect::<Option<Vec<_>>>()?;
        Some(Self { seqs })
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// True if there are no sequences.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Borrows sequence `i`.
    pub fn get(&self, i: usize) -> &PackedSeq {
        &self.seqs[i]
    }

    /// Iterates over the sequences.
    pub fn iter(&self) -> impl Iterator<Item = &PackedSeq> + '_ {
        self.seqs.iter()
    }

    /// Total packed storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.seqs.iter().map(|s| s.storage_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::generate::dna::DnaGenerator;

    #[test]
    fn pack_unpack_round_trip() {
        for s in [&b""[..], b"A", b"ACGNT", b"TTTTTTTTTTTTTTTTTTTTTTTTTTT"] {
            let p = PackedSeq::pack(s).unwrap();
            assert_eq!(p.len(), s.len());
            assert_eq!(p.unpack(), s);
        }
    }

    #[test]
    fn rejects_non_dna_bytes() {
        assert!(PackedSeq::pack(b"ACGU").is_none());
        assert!(PackedSeq::pack(b"acgt").is_none());
    }

    #[test]
    fn word_boundaries_are_correct() {
        // 22 symbols spans two words (21 per word).
        let s: Vec<u8> = (0..22).map(|i| CODES[i % 5]).collect();
        let p = PackedSeq::pack(&s).unwrap();
        assert_eq!(p.words.len(), 2);
        for (i, &b) in s.iter().enumerate() {
            assert_eq!(p.get(i), b);
        }
    }

    #[test]
    fn generated_reads_round_trip() {
        let ds = DnaGenerator::new(5).genome_len(20_000).generate(300);
        let packed = PackedDataset::pack(&ds).expect("reads are DNA");
        assert_eq!(packed.len(), ds.len());
        for (i, (_, r)) in ds.iter().enumerate() {
            assert_eq!(packed.get(i).unpack(), r);
        }
    }

    #[test]
    fn packing_compresses_close_to_3_bits() {
        let ds = DnaGenerator::new(6).genome_len(20_000).generate(1_000);
        let packed = PackedDataset::pack(&ds).unwrap();
        let raw = ds.arena_len();
        let comp = packed.storage_bytes();
        // 3/8 of raw plus per-record word rounding: must be well under 1/2.
        assert!(comp * 2 < raw, "no compression: {comp} vs {raw}");
    }

    #[test]
    fn non_dna_dataset_is_rejected() {
        let ds = Dataset::from_records(["ACGT", "OOPS"]);
        assert!(PackedDataset::pack(&ds).is_none());
    }
}
