//! The flat dataset container used by every search implementation.
//!
//! The paper's rung 4 ("simple data types and program methods", §3.4)
//! replaces per-string objects with plain contiguous arrays. [`Dataset`] is
//! that representation: one shared byte arena plus an offsets table, so a
//! scan touches memory strictly sequentially and a record access is two
//! loads with no pointer chasing. Earlier rungs that deliberately use
//! heavier representations (e.g. owned `String`s, rung 1) derive them from
//! this container.

/// Identifier of a record within a [`Dataset`]: its insertion index.
pub type RecordId = u32;

/// An immutable collection of byte strings stored in one flat arena.
/// # Examples
///
/// ```
/// use simsearch_data::Dataset;
///
/// let ds = Dataset::from_records(["Berlin", "Bern", "Ulm"]);
/// assert_eq!(ds.len(), 3);
/// assert_eq!(ds.get(1), b"Bern");
/// assert_eq!(ds.max_len(), Some(6));
/// ```
#[derive(Clone, Default)]
pub struct Dataset {
    /// All record bytes, concatenated in insertion order.
    bytes: Vec<u8>,
    /// `offsets[i]..offsets[i+1]` delimits record `i`; `len() + 1` entries.
    offsets: Vec<u32>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self {
            bytes: Vec::new(),
            offsets: vec![0],
        }
    }

    /// Creates an empty dataset pre-sized for `records` records totalling
    /// about `total_bytes` bytes.
    pub fn with_capacity(records: usize, total_bytes: usize) -> Self {
        let mut offsets = Vec::with_capacity(records + 1);
        offsets.push(0);
        Self {
            bytes: Vec::with_capacity(total_bytes),
            offsets,
        }
    }

    /// Builds a dataset from an iterator of byte strings.
    pub fn from_records<I, S>(records: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[u8]>,
    {
        let mut ds = Self::new();
        for r in records {
            ds.push(r.as_ref());
        }
        ds
    }

    /// Appends one record and returns its id.
    ///
    /// # Panics
    /// Panics if the arena would exceed `u32::MAX` bytes or records.
    pub fn push(&mut self, record: &[u8]) -> RecordId {
        let id = self.len();
        assert!(id < u32::MAX as usize, "too many records");
        self.bytes.extend_from_slice(record);
        let end = u32::try_from(self.bytes.len()).expect("dataset arena exceeds 4 GiB");
        self.offsets.push(end);
        id as RecordId
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrows record `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn get(&self, id: RecordId) -> &[u8] {
        let i = id as usize;
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        &self.bytes[start..end]
    }

    /// Length in bytes of record `id` without touching the arena.
    #[inline]
    pub fn record_len(&self, id: RecordId) -> usize {
        let i = id as usize;
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterates over `(id, record)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, &[u8])> + '_ {
        (0..self.len() as u32).map(move |id| (id, self.get(id)))
    }

    /// Iterates over records in insertion order.
    pub fn records(&self) -> impl Iterator<Item = &[u8]> + '_ {
        self.iter().map(|(_, r)| r)
    }

    /// Copies every record into an owned `Vec<Vec<u8>>`.
    ///
    /// This is the *heavy* representation the paper's base implementation
    /// uses; only rung V1 of the scan ladder wants it.
    pub fn to_owned_records(&self) -> Vec<Vec<u8>> {
        self.records().map(|r| r.to_vec()).collect()
    }

    /// Total size of the byte arena.
    pub fn arena_len(&self) -> usize {
        self.bytes.len()
    }

    /// Length of the shortest record, or `None` when empty.
    pub fn min_len(&self) -> Option<usize> {
        (0..self.len() as u32).map(|i| self.record_len(i)).min()
    }

    /// Length of the longest record, or `None` when empty.
    pub fn max_len(&self) -> Option<usize> {
        (0..self.len() as u32).map(|i| self.record_len(i)).max()
    }

    /// Histogram of record lengths: `hist[l]` = number of records of
    /// length `l` (the vector is as long as the longest record + 1).
    pub fn length_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_len().map_or(0, |m| m + 1)];
        for i in 0..self.len() as u32 {
            hist[self.record_len(i)] += 1;
        }
        hist
    }
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Dataset({} records, {} arena bytes)",
            self.len(),
            self.bytes.len()
        )
    }
}

impl<S: AsRef<[u8]>> FromIterator<S> for Dataset {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        Self::from_records(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut ds = Dataset::new();
        let a = ds.push(b"Berlin");
        let b = ds.push(b"Bern");
        let c = ds.push(b"");
        let d = ds.push(b"Ulm");
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.get(a), b"Berlin");
        assert_eq!(ds.get(b), b"Bern");
        assert_eq!(ds.get(c), b"");
        assert_eq!(ds.get(d), b"Ulm");
        assert_eq!(ds.record_len(a), 6);
        assert_eq!(ds.record_len(c), 0);
    }

    #[test]
    fn from_records_preserves_order() {
        let ds = Dataset::from_records(["x", "yy", "zzz"]);
        let collected: Vec<&[u8]> = ds.records().collect();
        assert_eq!(collected, vec![b"x" as &[u8], b"yy", b"zzz"]);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let ds = Dataset::from_records(["a", "b"]);
        let ids: Vec<RecordId> = ds.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn min_max_and_histogram() {
        let ds = Dataset::from_records(["aa", "b", "cccc", "dd"]);
        assert_eq!(ds.min_len(), Some(1));
        assert_eq!(ds.max_len(), Some(4));
        let hist = ds.length_histogram();
        assert_eq!(hist, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn empty_dataset_behaves() {
        let ds = Dataset::new();
        assert!(ds.is_empty());
        assert_eq!(ds.min_len(), None);
        assert_eq!(ds.max_len(), None);
        assert!(ds.length_histogram().is_empty());
    }

    #[test]
    fn to_owned_records_copies() {
        let ds = Dataset::from_records(["ab", "cd"]);
        let owned = ds.to_owned_records();
        assert_eq!(owned, vec![b"ab".to_vec(), b"cd".to_vec()]);
    }

    #[test]
    fn collect_from_iterator() {
        let ds: Dataset = ["p", "q"].into_iter().collect();
        assert_eq!(ds.len(), 2);
    }
}
