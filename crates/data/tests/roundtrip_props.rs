//! Property tests for the data substrate: serialization round trips,
//! packing, workload construction and filter-bound soundness.

use proptest::prelude::*;
use simsearch_data::{
    io, Alphabet, Dataset, FreqVector, PackedSeq, QueryRecord, Workload, WorkloadSpec,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "simsearch-prop-{}-{}-{name}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Line-safe byte strings (no `\n`).
fn record() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec((1u8..=255).prop_filter("no newline", |&b| b != b'\n'), 0..20)
}

/// Tab- and newline-free byte strings (query texts).
fn query_text() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        (1u8..=255).prop_filter("no separators", |&b| b != b'\n' && b != b'\t'),
        0..20,
    )
}

fn dna() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"ACGNT".to_vec()), 0..120)
}

proptest! {
    #[test]
    fn dataset_file_round_trip(records in proptest::collection::vec(record(), 0..20)) {
        let ds = Dataset::from_records(&records);
        let path = tmp("ds");
        io::write_dataset(&path, &ds).unwrap();
        let back = io::read_dataset(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        prop_assert_eq!(back.len(), ds.len());
        prop_assert!(ds.iter().zip(back.iter()).all(|(a, b)| a == b));
    }

    #[test]
    fn query_file_round_trip(texts in proptest::collection::vec(query_text(), 0..15), ks in proptest::collection::vec(0u32..30, 0..15)) {
        let queries: Vec<QueryRecord> = texts
            .into_iter()
            .zip(ks)
            .map(|(t, k)| QueryRecord { text: t, threshold: k })
            .collect();
        let w = Workload { queries };
        let path = tmp("q");
        io::write_queries(&path, &w).unwrap();
        let back = io::read_queries(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        prop_assert_eq!(back, w);
    }

    #[test]
    fn packing_round_trips(seq in dna()) {
        let p = PackedSeq::pack(&seq).unwrap();
        prop_assert_eq!(p.unpack(), seq.clone());
        prop_assert_eq!(p.len(), seq.len());
        for (i, &b) in seq.iter().enumerate() {
            prop_assert_eq!(p.get(i), b);
        }
    }

    #[test]
    fn freq_bound_is_sound(x in dna(), y in dna()) {
        let fx = FreqVector::compute(&x, b"ACGNT");
        let fy = FreqVector::compute(&y, b"ACGNT");
        let d = simsearch_distance::levenshtein(&x, &y);
        prop_assert!(fx.ed_lower_bound(&fy) <= d, "bound exceeded true distance");
    }

    #[test]
    fn workloads_respect_threshold_guarantee(seed in any::<u64>(), count in 1usize..30) {
        // Every generated query is within its threshold of at least one
        // record (it was built with ≤ k edits from one).
        let ds = Dataset::from_records(["AAAA", "CCCC", "GGGG", "TTTT", "ACGT", "AA"]);
        let alpha = Alphabet::dna();
        let w = WorkloadSpec::new(&[0, 1, 2, 3], count, seed).generate(&ds, &alpha);
        for q in w.iter() {
            let best = ds
                .records()
                .map(|r| simsearch_distance::levenshtein(&q.text, r))
                .min()
                .unwrap();
            prop_assert!(best <= q.threshold, "query lost its source record");
        }
    }

    #[test]
    fn alphabet_rank_is_consistent(bytes in proptest::collection::vec(any::<u8>(), 0..40)) {
        let a = Alphabet::new(&bytes);
        for &b in a.symbols() {
            prop_assert!(a.contains(b));
            let r = a.rank(b).unwrap();
            prop_assert_eq!(a.symbols()[r], b);
        }
        for b in 0u16..256 {
            let b = b as u8;
            prop_assert_eq!(a.contains(b), bytes.contains(&b));
        }
    }
}
