//! Property tests for the data substrate: serialization round trips,
//! packing, workload construction and filter-bound soundness.

use simsearch_data::{
    io, Alphabet, Dataset, FreqVector, PackedSeq, QueryRecord, Workload, WorkloadSpec,
};
use simsearch_testkit::{check, gen, prop_assert, prop_assert_eq, Config, Gen};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

const SEED: u64 = 0x000D_A7A0;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "simsearch-prop-{}-{}-{name}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Line-safe byte strings (no `\n`, no NUL).
fn record() -> Gen<Vec<u8>> {
    gen::vec_of(gen::byte_where(|b| b != 0 && b != b'\n'), 0..20)
}

/// Tab- and newline-free byte strings (query texts).
fn query_text() -> Gen<Vec<u8>> {
    gen::vec_of(gen::byte_where(|b| b != 0 && b != b'\n' && b != b'\t'), 0..20)
}

fn dna() -> Gen<Vec<u8>> {
    gen::dna_string(0..120)
}

#[test]
fn dataset_file_round_trip() {
    check(
        "dataset_file_round_trip",
        Config::default().seed(SEED),
        &gen::vec_of(record(), 0..20),
        |records| {
            let ds = Dataset::from_records(records);
            let path = tmp("ds");
            io::write_dataset(&path, &ds).unwrap();
            let back = io::read_dataset(&path).unwrap();
            std::fs::remove_file(&path).unwrap();
            prop_assert_eq!(back.len(), ds.len());
            prop_assert!(ds.iter().zip(back.iter()).all(|(a, b)| a == b));
            Ok(())
        },
    );
}

#[test]
fn query_file_round_trip() {
    check(
        "query_file_round_trip",
        Config::default().seed(SEED),
        &gen::zip(
            gen::vec_of(query_text(), 0..15),
            gen::vec_of(gen::u32_in(0..30), 0..15),
        ),
        |(texts, ks)| {
            let queries: Vec<QueryRecord> = texts
                .iter()
                .zip(ks)
                .map(|(t, k)| QueryRecord {
                    text: t.clone(),
                    threshold: *k,
                })
                .collect();
            let w = Workload { queries };
            let path = tmp("q");
            io::write_queries(&path, &w).unwrap();
            let back = io::read_queries(&path).unwrap();
            std::fs::remove_file(&path).unwrap();
            prop_assert_eq!(back, w);
            Ok(())
        },
    );
}

#[test]
fn packing_round_trips() {
    check(
        "packing_round_trips",
        Config::default().seed(SEED),
        &dna(),
        |seq| {
            let p = PackedSeq::pack(seq).unwrap();
            prop_assert_eq!(&p.unpack(), seq);
            prop_assert_eq!(p.len(), seq.len());
            for (i, &b) in seq.iter().enumerate() {
                prop_assert_eq!(p.get(i), b);
            }
            Ok(())
        },
    );
}

#[test]
fn freq_bound_is_sound() {
    check(
        "freq_bound_is_sound",
        Config::default().seed(SEED),
        &gen::zip(dna(), dna()),
        |(x, y)| {
            let fx = FreqVector::compute(x, b"ACGNT");
            let fy = FreqVector::compute(y, b"ACGNT");
            let d = simsearch_distance::levenshtein(x, y);
            prop_assert!(fx.ed_lower_bound(&fy) <= d, "bound exceeded true distance");
            Ok(())
        },
    );
}

#[test]
fn workloads_respect_threshold_guarantee() {
    check(
        "workloads_respect_threshold_guarantee",
        Config::default().seed(SEED),
        &gen::zip(gen::u64_any(), gen::usize_in(1..30)),
        |(seed, count)| {
            // Every generated query is within its threshold of at least one
            // record (it was built with ≤ k edits from one).
            let ds = Dataset::from_records(["AAAA", "CCCC", "GGGG", "TTTT", "ACGT", "AA"]);
            let alpha = Alphabet::dna();
            let w = WorkloadSpec::new(&[0, 1, 2, 3], *count, *seed).generate(&ds, &alpha);
            for q in w.iter() {
                let best = ds
                    .records()
                    .map(|r| simsearch_distance::levenshtein(&q.text, r))
                    .min()
                    .unwrap();
                prop_assert!(best <= q.threshold, "query lost its source record");
            }
            Ok(())
        },
    );
}

#[test]
fn alphabet_rank_is_consistent() {
    check(
        "alphabet_rank_is_consistent",
        Config::default().seed(SEED),
        &gen::bytes_any(0..40),
        |bytes| {
            let a = Alphabet::new(bytes);
            for &b in a.symbols() {
                prop_assert!(a.contains(b));
                let r = a.rank(b).unwrap();
                prop_assert_eq!(a.symbols()[r], b);
            }
            for b in 0u16..256 {
                let b = b as u8;
                prop_assert_eq!(a.contains(b), bytes.contains(&b));
            }
            Ok(())
        },
    );
}
