//! Property tests for [`SortedView`]: the permutation is a bijection,
//! the LCP array is exact, and id translation round-trips — the
//! invariants the V7 sorted-prefix scan's correctness rests on.

use simsearch_data::{Dataset, SortedView};
use simsearch_testkit::{check, gen, prop_assert, prop_assert_eq, Config, Gen};

const SEED: u64 = 0x0050_47ED;

fn corpus() -> Gen<Vec<Vec<u8>>> {
    // Duplicates, empty strings and shared prefixes are all likely.
    gen::vec_of(gen::bytes_from(b"abAB\xC3", 0..12), 0..40)
}

#[test]
fn permutation_is_a_bijection() {
    check(
        "permutation_is_a_bijection",
        Config::default().seed(SEED),
        &corpus(),
        |words| {
            let ds = Dataset::from_records(words);
            let sv = SortedView::build(&ds);
            prop_assert_eq!(sv.len(), ds.len());
            let mut seen: Vec<u32> = sv.permutation().to_vec();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..ds.len() as u32).collect::<Vec<_>>());
            Ok(())
        },
    );
}

#[test]
fn view_is_sorted_and_lcp_is_exact() {
    check(
        "view_is_sorted_and_lcp_is_exact",
        Config::default().seed(SEED),
        &corpus(),
        |words| {
            let ds = Dataset::from_records(words);
            let sv = SortedView::build(&ds);
            if !sv.is_empty() {
                prop_assert_eq!(sv.lcp(0), 0);
            }
            for pos in 1..sv.len() {
                let (a, b) = (sv.get(pos - 1), sv.get(pos));
                prop_assert!(a <= b, "records out of order at {}", pos);
                let true_lcp = a.iter().zip(b).take_while(|(x, y)| x == y).count();
                prop_assert_eq!(sv.lcp(pos), true_lcp, "lcp wrong at {}", pos);
                // The LCP never exceeds either neighbour's length.
                prop_assert!(sv.lcp(pos) <= sv.record_len(pos - 1).min(sv.record_len(pos)));
            }
            Ok(())
        },
    );
}

#[test]
fn id_translation_round_trips() {
    check(
        "id_translation_round_trips",
        Config::default().seed(SEED),
        &corpus(),
        |words| {
            let ds = Dataset::from_records(words);
            let sv = SortedView::build(&ds);
            for pos in 0..sv.len() {
                // Sorted bytes equal the insertion-order record they map to.
                prop_assert_eq!(sv.get(pos), ds.get(sv.original_id(pos)));
                prop_assert_eq!(sv.record_len(pos), ds.record_len(sv.original_id(pos)));
            }
            // And the inverse direction: every insertion id appears at the
            // position holding its bytes.
            let mut inverse = vec![usize::MAX; ds.len()];
            for pos in 0..sv.len() {
                inverse[sv.original_id(pos) as usize] = pos;
            }
            for (id, record) in ds.iter() {
                prop_assert_eq!(sv.get(inverse[id as usize]), record);
            }
            Ok(())
        },
    );
}

#[test]
fn build_is_deterministic() {
    check(
        "build_is_deterministic",
        Config::cases(30).seed(SEED),
        &corpus(),
        |words| {
            let ds = Dataset::from_records(words);
            let a = SortedView::build(&ds);
            let b = SortedView::build(&ds);
            prop_assert_eq!(a.permutation(), b.permutation());
            Ok(())
        },
    );
}
