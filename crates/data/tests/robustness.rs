//! Robustness: the file readers must never panic on arbitrary input —
//! they either parse or return a structured error.

use proptest::prelude::*;
use simsearch_data::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmp() -> PathBuf {
    std::env::temp_dir().join(format!(
        "simsearch-robust-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #[test]
    fn read_dataset_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let path = tmp();
        std::fs::write(&path, &bytes).unwrap();
        let result = io::read_dataset(&path);
        std::fs::remove_file(&path).unwrap();
        // Data files have no invalid contents: every byte stream parses.
        let ds = result.expect("data files always parse");
        let newlines = bytes.iter().filter(|&&b| b == b'\n').count();
        prop_assert!(ds.len() <= newlines + 1);
    }

    #[test]
    fn read_queries_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let path = tmp();
        std::fs::write(&path, &bytes).unwrap();
        // Must not panic; Err is fine (malformed lines).
        let _ = io::read_queries(&path);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_radix_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let path = tmp();
        std::fs::write(&path, &bytes).unwrap();
        let _ = simsearch_index::load_radix(&path);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_radix_never_panics_on_truncations(n_records in 1usize..6, cut in 0usize..200) {
        // A valid file truncated at an arbitrary point must error, not panic.
        let records: Vec<String> = (0..n_records).map(|i| format!("rec{i}")).collect();
        let ds = simsearch_data::Dataset::from_records(&records);
        let trie = simsearch_index::radix::build(&ds);
        let path = tmp();
        simsearch_index::save_radix(&path, &trie).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let cut = cut.min(bytes.len());
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let result = simsearch_index::load_radix(&path);
        std::fs::remove_file(&path).unwrap();
        if cut < bytes.len() {
            prop_assert!(result.is_err(), "truncated file parsed successfully");
        }
    }
}
