//! Robustness: the file readers must never panic on arbitrary input —
//! they either parse or return a structured error.

use simsearch_data::io;
use simsearch_testkit::{check, gen, prop_assert, Config};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

const SEED: u64 = 0x20B_057;

fn tmp() -> PathBuf {
    std::env::temp_dir().join(format!(
        "simsearch-robust-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

#[test]
fn read_dataset_never_panics() {
    check(
        "read_dataset_never_panics",
        Config::default().seed(SEED),
        &gen::bytes_any(0..300),
        |bytes| {
            let path = tmp();
            std::fs::write(&path, bytes).unwrap();
            let result = io::read_dataset(&path);
            std::fs::remove_file(&path).unwrap();
            // Data files have no invalid contents: every byte stream parses.
            let ds = result.expect("data files always parse");
            let newlines = bytes.iter().filter(|&&b| b == b'\n').count();
            prop_assert!(ds.len() <= newlines + 1);
            Ok(())
        },
    );
}

#[test]
fn read_queries_never_panics() {
    check(
        "read_queries_never_panics",
        Config::default().seed(SEED),
        &gen::bytes_any(0..300),
        |bytes| {
            let path = tmp();
            std::fs::write(&path, bytes).unwrap();
            // Must not panic; Err is fine (malformed lines).
            let _ = io::read_queries(&path);
            std::fs::remove_file(&path).unwrap();
            Ok(())
        },
    );
}

#[test]
fn load_radix_never_panics_on_garbage() {
    check(
        "load_radix_never_panics_on_garbage",
        Config::default().seed(SEED),
        &gen::bytes_any(0..400),
        |bytes| {
            let path = tmp();
            std::fs::write(&path, bytes).unwrap();
            let _ = simsearch_index::load_radix(&path);
            std::fs::remove_file(&path).unwrap();
            Ok(())
        },
    );
}

#[test]
fn load_radix_never_panics_on_truncations() {
    check(
        "load_radix_never_panics_on_truncations",
        Config::default().seed(SEED),
        &gen::zip(gen::usize_in(1..6), gen::usize_in(0..200)),
        |(n_records, cut)| {
            // A valid file truncated at an arbitrary point must error, not
            // panic.
            let records: Vec<String> = (0..*n_records).map(|i| format!("rec{i}")).collect();
            let ds = simsearch_data::Dataset::from_records(&records);
            let trie = simsearch_index::radix::build(&ds);
            let path = tmp();
            simsearch_index::save_radix(&path, &trie).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            let cut = (*cut).min(bytes.len());
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let result = simsearch_index::load_radix(&path);
            std::fs::remove_file(&path).unwrap();
            if cut < bytes.len() {
                prop_assert!(result.is_err(), "truncated file parsed successfully");
            }
            Ok(())
        },
    );
}
