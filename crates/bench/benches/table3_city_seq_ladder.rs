//! Table III: the six-rung sequential ladder on the city-names dataset.
//! Expected shape: each rung at least as fast as the previous, except
//! rung 5 (thread-per-query), which regresses; rung 2 is the big drop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simsearch_bench::Scale;
use simsearch_core::{EngineKind, SearchEngine, SeqVariant};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let preset = Scale::bench().city();
    let workload = preset.workload.prefix(30);
    let mut group = c.benchmark_group("table3_city_seq_ladder");
    for (i, variant) in SeqVariant::ladder(8).into_iter().enumerate() {
        let engine = SearchEngine::build(&preset.dataset, EngineKind::Scan(variant));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("rung{}", i + 1)),
            &variant,
            |b, _| b.iter(|| engine.run(&workload)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
