//! Table III: the six-rung sequential ladder on the city-names dataset.
//! Expected shape: each rung at least as fast as the previous, except
//! rung 5 (thread-per-query), which regresses; rung 2 is the big drop.

use simsearch_bench::Scale;
use simsearch_core::{EngineKind, SearchEngine, SeqVariant};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    let preset = Scale::bench().city();
    let workload = preset.workload.prefix(h.queries(30));
    let mut group = h.group("table3_city_seq_ladder");
    for (i, variant) in SeqVariant::ladder(8).into_iter().enumerate() {
        let engine = SearchEngine::build(&preset.dataset, EngineKind::Scan(variant));
        group.bench(&format!("rung{}", i + 1), || engine.run(&workload));
    }
    group.finish();
}
