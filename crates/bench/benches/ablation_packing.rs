//! Ablation for the paper's §6 "Dictionary Compression" future-work
//! question: does packing DNA at 3 bits per symbol accelerate the
//! bounded edit distance? Compares the byte-level banded kernel against
//! the packed-sequence kernel over the same candidate set.

use simsearch_bench::Scale;
use simsearch_data::PackedDataset;
use simsearch_distance::packed::{ed_within_packed_with, query_codes};
use simsearch_distance::{ed_within_banded_with, levenshtein};
use simsearch_testkit::bench::Harness;
use std::hint::black_box;

fn main() {
    let h = Harness::new();
    let preset = Scale::bench().dna();
    let packed = PackedDataset::pack(&preset.dataset).expect("DNA packs");
    let queries: Vec<(Vec<u8>, u32)> = preset
        .workload
        .queries
        .iter()
        .take(h.queries(5))
        .map(|q| (q.text.clone(), q.threshold))
        .collect();
    // Cross-check once: both kernels agree on the first query.
    {
        let (q, k) = &queries[0];
        let qc = query_codes(q).unwrap();
        let mut b1 = Vec::new();
        let mut b2 = Vec::new();
        for (i, (_, r)) in preset.dataset.iter().enumerate() {
            let byte = ed_within_banded_with(&mut b1, q, r, *k);
            let pk = ed_within_packed_with(&mut b2, &qc, packed.get(i), *k);
            assert_eq!(byte, pk, "kernel divergence on {:?}", levenshtein(q, r));
        }
    }
    let mut group = h.group("ablation_packing_dna");
    {
        let mut rows = Vec::new();
        group.bench("byte_banded", || {
            let mut hits = 0u32;
            for (q, k) in &queries {
                for (_, r) in preset.dataset.iter() {
                    if ed_within_banded_with(&mut rows, q, r, *k).is_some() {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        });
    }
    {
        let mut rows = Vec::new();
        let compiled: Vec<(Vec<u8>, u32)> = queries
            .iter()
            .map(|(q, k)| (query_codes(q).unwrap(), *k))
            .collect();
        group.bench("packed_3bit_banded", || {
            let mut hits = 0u32;
            for (qc, k) in &compiled {
                for seq in packed.iter() {
                    if ed_within_packed_with(&mut rows, qc, seq, *k).is_some() {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        });
    }
    group.finish();
}
