//! Ablation: similarity self-join strategies on the city-names profile
//! (the venue's join competition track). Four rungs at k = 1:
//!
//! * `nested_loop` — every unordered pair through the banded kernel;
//! * `length_sorted` — sort by length, verify only inside the ±k
//!   length window;
//! * `pass_join` — PASS-JOIN: even k+1 partitions, inverted segment
//!   index, substring-selection probing;
//! * `min_join` — MinJoin: local-hash-minima anchors with the
//!   length-window pool fallback for short records.
//!
//! The committed JSON carries a `counters` object with the candidate
//! accounting of one PASS-JOIN and one MinJoin run — how far each
//! filter stack cuts below the quadratic pair count is the point of
//! the rung, and wall-clock alone cannot show it.

use simsearch_core::join::{nested_loop_join, sorted_join};
use simsearch_core::{min_join_with_stats, pass_join_with_stats, presets, Strategy};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    // Smoke mode joins a smaller corpus; the baselines are quadratic.
    let records = if h.measuring() { 4_000 } else { 300 };
    let preset = presets::city(records);
    let ds = &preset.dataset;
    let k = 1;
    // One accounting pass outside the timed loop: candidate counts and
    // segment-index shape for both partition-based rungs.
    let (pass_pairs, pass_stats) = pass_join_with_stats(ds, k, Strategy::Sequential);
    let (_, min_stats) = min_join_with_stats(ds, k, Strategy::Sequential, Default::default());
    let quadratic = (ds.len() as u64) * (ds.len() as u64 - 1) / 2;
    let mut group = h.group("ablation_join_city");
    group.set_workload("city", ds.len(), 0, "1");
    group.set_counters(&[
        ("pairs_in_result", pass_pairs.len() as u64),
        ("quadratic_pairs", quadratic),
        ("pass_candidates_verified", pass_stats.candidates_verified),
        ("pass_seg_buckets", pass_stats.seg_buckets),
        ("pass_seg_postings", pass_stats.seg_postings),
        ("min_candidates_verified", min_stats.candidates_verified),
        ("min_fallback_records", min_stats.fallback_records),
    ]);
    group.bench("nested_loop", || nested_loop_join(ds, k));
    group.bench("length_sorted", || sorted_join(ds, k));
    group.bench("pass_join", || {
        pass_join_with_stats(ds, k, Strategy::Sequential).0
    });
    group.bench("min_join", || {
        min_join_with_stats(ds, k, Strategy::Sequential, Default::default()).0
    });
    group.finish();
    h.publish_snapshot("ablation_join_city");
}
