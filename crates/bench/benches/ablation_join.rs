//! Ablation: similarity self-join strategies — nested loop, length
//! sorted, index probe — on the city-names profile (the venue's join
//! competition track).

use simsearch_core::join::{index_join, nested_loop_join, sorted_join};
use simsearch_core::presets;
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    // Smoke mode joins a smaller corpus; the join is quadratic-ish.
    let records = if h.measuring() { 1_500 } else { 300 };
    let preset = presets::city(records);
    let ds = &preset.dataset;
    let mut group = h.group("ablation_join_city_k1");
    group.bench("nested_loop", || nested_loop_join(ds, 1));
    group.bench("length_sorted", || sorted_join(ds, 1));
    group.bench("index_probe", || index_join(ds, 1));
    group.finish();
}
