//! Ablation: similarity self-join strategies — nested loop, length
//! sorted, index probe — on the city-names profile (the venue's join
//! competition track).

use criterion::{criterion_group, criterion_main, Criterion};
use simsearch_core::join::{index_join, nested_loop_join, sorted_join};
use simsearch_core::presets;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let preset = presets::city(1_500);
    let ds = &preset.dataset;
    let mut group = c.benchmark_group("ablation_join_city_k1");
    group.bench_function("nested_loop", |b| b.iter(|| nested_loop_join(ds, 1)));
    group.bench_function("length_sorted", |b| b.iter(|| sorted_join(ds, 1)));
    group.bench_function("index_probe", |b| b.iter(|| index_join(ds, 1)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
