//! Table II: management of parallelism in the sequential solution on the
//! city-names dataset — rung 6 swept over 4/8/16/32 pool threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simsearch_bench::Scale;
use simsearch_core::{EngineKind, SearchEngine, SeqVariant};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let preset = Scale::bench().city();
    let workload = preset.workload.prefix(50);
    let mut group = c.benchmark_group("table2_city_seq_threads");
    for threads in simsearch_bench::experiments::THREAD_SWEEP {
        let engine = SearchEngine::build(
            &preset.dataset,
            EngineKind::Scan(SeqVariant::V6Pool { threads }),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, _| b.iter(|| engine.run(&workload)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
