//! Ablation: BK-tree vs radix trie vs flat scan on the city profile —
//! how the classic metric-space index fares against the paper's
//! contenders (BK-trees degrade towards a scan as k grows relative to
//! string length).

use simsearch_bench::Scale;
use simsearch_core::{EngineKind, IdxVariant, SearchEngine, SeqVariant, Strategy};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    let preset = Scale::bench().city();
    let workload = preset.workload.prefix(h.queries(40));
    let engines = [
        ("flat_scan", EngineKind::Scan(SeqVariant::V4Flat)),
        (
            "radix_modern",
            EngineKind::IndexModern(IdxVariant::I2Compressed),
        ),
        (
            "bk_tree",
            EngineKind::Bk {
                strategy: Strategy::Sequential,
            },
        ),
    ];
    let mut group = h.group("ablation_bktree_city");
    for (name, kind) in engines {
        let engine = SearchEngine::build(&preset.dataset, kind);
        group.bench(name, || engine.run(&workload));
    }
    group.finish();
}
