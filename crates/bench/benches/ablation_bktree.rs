//! Ablation: BK-tree vs radix trie vs flat scan on the city profile —
//! how the classic metric-space index fares against the paper's
//! contenders (BK-trees degrade towards a scan as k grows relative to
//! string length).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simsearch_bench::Scale;
use simsearch_core::{EngineKind, IdxVariant, SearchEngine, SeqVariant, Strategy};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let preset = Scale::bench().city();
    let workload = preset.workload.prefix(40);
    let engines = [
        ("flat_scan", EngineKind::Scan(SeqVariant::V4Flat)),
        (
            "radix_modern",
            EngineKind::IndexModern(IdxVariant::I2Compressed),
        ),
        (
            "bk_tree",
            EngineKind::Bk {
                strategy: Strategy::Sequential,
            },
        ),
    ];
    let mut group = c.benchmark_group("ablation_bktree_city");
    for (name, kind) in engines {
        let engine = SearchEngine::build(&preset.dataset, kind);
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| engine.run(&workload))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
