//! Ablation: executor strategies under a skewed workload — the paper's
//! fixed static partition vs the dynamic work queue vs the adaptive
//! master/slave pool. The DNA threshold cycle (0/4/8/16) makes query
//! costs vary by orders of magnitude, which is exactly the imbalance the
//! paper's §3.6 worries about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simsearch_bench::Scale;
use simsearch_core::{EngineKind, KernelKind, SearchEngine, Strategy};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let preset = Scale::bench().dna();
    let workload = preset.workload.prefix(24);
    let strategies = [
        Strategy::Sequential,
        Strategy::ThreadPerQuery,
        Strategy::FixedPool { threads: 4 },
        Strategy::WorkQueue { threads: 4 },
        Strategy::Adaptive { max_threads: 4 },
    ];
    let mut group = c.benchmark_group("ablation_executors_dna");
    for strategy in strategies {
        let engine = SearchEngine::build(
            &preset.dataset,
            EngineKind::ScanCustom {
                kernel: KernelKind::EarlyAbort,
                strategy,
            },
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, _| b.iter(|| engine.run(&workload)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
