//! Ablation: executor strategies under a skewed workload — the paper's
//! fixed static partition vs the dynamic work queue vs the adaptive
//! master/slave pool. The DNA threshold cycle (0/4/8/16) makes query
//! costs vary by orders of magnitude, which is exactly the imbalance the
//! paper's §3.6 worries about.

use simsearch_bench::Scale;
use simsearch_core::{EngineKind, KernelKind, SearchEngine, Strategy};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    let preset = Scale::bench().dna();
    let workload = preset.workload.prefix(h.queries(24));
    let strategies = [
        Strategy::Sequential,
        Strategy::ThreadPerQuery,
        Strategy::FixedPool { threads: 4 },
        Strategy::WorkQueue { threads: 4 },
        Strategy::Adaptive { max_threads: 4 },
    ];
    let mut group = h.group("ablation_executors_dna");
    for strategy in strategies {
        let engine = SearchEngine::build(
            &preset.dataset,
            EngineKind::ScanCustom {
                kernel: KernelKind::EarlyAbort,
                strategy,
            },
        );
        group.bench(&strategy.name(), || engine.run(&workload));
    }
    group.finish();
}
