//! Figure 6: best sequential scan vs. best index-based solution on the
//! city-names dataset, at each solution's best thread count.

use simsearch_bench::experiments::{CITY_IDX_BEST_THREADS, CITY_SEQ_BEST_THREADS};
use simsearch_bench::Scale;
use simsearch_core::{
    Backend, EngineKind, IdxVariant, SearchEngine, SeqVariant, ShardBy, ShardedBackend,
};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    let preset = Scale::bench().city();
    let workload = preset.workload.prefix(h.queries(50));
    let best_scan = SearchEngine::build(
        &preset.dataset,
        EngineKind::Scan(SeqVariant::V6Pool {
            threads: CITY_SEQ_BEST_THREADS,
        }),
    );
    let best_index = SearchEngine::build(
        &preset.dataset,
        EngineKind::Index(IdxVariant::I3Pool {
            threads: CITY_IDX_BEST_THREADS,
        }),
    );
    let best_index_modern = SearchEngine::build(
        &preset.dataset,
        EngineKind::IndexModern(IdxVariant::I3Pool {
            threads: CITY_IDX_BEST_THREADS,
        }),
    );
    // The V8 bit-parallel sweep (single-threaded kernel; the chunked
    // executor path is ablated separately), for the scan-extension row.
    let best_scan_v8 = SearchEngine::build(
        &preset.dataset,
        EngineKind::Scan(SeqVariant::V8BitParallel),
    );
    // The adaptive planner, calibrated on this very workload (probe cost
    // is build cost, mirroring index construction) and given the same
    // thread budget as the best fixed competitor.
    let auto = SearchEngine::build_auto(&preset.dataset, CITY_IDX_BEST_THREADS, Some(&workload));
    // The same calibrated planning, but per length-partitioned shard:
    // four planners, each calibrated on the same workload and
    // specialized to its own length band, fanned out under the same
    // thread budget (narrow bands let the shard-level length prune skip
    // non-intersecting shards).
    let sharded_auto = ShardedBackend::calibrated_with(
        &preset.dataset,
        4,
        ShardBy::Len,
        CITY_IDX_BEST_THREADS,
        &workload,
    );
    sharded_auto.prepare();
    let mut group = h.group("fig6_city_best");
    group.set_workload("city", preset.dataset.len(), workload.len(), "0, 1, 2, 3");
    group.bench("best_scan", || best_scan.run(&workload));
    group.bench("best_index_paper", || best_index.run(&workload));
    group.bench("best_index_modern", || best_index_modern.run(&workload));
    group.bench("best_scan_v8", || best_scan_v8.run(&workload));
    group.bench("auto", || auto.run(&workload));
    group.bench("sharded_auto", || sharded_auto.run_workload(&workload));
    if let Some(counts) = auto.plan_counts() {
        group.set_plan_decisions(&counts);
    }
    group.finish();
    // The canonical snapshot lives at the repo root (ci.sh checks it in).
    h.publish_snapshot("fig6_city_best");
}
