//! Figure 6: best sequential vs best index-based solution on city names.
//! Expected shape (paper): the optimized scan beats the paper-pruned
//! index; the modern-pruned index is included for the flip analysis in
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use simsearch_bench::experiments::{CITY_IDX_BEST_THREADS, CITY_SEQ_BEST_THREADS};
use simsearch_bench::Scale;
use simsearch_core::{EngineKind, IdxVariant, SearchEngine, SeqVariant};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let preset = Scale::bench().city();
    let workload = preset.workload.prefix(50);
    let mut group = c.benchmark_group("fig6_city_best");
    let scan = SearchEngine::build(
        &preset.dataset,
        EngineKind::Scan(SeqVariant::V6Pool {
            threads: CITY_SEQ_BEST_THREADS,
        }),
    );
    group.bench_function("best_scan", |b| b.iter(|| scan.run(&workload)));
    let paper_idx = SearchEngine::build(
        &preset.dataset,
        EngineKind::Index(IdxVariant::I3Pool {
            threads: CITY_IDX_BEST_THREADS,
        }),
    );
    group.bench_function("best_index_paper", |b| b.iter(|| paper_idx.run(&workload)));
    let modern_idx = SearchEngine::build(
        &preset.dataset,
        EngineKind::IndexModern(IdxVariant::I3Pool {
            threads: CITY_IDX_BEST_THREADS,
        }),
    );
    group.bench_function("best_index_modern", |b| {
        b.iter(|| modern_idx.run(&workload))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
