//! Table V: the index ladder on the city-names dataset — base trie,
//! compressed tree, parallel compressed tree (all with the paper's §4.1
//! pruning), plus the modern-pruning extension for comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simsearch_bench::Scale;
use simsearch_core::{EngineKind, IdxVariant, SearchEngine};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let preset = Scale::bench().city();
    let workload = preset.workload.prefix(30);
    let mut group = c.benchmark_group("table5_city_idx_ladder");
    for (i, variant) in IdxVariant::ladder(32).into_iter().enumerate() {
        let engine = SearchEngine::build(&preset.dataset, EngineKind::Index(variant));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("rung{}", i + 1)),
            &variant,
            |b, _| b.iter(|| engine.run(&workload)),
        );
    }
    let modern = SearchEngine::build(
        &preset.dataset,
        EngineKind::IndexModern(IdxVariant::I2Compressed),
    );
    group.bench_function("ext_modern_pruning", |b| b.iter(|| modern.run(&workload)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
