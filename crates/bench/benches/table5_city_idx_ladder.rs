//! Table V: the index ladder on the city-names dataset — base trie,
//! compressed tree, parallel compressed tree (all with the paper's §4.1
//! pruning), plus the modern-pruning extension for comparison.

use simsearch_bench::Scale;
use simsearch_core::{EngineKind, IdxVariant, SearchEngine};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    let preset = Scale::bench().city();
    let workload = preset.workload.prefix(h.queries(30));
    let mut group = h.group("table5_city_idx_ladder");
    for (i, variant) in IdxVariant::ladder(32).into_iter().enumerate() {
        let engine = SearchEngine::build(&preset.dataset, EngineKind::Index(variant));
        group.bench(&format!("rung{}", i + 1), || engine.run(&workload));
    }
    let modern = SearchEngine::build(
        &preset.dataset,
        EngineKind::IndexModern(IdxVariant::I2Compressed),
    );
    group.bench("ext_modern_pruning", || modern.run(&workload));
    group.finish();
}
