//! Ablation: what does LCP-based DP reuse buy a flat scan? The V4 flat
//! scan (restart every record) vs the V7 sorted-prefix scan (resume at
//! the LCP) vs the best index under modern pruning, on both workload
//! profiles. DNA's heavy-prefix sortedness is where reuse should pay the
//! most; city names bound the benefit on short, diverse strings.

use simsearch_bench::experiments::{CITY_IDX_BEST_THREADS, DNA_IDX_BEST_THREADS};
use simsearch_bench::Scale;
use simsearch_core::{EngineKind, IdxVariant, SearchEngine, SeqVariant};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    let scale = Scale::bench();
    for (name, preset, queries, idx_threads, thresholds) in [
        ("city", scale.city(), 50, CITY_IDX_BEST_THREADS, "0, 1, 2, 3"),
        ("dna", scale.dna(), 20, DNA_IDX_BEST_THREADS, "0, 4, 8, 16"),
    ] {
        let workload = preset.workload.prefix(h.queries(queries));
        let v4 = SearchEngine::build(&preset.dataset, EngineKind::Scan(SeqVariant::V4Flat));
        let v7 = SearchEngine::build(
            &preset.dataset,
            EngineKind::Scan(SeqVariant::V7SortedPrefix),
        );
        let index = SearchEngine::build(
            &preset.dataset,
            EngineKind::IndexModern(IdxVariant::I3Pool {
                threads: idx_threads,
            }),
        );
        let group_name = format!("ablation_lcp_reuse_{name}");
        let mut group = h.group(&group_name);
        group.set_workload(name, preset.dataset.len(), workload.len(), thresholds);
        group.bench("v4_flat", || v4.run(&workload));
        group.bench("v7_sorted_prefix", || v7.run(&workload));
        group.bench("best_index_modern", || index.run(&workload));
        group.finish();
        h.publish_snapshot(&group_name);
    }
}
