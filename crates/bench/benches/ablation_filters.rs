//! Ablation for the paper's §6 "Frequency vectors" future-work question
//! (early filtering via symbol counts) and the q-gram baseline: compares
//! the plain compressed index, the frequency-annotated index, and the
//! inverted q-gram index.

use simsearch_bench::Scale;
use simsearch_core::{EngineKind, IdxVariant, SearchEngine, Strategy};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    let scale = Scale::bench();
    for (name, preset, queries) in [("city", scale.city(), 50), ("dna", scale.dna(), 20)] {
        let workload = preset.workload.prefix(h.queries(queries));
        let mut group = h.group(&format!("ablation_filters_{name}"));
        let plain = SearchEngine::build(
            &preset.dataset,
            EngineKind::IndexModern(IdxVariant::I2Compressed),
        );
        group.bench("radix_plain", || plain.run(&workload));
        let freq = SearchEngine::build(
            &preset.dataset,
            EngineKind::RadixFreq {
                strategy: Strategy::Sequential,
            },
        );
        group.bench("radix_freq_vectors", || freq.run(&workload));
        let qgram = SearchEngine::build(
            &preset.dataset,
            EngineKind::Qgram {
                q: if name == "dna" { 3 } else { 2 },
                strategy: Strategy::Sequential,
            },
        );
        group.bench("qgram_index", || qgram.run(&workload));
        let suffix = SearchEngine::build(
            &preset.dataset,
            EngineKind::Suffix {
                strategy: Strategy::Sequential,
            },
        );
        group.bench("suffix_array", || suffix.run(&workload));
        group.finish();
    }
}
