//! Ablation for the paper's §6 "Frequency vectors" future-work question
//! (early filtering via symbol counts) and the q-gram baseline: compares
//! the plain compressed index, the frequency-annotated index, and the
//! inverted q-gram index.

use criterion::{criterion_group, criterion_main, Criterion};
use simsearch_bench::Scale;
use simsearch_core::{EngineKind, IdxVariant, SearchEngine, Strategy};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    for (name, preset, queries) in [
        ("city", scale.city(), 50),
        ("dna", scale.dna(), 20),
    ] {
        let workload = preset.workload.prefix(queries);
        let mut group = c.benchmark_group(format!("ablation_filters_{name}"));
        let plain = SearchEngine::build(
            &preset.dataset,
            EngineKind::IndexModern(IdxVariant::I2Compressed),
        );
        group.bench_function("radix_plain", |b| b.iter(|| plain.run(&workload)));
        let freq = SearchEngine::build(
            &preset.dataset,
            EngineKind::RadixFreq {
                strategy: Strategy::Sequential,
            },
        );
        group.bench_function("radix_freq_vectors", |b| b.iter(|| freq.run(&workload)));
        let qgram = SearchEngine::build(
            &preset.dataset,
            EngineKind::Qgram {
                q: if name == "dna" { 3 } else { 2 },
                strategy: Strategy::Sequential,
            },
        );
        group.bench_function("qgram_index", |b| b.iter(|| qgram.run(&workload)));
        let suffix = SearchEngine::build(
            &preset.dataset,
            EngineKind::Suffix {
                strategy: Strategy::Sequential,
            },
        );
        group.bench_function("suffix_array", |b| b.iter(|| suffix.run(&workload)));
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
