//! Table VII: the six-rung sequential ladder on the DNA dataset.
//! Rung 1 (naive full matrix) runs on a shorter workload prefix — the
//! paper itself only estimates this rung ("≈ half a day").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simsearch_bench::Scale;
use simsearch_core::{EngineKind, SearchEngine, SeqVariant};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let preset = Scale::bench().dna();
    let workload = preset.workload.prefix(20);
    let naive_workload = preset.workload.prefix(4);
    let mut group = c.benchmark_group("table7_dna_seq_ladder");
    for (i, variant) in SeqVariant::ladder(16).into_iter().enumerate() {
        let engine = SearchEngine::build(&preset.dataset, EngineKind::Scan(variant));
        let w = if variant == SeqVariant::V1Base {
            &naive_workload
        } else {
            &workload
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!(
                "rung{}{}",
                i + 1,
                if variant == SeqVariant::V1Base {
                    "_subsampled"
                } else {
                    ""
                }
            )),
            &variant,
            |b, _| b.iter(|| engine.run(w)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
