//! Table VII: the six-rung sequential ladder on the DNA dataset.
//! Rung 1 (naive full matrix) runs on a shorter workload prefix — the
//! paper itself only estimates this rung ("≈ half a day").

use simsearch_bench::Scale;
use simsearch_core::{EngineKind, SearchEngine, SeqVariant};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    let preset = Scale::bench().dna();
    let workload = preset.workload.prefix(h.queries(20));
    // The naive rung gets an even shorter prefix; in smoke mode a single
    // query keeps the full-matrix scan affordable.
    let naive_workload = preset.workload.prefix(if h.measuring() { 4 } else { 1 });
    let mut group = h.group("table7_dna_seq_ladder");
    for (i, variant) in SeqVariant::ladder(16).into_iter().enumerate() {
        let engine = SearchEngine::build(&preset.dataset, EngineKind::Scan(variant));
        let (w, suffix) = if variant == SeqVariant::V1Base {
            (&naive_workload, "_subsampled")
        } else {
            (&workload, "")
        };
        group.bench(&format!("rung{}{suffix}", i + 1), || engine.run(w));
    }
    group.finish();
}
