//! Ablation for the paper's §6 "Number of data records" future-work
//! question: *"Has the number of data records an effect on the best
//! solution?"* — the scan and both index modes measured over a record
//! sweep on city names.

use simsearch_core::presets;
use simsearch_core::{EngineKind, IdxVariant, SearchEngine, SeqVariant};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    // Smoke mode keeps only the smallest sweep point to stay fast.
    let sweep: &[usize] = if h.measuring() {
        &[1_000, 4_000, 16_000]
    } else {
        &[1_000]
    };
    for &records in sweep {
        let preset = presets::city(records);
        let workload = preset.workload.prefix(h.queries(20));
        let mut group = h.group(&format!("ablation_scaling_city_{records}"));
        let scan = SearchEngine::build(&preset.dataset, EngineKind::Scan(SeqVariant::V4Flat));
        group.bench("scan", || scan.run(&workload));
        let paper_idx = SearchEngine::build(
            &preset.dataset,
            EngineKind::Index(IdxVariant::I2Compressed),
        );
        group.bench("index_paper", || paper_idx.run(&workload));
        let modern_idx = SearchEngine::build(
            &preset.dataset,
            EngineKind::IndexModern(IdxVariant::I2Compressed),
        );
        group.bench("index_modern", || modern_idx.run(&workload));
        group.finish();
    }
}
