//! Ablation for the paper's §6 "Number of data records" future-work
//! question: *"Has the number of data records an effect on the best
//! solution?"* — the scan and both index modes measured over a record
//! sweep on city names.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simsearch_core::presets;
use simsearch_core::{EngineKind, IdxVariant, SearchEngine, SeqVariant};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    for records in [1_000usize, 4_000, 16_000] {
        let preset = presets::city(records);
        let workload = preset.workload.prefix(20);
        let mut group = c.benchmark_group(format!("ablation_scaling_city_{records}"));
        let scan = SearchEngine::build(&preset.dataset, EngineKind::Scan(SeqVariant::V4Flat));
        group.bench_with_input(BenchmarkId::new("scan", records), &records, |b, _| {
            b.iter(|| scan.run(&workload))
        });
        let paper_idx = SearchEngine::build(
            &preset.dataset,
            EngineKind::Index(IdxVariant::I2Compressed),
        );
        group.bench_with_input(
            BenchmarkId::new("index_paper", records),
            &records,
            |b, _| b.iter(|| paper_idx.run(&workload)),
        );
        let modern_idx = SearchEngine::build(
            &preset.dataset,
            EngineKind::IndexModern(IdxVariant::I2Compressed),
        );
        group.bench_with_input(
            BenchmarkId::new("index_modern", records),
            &records,
            |b, _| b.iter(|| modern_idx.run(&workload)),
        );
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
