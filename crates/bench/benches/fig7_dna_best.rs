//! Figure 7: best sequential vs best index-based solution on DNA reads.
//! Expected shape (paper): the index beats the optimized scan; in this
//! reproduction that verdict holds under modern pruning — see the
//! prune-mode analysis in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use simsearch_bench::experiments::{DNA_IDX_BEST_THREADS, DNA_SEQ_BEST_THREADS};
use simsearch_bench::Scale;
use simsearch_core::{EngineKind, IdxVariant, SearchEngine, SeqVariant};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let preset = Scale::bench().dna();
    let workload = preset.workload.prefix(20);
    let mut group = c.benchmark_group("fig7_dna_best");
    let scan = SearchEngine::build(
        &preset.dataset,
        EngineKind::Scan(SeqVariant::V6Pool {
            threads: DNA_SEQ_BEST_THREADS,
        }),
    );
    group.bench_function("best_scan", |b| b.iter(|| scan.run(&workload)));
    let paper_idx = SearchEngine::build(
        &preset.dataset,
        EngineKind::Index(IdxVariant::I3Pool {
            threads: DNA_IDX_BEST_THREADS,
        }),
    );
    group.bench_function("best_index_paper", |b| b.iter(|| paper_idx.run(&workload)));
    let modern_idx = SearchEngine::build(
        &preset.dataset,
        EngineKind::IndexModern(IdxVariant::I3Pool {
            threads: DNA_IDX_BEST_THREADS,
        }),
    );
    group.bench_function("best_index_modern", |b| {
        b.iter(|| modern_idx.run(&workload))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
