//! Table VIII: management of parallelism in the index-based solution on the
//! DNA dataset — compressed tree swept over 4/8/16/32 pool threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simsearch_bench::Scale;
use simsearch_core::{EngineKind, IdxVariant, SearchEngine};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let preset = Scale::bench().dna();
    let workload = preset.workload.prefix(30);
    let mut group = c.benchmark_group("table8_dna_idx_threads");
    for threads in simsearch_bench::experiments::THREAD_SWEEP {
        let engine = SearchEngine::build(
            &preset.dataset,
            EngineKind::IndexModern(IdxVariant::I3Pool { threads }),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, _| b.iter(|| engine.run(&workload)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
