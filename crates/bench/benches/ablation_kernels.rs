//! Ablation: bounded-distance kernels under the flat scan — the paper's
//! rung-2 early-abort kernel vs the banded (Ukkonen) and bit-parallel
//! (Myers) extensions, on both workload profiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simsearch_bench::Scale;
use simsearch_core::{EngineKind, KernelKind, SearchEngine, Strategy};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    for (name, preset, queries) in [
        ("city", scale.city(), 50),
        ("dna", scale.dna(), 20),
    ] {
        let workload = preset.workload.prefix(queries);
        let mut group = c.benchmark_group(format!("ablation_kernels_{name}"));
        for kernel in KernelKind::ALL {
            let engine = SearchEngine::build(
                &preset.dataset,
                EngineKind::ScanCustom {
                    kernel,
                    strategy: Strategy::Sequential,
                },
            );
            group.bench_with_input(
                BenchmarkId::from_parameter(kernel.name()),
                &kernel,
                |b, _| b.iter(|| engine.run(&workload)),
            );
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
