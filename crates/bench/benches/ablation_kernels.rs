//! Ablation: bounded-distance kernels under the flat scan — the paper's
//! rung-2 early-abort kernel vs the banded (Ukkonen) and bit-parallel
//! (Myers) extensions, on both workload profiles.

use simsearch_bench::Scale;
use simsearch_core::{EngineKind, KernelKind, SearchEngine, Strategy};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    let scale = Scale::bench();
    for (name, preset, queries) in [("city", scale.city(), 50), ("dna", scale.dna(), 20)] {
        let workload = preset.workload.prefix(h.queries(queries));
        let mut group = h.group(&format!("ablation_kernels_{name}"));
        for kernel in KernelKind::ALL {
            let engine = SearchEngine::build(
                &preset.dataset,
                EngineKind::ScanCustom {
                    kernel,
                    strategy: Strategy::Sequential,
                },
            );
            group.bench(kernel.name(), || engine.run(&workload));
        }
        group.finish();
    }
}
