//! Table IX: the index ladder on the DNA dataset — base trie,
//! compressed tree, parallel compressed tree (all with the paper's §4.1
//! pruning), plus the modern-pruning extension for comparison.

use simsearch_bench::Scale;
use simsearch_core::{EngineKind, IdxVariant, SearchEngine};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    let preset = Scale::bench().dna();
    let workload = preset.workload.prefix(h.queries(10));
    let mut group = h.group("table9_dna_idx_ladder");
    for (i, variant) in IdxVariant::ladder(16).into_iter().enumerate() {
        let engine = SearchEngine::build(&preset.dataset, EngineKind::Index(variant));
        group.bench(&format!("rung{}", i + 1), || engine.run(&workload));
    }
    let modern = SearchEngine::build(
        &preset.dataset,
        EngineKind::IndexModern(IdxVariant::I2Compressed),
    );
    group.bench("ext_modern_pruning", || modern.run(&workload));
    group.finish();
}
