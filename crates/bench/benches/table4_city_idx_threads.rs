//! Table IV: management of parallelism in the index-based solution on the
//! city-names dataset — compressed tree swept over 4/8/16/32 pool threads.

use simsearch_bench::Scale;
use simsearch_core::{EngineKind, IdxVariant, SearchEngine};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    let preset = Scale::bench().city();
    let workload = preset.workload.prefix(h.queries(50));
    let mut group = h.group("table4_city_idx_threads");
    for threads in simsearch_bench::experiments::THREAD_SWEEP {
        let engine = SearchEngine::build(
            &preset.dataset,
            EngineKind::IndexModern(IdxVariant::I3Pool { threads }),
        );
        group.bench(&threads.to_string(), || engine.run(&workload));
    }
    group.finish();
}
