//! Ablation: trie pruning strength — the paper's §4.1 prefix condition
//! (full-width rows + `d_m` tolerance) vs the modern row-minimum prune
//! with banded rows. This is the knob that decides the paper's headline
//! question (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use simsearch_bench::Scale;
use simsearch_core::{EngineKind, IdxVariant, SearchEngine};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    for (name, preset, queries) in [
        ("city", scale.city(), 30),
        ("dna", scale.dna(), 10),
    ] {
        let workload = preset.workload.prefix(queries);
        let mut group = c.benchmark_group(format!("ablation_pruning_{name}"));
        let paper = SearchEngine::build(
            &preset.dataset,
            EngineKind::Index(IdxVariant::I2Compressed),
        );
        group.bench_function("paper_prune", |b| b.iter(|| paper.run(&workload)));
        let modern = SearchEngine::build(
            &preset.dataset,
            EngineKind::IndexModern(IdxVariant::I2Compressed),
        );
        group.bench_function("modern_prune", |b| b.iter(|| modern.run(&workload)));
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
