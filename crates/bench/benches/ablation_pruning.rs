//! Ablation: trie pruning strength — the paper's §4.1 prefix condition
//! (full-width rows + `d_m` tolerance) vs the modern row-minimum prune
//! with banded rows. This is the knob that decides the paper's headline
//! question (see EXPERIMENTS.md).

use simsearch_bench::Scale;
use simsearch_core::{EngineKind, IdxVariant, SearchEngine};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    let scale = Scale::bench();
    for (name, preset, queries) in [("city", scale.city(), 30), ("dna", scale.dna(), 10)] {
        let workload = preset.workload.prefix(h.queries(queries));
        let mut group = h.group(&format!("ablation_pruning_{name}"));
        let paper = SearchEngine::build(
            &preset.dataset,
            EngineKind::Index(IdxVariant::I2Compressed),
        );
        group.bench("paper_prune", || paper.run(&workload));
        let modern = SearchEngine::build(
            &preset.dataset,
            EngineKind::IndexModern(IdxVariant::I2Compressed),
        );
        group.bench("modern_prune", || modern.run(&workload));
        group.finish();
    }
}
