//! Table VI: management of parallelism in the sequential solution on the
//! DNA dataset — rung 6 swept over 4/8/16/32 pool threads.

use simsearch_bench::Scale;
use simsearch_core::{EngineKind, SearchEngine, SeqVariant};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    let preset = Scale::bench().dna();
    let workload = preset.workload.prefix(h.queries(30));
    let mut group = h.group("table6_dna_seq_threads");
    for threads in simsearch_bench::experiments::THREAD_SWEEP {
        let engine = SearchEngine::build(
            &preset.dataset,
            EngineKind::Scan(SeqVariant::V6Pool { threads }),
        );
        group.bench(&threads.to_string(), || engine.run(&workload));
    }
    group.finish();
}
