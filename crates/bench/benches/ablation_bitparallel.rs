//! Ablation: what does bit-parallelism buy the sorted-prefix sweep?
//! Three rungs on both workload profiles:
//!
//! * `v7_sorted_prefix` — scalar row-stack DP, LCP resume (the rung V8
//!   generalizes);
//! * `myers_restart` — bit-parallel Myers, but restarted from scratch
//!   on every record (flat scan order, no reuse);
//! * `v8_bitparallel` — Myers blocks over the sorted arena, resumed at
//!   64-cell block granularity from the running LCP floor.
//!
//! The committed JSON also carries a `counters` object with the
//! words-vs-cells accounting of one full workload pass: V7's scalar DP
//! cells against V8's words advanced / words reused / row-equivalent
//! cells — the word-level work collapse is the point of the rung, and
//! wall-clock alone cannot show it.

use simsearch_bench::Scale;
use simsearch_core::{EngineKind, KernelKind, SearchEngine, SeqVariant, Strategy};
use simsearch_data::SortedView;
use simsearch_distance::MyersStackKernel;
use simsearch_scan::{v7_search_view, v8_scan_view_range};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    let scale = Scale::bench();
    for (name, preset, queries, thresholds) in [
        ("city", scale.city(), 50, "0, 1, 2, 3"),
        ("dna", scale.dna(), 20, "0, 4, 8, 16"),
    ] {
        let workload = preset.workload.prefix(h.queries(queries));
        let v7 = SearchEngine::build(
            &preset.dataset,
            EngineKind::Scan(SeqVariant::V7SortedPrefix),
        );
        let myers_restart = SearchEngine::build(
            &preset.dataset,
            EngineKind::ScanCustom {
                kernel: KernelKind::Myers,
                strategy: Strategy::Sequential,
            },
        );
        let v8 = SearchEngine::build(
            &preset.dataset,
            EngineKind::Scan(SeqVariant::V8BitParallel),
        );
        // One accounting pass outside the timed loop: total scalar DP
        // cells for V7 vs words advanced/reused (and their row-equivalent
        // cells) for V8, over the same sorted view and workload.
        let sv = SortedView::build(&preset.dataset);
        let mut v7_cells = 0u64;
        let (mut v8_words, mut v8_reused, mut v8_cells) = (0u64, 0u64, 0u64);
        for q in &workload.queries {
            v7_cells += v7_search_view(&sv, &q.text, q.threshold).1;
            let mut dp = MyersStackKernel::new(&q.text, q.threshold);
            let _ = v8_scan_view_range(&sv, &mut dp, &q.text, q.threshold, 0..sv.len());
            v8_words += dp.words_advanced();
            v8_reused += dp.words_reused();
            v8_cells += dp.cells_computed();
        }
        let group_name = format!("ablation_bitparallel_{name}");
        let mut group = h.group(&group_name);
        group.set_workload(name, preset.dataset.len(), workload.len(), thresholds);
        group.set_counters(&[
            ("v7_dp_cells", v7_cells),
            ("v8_words_advanced", v8_words),
            ("v8_words_reused", v8_reused),
            ("v8_cells_equivalent", v8_cells),
        ]);
        group.bench("v7_sorted_prefix", || v7.run(&workload));
        group.bench("myers_restart", || myers_restart.run(&workload));
        group.bench("v8_bitparallel", || v8.run(&workload));
        group.finish();
        h.publish_snapshot(&group_name);
    }
}
