//! Ablation for the paper's §6 "Sorting" future-work question: *"Can a
//! pre-sorting by length … reduce the execution time?"* — flat scan vs
//! the length-bucketed layout.

use criterion::{criterion_group, criterion_main, Criterion};
use simsearch_bench::Scale;
use simsearch_core::{EngineKind, SearchEngine, SeqVariant, Strategy};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    for (name, preset, queries) in [
        ("city", scale.city(), 50),
        ("dna", scale.dna(), 20),
    ] {
        let workload = preset.workload.prefix(queries);
        let mut group = c.benchmark_group(format!("ablation_sorting_{name}"));
        let scan = SearchEngine::build(&preset.dataset, EngineKind::Scan(SeqVariant::V4Flat));
        group.bench_function("flat_scan", |b| b.iter(|| scan.run(&workload)));
        let buckets = SearchEngine::build(
            &preset.dataset,
            EngineKind::Buckets {
                strategy: Strategy::Sequential,
            },
        );
        group.bench_function("length_buckets", |b| b.iter(|| buckets.run(&workload)));
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
