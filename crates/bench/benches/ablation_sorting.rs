//! Ablation for the paper's §6 "Sorting" future-work question: *"Can a
//! pre-sorting by length … reduce the execution time?"* — flat scan vs
//! the length-bucketed layout.

use simsearch_bench::Scale;
use simsearch_core::{EngineKind, SearchEngine, SeqVariant, Strategy};
use simsearch_testkit::bench::Harness;

fn main() {
    let h = Harness::new();
    let scale = Scale::bench();
    for (name, preset, queries) in [("city", scale.city(), 50), ("dna", scale.dna(), 20)] {
        let workload = preset.workload.prefix(h.queries(queries));
        let mut group = h.group(&format!("ablation_sorting_{name}"));
        let scan = SearchEngine::build(&preset.dataset, EngineKind::Scan(SeqVariant::V4Flat));
        group.bench("flat_scan", || scan.run(&workload));
        let buckets = SearchEngine::build(
            &preset.dataset,
            EngineKind::Buckets {
                strategy: Strategy::Sequential,
            },
        );
        group.bench("length_buckets", || buckets.run(&workload));
        group.finish();
    }
}
