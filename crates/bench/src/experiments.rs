//! Experiment drivers: one function per table/figure of the paper.
//!
//! Each driver builds the engines it needs (construction time excluded,
//! as in the paper's §5.2 protocol), executes the 100/500/1,000-query
//! workload prefixes, and renders a [`Table`] in the shape of the
//! corresponding appendix table. The `reproduce` binary prints them; the
//! Criterion benches reuse the same engine/workload combinations for
//! statistical runs.

use simsearch_core::presets::Preset;
use simsearch_core::report::{format_percent, format_secs};
use simsearch_core::{
    cross_validate, measure_extrapolated, measure_prefixes, EngineKind, IdxVariant, Measurement,
    SearchEngine, SeqVariant, Table,
};
use simsearch_data::DatasetStats;

/// The thread counts the paper sweeps (Tables II/IV/VI/VIII).
pub const THREAD_SWEEP: [usize; 4] = [4, 8, 16, 32];

/// Paper Table II optimum: 8 threads for the city-names scan.
pub const CITY_SEQ_BEST_THREADS: usize = 8;
/// Paper Table IV optimum: 32 threads for the city-names index.
pub const CITY_IDX_BEST_THREADS: usize = 32;
/// Paper §5.6 optimum: 16 threads for the DNA scan.
pub const DNA_SEQ_BEST_THREADS: usize = 16;
/// Paper §5.7 optimum: 16 threads for the DNA index.
pub const DNA_IDX_BEST_THREADS: usize = 16;

fn query_headers(counts: &[usize]) -> Vec<String> {
    let mut h = vec!["Approach".to_string()];
    h.extend(counts.iter().map(|c| format!("{c} queries")));
    h
}

fn table_with_counts(title: &str, counts: &[usize]) -> Table {
    let headers = query_headers(counts);
    let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    Table::new(title, &refs)
}

/// Table I: measured dataset properties.
pub fn table1(city: &Preset, dna: &Preset) -> Table {
    let mut t = Table::new(
        "Table I. Overview about the data sets and their properties",
        &["Dataset", "#Data sets", "#Symbols", "Length", "Edit distance"],
    );
    for (name, preset, thresholds) in [
        ("City names", city, "0, 1, 2, 3"),
        ("DNA", dna, "0, 4, 8, 16"),
    ] {
        let s = DatasetStats::compute(&preset.dataset);
        t.push_row(
            name,
            vec![
                s.records.to_string(),
                s.symbols.to_string(),
                format!("{}..{} (mean {:.1})", s.min_len, s.max_len, s.mean_len),
                thresholds.to_string(),
            ],
        );
    }
    t
}

/// Tables II and VI: scan thread-count sweep (rung 6 at 4/8/16/32
/// threads).
pub fn seq_threads_table(preset: &Preset, counts: &[usize], title: &str) -> Table {
    let mut t = table_with_counts(title, counts);
    for threads in THREAD_SWEEP {
        let engine = SearchEngine::build(
            &preset.dataset,
            EngineKind::Scan(SeqVariant::V6Pool { threads }),
        );
        let ms = measure_prefixes(&engine, &preset.workload, counts);
        t.push_measurements(format!("{threads} threads"), &ms);
    }
    t
}

/// Tables III and VII: the six-rung scan ladder plus the V7
/// sorted-prefix extension row. `naive_stride > 1` subsamples rung 1 and
/// extrapolates (labelled), as the paper itself only estimates the naive
/// DNA rung.
pub fn seq_ladder_table(
    preset: &Preset,
    counts: &[usize],
    pool_threads: usize,
    naive_stride: usize,
    title: &str,
) -> Table {
    let mut t = table_with_counts(title, counts);
    for variant in SeqVariant::ladder_extended(pool_threads) {
        let engine = SearchEngine::build(&preset.dataset, EngineKind::Scan(variant));
        let subsample = variant == SeqVariant::V1Base && naive_stride > 1;
        let ms: Vec<Measurement> = if subsample {
            counts
                .iter()
                .map(|&n| measure_extrapolated(&engine, &preset.workload, n, naive_stride))
                .collect()
        } else {
            measure_prefixes(&engine, &preset.workload, counts)
        };
        let label = if subsample {
            format!("{} [extrapolated 1/{naive_stride}]", variant.label())
        } else {
            variant.label()
        };
        t.push_measurements(label, &ms);
    }
    t
}

/// Tables IV and VIII: index thread-count sweep (compressed tree under a
/// pool of 4/8/16/32 threads). The sweep isolates thread-management
/// behaviour, so it runs on the fast modern-pruning descent; the prune
/// modes themselves are compared in the ladder tables and figures.
pub fn idx_threads_table(preset: &Preset, counts: &[usize], title: &str) -> Table {
    let mut t = table_with_counts(title, counts);
    for threads in THREAD_SWEEP {
        let engine = SearchEngine::build(
            &preset.dataset,
            EngineKind::IndexModern(IdxVariant::I3Pool { threads }),
        );
        let ms = measure_prefixes(&engine, &preset.workload, counts);
        t.push_measurements(format!("{threads} threads"), &ms);
    }
    t
}

/// Tables V and IX: the three-rung index ladder with the paper's §4.1
/// pruning, plus two extension rows showing the same structures under
/// modern pruning (banded rows + row-minimum lemma).
pub fn idx_ladder_table(
    preset: &Preset,
    counts: &[usize],
    pool_threads: usize,
    title: &str,
) -> Table {
    let mut t = table_with_counts(title, counts);
    for variant in IdxVariant::ladder(pool_threads) {
        let engine = SearchEngine::build(&preset.dataset, EngineKind::Index(variant));
        let ms = measure_prefixes(&engine, &preset.workload, counts);
        t.push_measurements(variant.label(), &ms);
    }
    for (label, variant) in [
        ("x) Compression + modern pruning", IdxVariant::I2Compressed),
        (
            "x) Modern pruning + parallelism",
            IdxVariant::I3Pool {
                threads: pool_threads,
            },
        ),
    ] {
        let engine = SearchEngine::build(&preset.dataset, EngineKind::IndexModern(variant));
        let ms = measure_prefixes(&engine, &preset.workload, counts);
        t.push_measurements(label, &ms);
    }
    t
}

/// Figure 4: compression effect on node counts — the worked example plus
/// the actual dataset.
pub fn figure4(preset: &Preset) -> Table {
    let mut t = Table::new(
        "Figure 4. Compression of a prefix tree (node counts)",
        &["Dataset", "Prefix tree", "Compressed", "Ratio"],
    );
    let example = simsearch_data::Dataset::from_records(["Berlin", "Bern", "Ulm"]);
    for (name, ds) in [
        ("Berlin/Bern/Ulm (paper example)", &example),
        (preset.name, &preset.dataset),
    ] {
        let trie = simsearch_index::trie::build(ds);
        let radix = simsearch_index::radix::build(ds);
        t.push_row(
            name,
            vec![
                trie.node_count().to_string(),
                radix.node_count().to_string(),
                format!(
                    "{:.2}x",
                    trie.node_count() as f64 / radix.node_count() as f64
                ),
            ],
        );
    }
    t
}

/// Figures 6 and 7: best scan vs best index, with the paper's
/// "scan needs X % of the index's time" rows. Both index prune modes are
/// reported: the paper's own §4.1 pruning and the modern extension —
/// EXPERIMENTS.md discusses which side of the paper's verdict each
/// reproduces.
pub fn figure_best(
    preset: &Preset,
    counts: &[usize],
    seq_threads: usize,
    idx_threads: usize,
    title: &str,
) -> Table {
    let mut t = table_with_counts(title, counts);
    let scan = SearchEngine::build(
        &preset.dataset,
        EngineKind::Scan(SeqVariant::V6Pool {
            threads: seq_threads,
        }),
    );
    let paper_idx = SearchEngine::build(
        &preset.dataset,
        EngineKind::Index(IdxVariant::I3Pool {
            threads: idx_threads,
        }),
    );
    let modern_idx = SearchEngine::build(
        &preset.dataset,
        EngineKind::IndexModern(IdxVariant::I3Pool {
            threads: idx_threads,
        }),
    );
    let scan_ms = measure_prefixes(&scan, &preset.workload, counts);
    let paper_ms = measure_prefixes(&paper_idx, &preset.workload, counts);
    let modern_ms = measure_prefixes(&modern_idx, &preset.workload, counts);
    t.push_measurements(format!("Best sequential ({seq_threads} threads)"), &scan_ms);
    t.push_measurements(
        format!("Best index, paper pruning ({idx_threads} threads)"),
        &paper_ms,
    );
    t.push_measurements(
        format!("Best index, modern pruning ({idx_threads} threads)"),
        &modern_ms,
    );
    let ratio_row = |scan: &[Measurement], idx: &[Measurement]| -> Vec<String> {
        scan.iter()
            .zip(idx.iter())
            .map(|(s, i)| format_percent(s.secs() / i.secs()))
            .collect()
    };
    t.push_row("scan / paper-index time", ratio_row(&scan_ms, &paper_ms));
    t.push_row("scan / modern-index time", ratio_row(&scan_ms, &modern_ms));
    t
}

/// The paper's correctness gate: before timing anything, every engine
/// family must agree with the base scan on a workload prefix.
pub fn verify_engines(preset: &Preset, queries: usize) -> Result<(), simsearch_core::Mismatch> {
    let prefix = preset.workload.prefix(queries.min(preset.workload.len()));
    let reference = SearchEngine::build(&preset.dataset, EngineKind::Scan(SeqVariant::V1Base));
    let candidates = vec![
        SearchEngine::build(&preset.dataset, EngineKind::Scan(SeqVariant::V4Flat)),
        SearchEngine::build(
            &preset.dataset,
            EngineKind::Scan(SeqVariant::V6Pool { threads: 4 }),
        ),
        SearchEngine::build(&preset.dataset, EngineKind::Index(IdxVariant::I1BaseTrie)),
        SearchEngine::build(&preset.dataset, EngineKind::Index(IdxVariant::I2Compressed)),
        SearchEngine::build(
            &preset.dataset,
            EngineKind::Index(IdxVariant::I3Pool { threads: 4 }),
        ),
        SearchEngine::build(
            &preset.dataset,
            EngineKind::Scan(SeqVariant::V7SortedPrefix),
        ),
    ];
    cross_validate(&reference, &candidates, &prefix)
}

/// Index construction/size comparison (supplementary; the related work's
/// index-size discussion).
pub fn index_sizes(preset: &Preset) -> Table {
    let mut t = Table::new(
        format!("Index structure sizes ({})", preset.name),
        &["Structure", "Units", "Approx. bytes"],
    );
    let trie = simsearch_index::trie::build(&preset.dataset);
    t.push_row(
        "prefix tree",
        vec![
            format!("{} nodes", trie.node_count()),
            trie.memory_bytes().to_string(),
        ],
    );
    let radix = simsearch_index::radix::build(&preset.dataset);
    t.push_row(
        "radix tree",
        vec![
            format!("{} nodes", radix.node_count()),
            radix.memory_bytes().to_string(),
        ],
    );
    let qg = simsearch_index::QgramIndex::build(&preset.dataset, 2);
    t.push_row(
        "q-gram index (q=2)",
        vec![
            format!("{} grams", qg.distinct_grams()),
            qg.memory_bytes().to_string(),
        ],
    );
    t
}

/// Work-count diagnostics: the quantities behind the wall-clock verdicts.
///
/// For each approach, the average number of DP cells computed per query
/// (the unit every optimization in the paper targets) plus, for the
/// tries, nodes visited and subtrees pruned. This table is what lets
/// EXPERIMENTS.md explain the prune-mode flip rather than just report it.
pub fn diagnostics_table(preset: &Preset, queries: usize) -> Table {
    use simsearch_distance::counted::ed_within_early_abort_counted;
    let prefix = preset.workload.prefix(queries.min(preset.workload.len()));
    let n = prefix.len() as f64;
    let mut t = Table::new(
        format!("Diagnostics: work per query ({})", preset.name),
        &["Approach", "DP cells/query", "nodes/query", "pruned/query"],
    );

    // Scan (rung 4 kernel): count cells over the whole dataset.
    let mut rows_buf = Vec::new();
    let mut scan_cells: u64 = 0;
    for q in prefix.iter() {
        for (_, record) in preset.dataset.iter() {
            if record.len().abs_diff(q.text.len()) > q.threshold as usize {
                continue;
            }
            let (_, cells) =
                ed_within_early_abort_counted(&mut rows_buf, &q.text, record, q.threshold);
            scan_cells += cells;
        }
    }
    t.push_row(
        "scan (early-abort kernel)",
        vec![
            format!("{:.0}", scan_cells as f64 / n),
            "-".into(),
            "-".into(),
        ],
    );

    // V7 sorted-prefix scan: the kernel counts its own cells; the saving
    // versus the row above is exactly what LCP reuse buys.
    let v7 = simsearch_scan::SequentialScan::new(&preset.dataset);
    v7.prepare(SeqVariant::V7SortedPrefix);
    let mut v7_cells: u64 = 0;
    for q in prefix.iter() {
        let (_, cells) = v7.v7_search(&q.text, q.threshold);
        v7_cells += cells;
    }
    t.push_row(
        "scan V7 (sorted prefix, LCP reuse)",
        vec![
            format!("{:.0}", v7_cells as f64 / n),
            "-".into(),
            "-".into(),
        ],
    );

    // Tries: rows * row width approximates cells; report rows directly
    // alongside node visits.
    let radix = simsearch_index::radix::build(&preset.dataset);
    let mut paper = simsearch_index::SearchTrace::default();
    let mut modern = simsearch_index::SearchTrace::default();
    for q in prefix.iter() {
        paper.add(&radix.search_paper_traced(&q.text, q.threshold).1);
        modern.add(&radix.search_traced(&q.text, q.threshold).1);
    }
    let avg_qlen = prefix
        .iter()
        .map(|q| q.text.len() as f64)
        .sum::<f64>()
        / n;
    let avg_band = prefix
        .iter()
        .map(|q| (2 * q.threshold + 1) as f64)
        .sum::<f64>()
        / n;
    t.push_row(
        "radix trie, paper pruning",
        vec![
            format!("{:.0}", paper.rows_computed as f64 * (avg_qlen + 1.0) / n),
            format!("{:.0}", paper.nodes_visited as f64 / n),
            format!("{:.0}", paper.subtrees_pruned as f64 / n),
        ],
    );
    t.push_row(
        "radix trie, modern pruning",
        vec![
            format!(
                "{:.0}",
                modern.rows_computed as f64 * avg_band.min(avg_qlen + 1.0) / n
            ),
            format!("{:.0}", modern.nodes_visited as f64 / n),
            format!("{:.0}", modern.subtrees_pruned as f64 / n),
        ],
    );
    t
}

/// Per-threshold breakdown table: the best scan vs both index modes,
/// one row per approach, one column per threshold in the workload.
pub fn per_threshold_table(preset: &Preset, queries: usize, pool_threads: usize) -> Table {
    use simsearch_core::measure_per_threshold;
    let prefix = preset.workload.prefix(queries.min(preset.workload.len()));
    let engines = [
        EngineKind::Scan(SeqVariant::V6Pool {
            threads: pool_threads,
        }),
        EngineKind::Index(IdxVariant::I3Pool {
            threads: pool_threads,
        }),
        EngineKind::IndexModern(IdxVariant::I3Pool {
            threads: pool_threads,
        }),
    ];
    let mut t = Table::default();
    for (row, kind) in engines.into_iter().enumerate() {
        let engine = SearchEngine::build(&preset.dataset, kind);
        let per_k = measure_per_threshold(&engine, &prefix);
        if row == 0 {
            let mut headers = vec!["Approach".to_string()];
            headers.extend(per_k.iter().map(|(k, m)| format!("k={k} ({}q)", m.queries)));
            t = Table {
                title: format!(
                    "Per-threshold breakdown ({}, {} queries total)",
                    preset.name,
                    prefix.len()
                ),
                headers,
                rows: Vec::new(),
            };
        }
        t.push_row(
            engine.name(),
            per_k.iter().map(|(_, m)| format_secs(m.secs())).collect(),
        );
    }
    t
}

/// Scan-vs-index percentage summary (§5.5/§5.8 prose numbers).
pub fn summary_comparison(scan: &[Measurement], index: &[Measurement]) -> String {
    let ratios: Vec<String> = scan
        .iter()
        .zip(index.iter())
        .map(|(s, i)| format!("{} / {}", format_secs(s.secs()), format_secs(i.secs())))
        .collect();
    ratios.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    fn tiny() -> (Preset, Preset) {
        let s = Scale::bench().scaled_by(0.1);
        (s.city(), s.dna())
    }

    #[test]
    fn table1_reports_both_datasets() {
        let (city, dna) = tiny();
        let t = table1(&city, &dna);
        assert_eq!(t.rows.len(), 2);
        let text = t.to_string();
        assert!(text.contains("City names"));
        assert!(text.contains("DNA"));
    }

    #[test]
    fn ladders_have_paper_row_counts() {
        let (city, _) = tiny();
        let counts = [5, 10];
        let seq = seq_ladder_table(&city, &counts, 2, 1, "T");
        // 6 paper rungs + the V7 sorted-prefix and V8 bit-parallel
        // extension rows.
        assert_eq!(seq.rows.len(), 8);
        assert!(seq.rows[6].0.starts_with("x)"));
        assert!(seq.rows[7].0.starts_with("x)"));
        let idx = idx_ladder_table(&city, &counts, 2, "T");
        // 3 paper rungs + 2 modern-pruning extension rows.
        assert_eq!(idx.rows.len(), 5);
    }

    #[test]
    fn sweeps_have_four_rows() {
        let (city, _) = tiny();
        let t = seq_threads_table(&city, &[5], "T");
        assert_eq!(t.rows.len(), 4);
        let t = idx_threads_table(&city, &[5], "T");
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn figure4_shows_compression() {
        let (city, _) = tiny();
        let t = figure4(&city);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].1[0], "11");
        assert_eq!(t.rows[0].1[1], "5");
    }

    #[test]
    fn figure_best_includes_ratio_row() {
        let (city, _) = tiny();
        let t = figure_best(&city, &[5, 10], 2, 2, "F");
        // scan + two index modes + two ratio rows.
        assert_eq!(t.rows.len(), 5);
        assert!(t.rows[3].0.contains("paper-index"));
        assert!(t.rows[4].0.contains("modern-index"));
    }

    #[test]
    fn verification_gate_passes() {
        let (city, dna) = tiny();
        verify_engines(&city, 10).expect("city engines agree");
        verify_engines(&dna, 10).expect("dna engines agree");
    }

    #[test]
    fn diagnostics_table_has_four_rows() {
        let (city, _) = tiny();
        let t = diagnostics_table(&city, 5);
        assert_eq!(t.rows.len(), 4);
        let cells = |r: &str| r.parse::<f64>().unwrap();
        // V7 must compute fewer cells than the V4 early-abort kernel.
        assert!(cells(&t.rows[1].1[0]) < cells(&t.rows[0].1[0]));
        // The paper prune must do at least as much work as the modern one.
        assert!(cells(&t.rows[2].1[0]) >= cells(&t.rows[3].1[0]));
    }

    #[test]
    fn per_threshold_table_has_one_row_per_engine() {
        let (city, _) = tiny();
        let t = per_threshold_table(&city, 12, 2);
        assert_eq!(t.rows.len(), 3);
        // Thresholds 0..=3 all occur in the first 12 queries.
        assert_eq!(t.headers.len(), 5);
    }

    #[test]
    fn index_sizes_reports_three_structures() {
        let (city, _) = tiny();
        let t = index_sizes(&city);
        assert_eq!(t.rows.len(), 3);
    }
}
