//! `reproduce` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p simsearch-bench --release --bin reproduce            # everything, default scale
//! cargo run -p simsearch-bench --release --bin reproduce -- --table 3
//! cargo run -p simsearch-bench --release --bin reproduce -- --figure 6
//! cargo run -p simsearch-bench --release --bin reproduce -- --scale 0.25
//! cargo run -p simsearch-bench --release --bin reproduce -- --full  # paper-size datasets
//! ```
//!
//! Default scale is 1/20 of Table I (20k city names, 5k reads); the
//! 100/500/1,000-query protocol is kept. Absolute seconds shrink with
//! the dataset; the rung-over-rung ratios and the scan-vs-index verdicts
//! are the reproduction targets (see EXPERIMENTS.md).

use simsearch_bench::{experiments as ex, Scale};
use simsearch_core::presets::Preset;
use simsearch_core::Table;
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    tables: Vec<u32>,
    figures: Vec<u32>,
    scale: Scale,
    verify: bool,
    diagnostics: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut tables = Vec::new();
    let mut figures = Vec::new();
    let mut scale = Scale::reproduce();
    let mut factor = 1.0f64;
    let mut verify = true;
    let mut diagnostics = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--table" => {
                let v = it.next().ok_or("--table needs a number (1-9)")?;
                tables.push(v.parse().map_err(|_| format!("bad table '{v}'"))?);
            }
            "--figure" => {
                let v = it.next().ok_or("--figure needs a number (4, 6 or 7)")?;
                figures.push(v.parse().map_err(|_| format!("bad figure '{v}'"))?);
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a factor")?;
                factor = v.parse().map_err(|_| format!("bad scale '{v}'"))?;
            }
            "--full" => scale = Scale::full(),
            "--no-verify" => verify = false,
            "--diagnostics" => diagnostics = true,
            "--help" | "-h" => {
                return Err("usage: reproduce [--table N]... [--figure N]... \
                            [--scale F] [--full] [--no-verify] [--diagnostics]"
                    .into())
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if tables.is_empty() && figures.is_empty() {
        tables = (1..=9).collect();
        figures = vec![4, 6, 7];
    }
    Ok(Args {
        tables,
        figures,
        scale: scale.scaled_by(factor),
        verify,
        diagnostics,
    })
}

fn print_table(t: &Table) {
    println!("{t}");
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let scale = args.scale;
    eprintln!(
        "# scale: {} city names, {} DNA reads, query counts {:?} (host: {} cores)",
        scale.city_records,
        scale.dna_records,
        scale.query_counts,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    let needs_city = args.tables.iter().any(|t| (1..=5).contains(t))
        || args.figures.iter().any(|f| *f == 4 || *f == 6);
    let needs_dna =
        args.tables.iter().any(|t| *t == 1 || *t >= 6) || args.figures.contains(&7);

    let city: Option<Preset> = needs_city.then(|| {
        eprintln!("# generating city dataset ...");
        scale.city()
    });
    let dna: Option<Preset> = needs_dna.then(|| {
        eprintln!("# generating dna dataset ...");
        scale.dna()
    });

    if args.verify {
        for p in [city.as_ref(), dna.as_ref()].into_iter().flatten() {
            eprintln!("# verifying engine agreement on {} ...", p.name);
            if let Err(m) = ex::verify_engines(p, 20) {
                eprintln!("VERIFICATION FAILED: {m}");
                return ExitCode::FAILURE;
            }
        }
    }

    let counts = &scale.query_counts;
    for t in &args.tables {
        match t {
            1 => {
                if let (Some(c), Some(d)) = (city.as_ref(), dna.as_ref()) {
                    print_table(&ex::table1(c, d));
                }
            }
            2 => {
                if let Some(c) = city.as_ref() {
                    print_table(&ex::seq_threads_table(
                        c,
                        counts,
                        "Table II. Management of parallelism in the sequential solution on the city name data set",
                    ));
                }
            }
            3 => {
                if let Some(c) = city.as_ref() {
                    print_table(&ex::seq_ladder_table(
                        c,
                        counts,
                        ex::CITY_SEQ_BEST_THREADS,
                        1,
                        "Table III. Evaluation of the sequential solution on the city name data set",
                    ));
                }
            }
            4 => {
                if let Some(c) = city.as_ref() {
                    print_table(&ex::idx_threads_table(
                        c,
                        counts,
                        "Table IV. Management of parallelism in the index-based solution on the city name data set",
                    ));
                }
            }
            5 => {
                if let Some(c) = city.as_ref() {
                    print_table(&ex::idx_ladder_table(
                        c,
                        counts,
                        ex::CITY_IDX_BEST_THREADS,
                        "Table V. Evaluation of the index-based solution on the city name data set",
                    ));
                }
            }
            6 => {
                if let Some(d) = dna.as_ref() {
                    print_table(&ex::seq_threads_table(
                        d,
                        counts,
                        "Table VI. Management of parallelism in the sequential solution on the DNA data set",
                    ));
                }
            }
            7 => {
                if let Some(d) = dna.as_ref() {
                    print_table(&ex::seq_ladder_table(
                        d,
                        counts,
                        ex::DNA_SEQ_BEST_THREADS,
                        scale.naive_dna_stride,
                        "Table VII. Evaluation of the sequential solution on the DNA data set",
                    ));
                }
            }
            8 => {
                if let Some(d) = dna.as_ref() {
                    print_table(&ex::idx_threads_table(
                        d,
                        counts,
                        "Table VIII. Management of parallelism in the index-based solution on the DNA data set",
                    ));
                }
            }
            9 => {
                if let Some(d) = dna.as_ref() {
                    print_table(&ex::idx_ladder_table(
                        d,
                        counts,
                        ex::DNA_IDX_BEST_THREADS,
                        "Table IX. Evaluation of the index-based solution on the DNA data set",
                    ));
                }
            }
            other => eprintln!("no such table: {other}"),
        }
    }
    for f in &args.figures {
        match f {
            4 => {
                if let Some(c) = city.as_ref() {
                    print_table(&ex::figure4(c));
                    print_table(&ex::index_sizes(c));
                }
            }
            6 => {
                if let Some(c) = city.as_ref() {
                    print_table(&ex::figure_best(
                        c,
                        counts,
                        ex::CITY_SEQ_BEST_THREADS,
                        ex::CITY_IDX_BEST_THREADS,
                        "Figure 6. Comparison of the best sequential with the best index-based solution (city names)",
                    ));
                }
            }
            7 => {
                if let Some(d) = dna.as_ref() {
                    print_table(&ex::figure_best(
                        d,
                        counts,
                        ex::DNA_SEQ_BEST_THREADS,
                        ex::DNA_IDX_BEST_THREADS,
                        "Figure 7. Comparison of the best sequential with the best index-based solution (DNA)",
                    ));
                }
            }
            other => eprintln!("no such figure: {other}"),
        }
    }
    if args.diagnostics {
        for p in [city.as_ref(), dna.as_ref()].into_iter().flatten() {
            print_table(&ex::diagnostics_table(p, 50));
            print_table(&ex::per_threshold_table(
                p,
                200,
                if p.name == "dna" {
                    ex::DNA_SEQ_BEST_THREADS
                } else {
                    ex::CITY_SEQ_BEST_THREADS
                },
            ));
        }
    }
    ExitCode::SUCCESS
}
