//! # simsearch-bench
//!
//! Shared setup for the benchmark harness: dataset scales, preset
//! construction, and the experiment driver functions used both by the
//! `reproduce` binary (paper-shaped tables) and the Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use simsearch_core::presets::{self, Preset};

/// Dataset/workload sizes for a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// City-name records.
    pub city_records: usize,
    /// DNA reads.
    pub dna_records: usize,
    /// Query-count columns (the paper's 100/500/1,000).
    pub query_counts: [usize; 3],
    /// Subsampling stride for the prohibitively slow naive DNA rung
    /// (1 = run everything).
    pub naive_dna_stride: usize,
}

impl Scale {
    /// Default `reproduce` scale: 1/20 of the paper's record counts with
    /// the paper's query counts. Rung-over-rung ratios and the
    /// scan-vs-index comparison are preserved at any fixed scale.
    pub fn reproduce() -> Self {
        Self {
            city_records: 20_000,
            dna_records: 2_500,
            query_counts: [100, 500, 1_000],
            naive_dna_stride: 25,
        }
    }

    /// Paper-scale (Table I): 400k city names, 750k reads. The naive DNA
    /// rung is heavily subsampled (the paper itself only estimates it at
    /// "≈ half a day" per 100 queries).
    pub fn full() -> Self {
        Self {
            city_records: presets::CITY_FULL_RECORDS,
            dna_records: presets::DNA_FULL_RECORDS,
            query_counts: [100, 500, 1_000],
            naive_dna_stride: 100,
        }
    }

    /// Tiny scale for Criterion statistical runs and smoke tests.
    pub fn bench() -> Self {
        Self {
            city_records: 4_000,
            dna_records: 800,
            query_counts: [20, 50, 100],
            naive_dna_stride: 10,
        }
    }

    /// Scales the record counts by `factor` (queries unchanged).
    pub fn scaled_by(mut self, factor: f64) -> Self {
        self.city_records = ((self.city_records as f64 * factor) as usize).max(10);
        self.dna_records = ((self.dna_records as f64 * factor) as usize).max(10);
        self
    }

    /// Builds the city preset at this scale.
    pub fn city(&self) -> Preset {
        presets::city(self.city_records)
    }

    /// Builds the DNA preset at this scale.
    pub fn dna(&self) -> Preset {
        presets::dna(self.dna_records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::bench().city_records < Scale::reproduce().city_records);
        assert!(Scale::reproduce().city_records < Scale::full().city_records);
    }

    #[test]
    fn scaled_by_shrinks() {
        let s = Scale::reproduce().scaled_by(0.1);
        assert_eq!(s.city_records, 2_000);
        assert_eq!(s.dna_records, 250);
    }

    #[test]
    fn bench_presets_build() {
        let s = Scale::bench().scaled_by(0.1);
        let c = s.city();
        let d = s.dna();
        assert_eq!(c.dataset.len(), 400);
        assert_eq!(d.dataset.len(), 80);
    }
}
