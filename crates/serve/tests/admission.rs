//! Admission-control behaviour under deliberate saturation: a full
//! queue answers `BUSY` immediately (never a hang), expired requests
//! answer `TIMEOUT`, and the metrics record both. Saturation is made
//! deterministic with the `exec_delay` fault-injection knob — the
//! single worker is provably busy while the other requests arrive.

use std::time::Duration;

use simsearch_core::EngineKind;
use simsearch_data::Dataset;
use simsearch_scan::SeqVariant;
use simsearch_serve::protocol::Response;
use simsearch_serve::{BatchConfig, ServerConfig};
use simsearch_testkit::loopback::Loopback;

fn tiny_dataset() -> Dataset {
    Dataset::from_records(["Berlin", "Bern", "Bonn", "Ulm", "Hamburg"])
}

fn saturated_config(exec_delay_ms: u64, deadline_ms: u64, queue_capacity: usize) -> ServerConfig {
    ServerConfig {
        batch: BatchConfig {
            threads: 1,
            batch_size: 1,
            queue_capacity,
            deadline: Duration::from_millis(deadline_ms),
            exec_delay: Duration::from_millis(exec_delay_ms),
            ..BatchConfig::default()
        },
        ..ServerConfig::default()
    }
}

/// Queue capacity 1, one worker pinned for 100 ms per request, sixteen
/// concurrent requests: some must be refused with `BUSY`, none may
/// hang, and the server must stay fully functional afterwards.
#[test]
fn full_queue_answers_busy_and_never_deadlocks() {
    let server = Loopback::spawn(
        tiny_dataset(),
        EngineKind::Scan(SeqVariant::V4Flat),
        saturated_config(100, 10_000, 1),
    );
    let addr = server.addr();
    let replies: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let mut client =
                        simsearch_serve::Client::connect_retry(addr, Duration::from_secs(5))
                            .expect("connect");
                    let mut out = Vec::new();
                    for _ in 0..2 {
                        out.push(client.query(b"Berlin", 1).expect("a reply, not a hang"));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    assert_eq!(replies.len(), 16, "every request got exactly one reply");
    let busy = replies.iter().filter(|r| **r == Response::Busy).count();
    let ok = replies
        .iter()
        .filter(|r| matches!(r, Response::Matches(_)))
        .count();
    for r in &replies {
        assert!(
            matches!(r, Response::Busy | Response::Matches(_)),
            "unexpected reply {r:?}"
        );
    }
    // 8 concurrent clients against queue capacity 1 + a 100 ms worker:
    // refusals are guaranteed, and so is at least one success.
    assert!(busy > 0, "saturation must surface as BUSY");
    assert!(ok > 0, "admitted requests still succeed");
    assert_eq!(server.metrics().rejected_busy.get() as usize, busy);
    // The server is not wedged: a fresh request round-trips.
    let mut client = server.client();
    assert!(client.health().expect("health after saturation"));
    assert!(matches!(
        client.query(b"Bonn", 1).expect("query after saturation"),
        Response::Matches(_) | Response::Busy
    ));
    server.shutdown();
}

/// A request that waits in the queue past its deadline is answered
/// `TIMEOUT` without occupying the engine.
#[test]
fn expired_requests_answer_timeout() {
    let server = Loopback::spawn(
        tiny_dataset(),
        EngineKind::Scan(SeqVariant::V4Flat),
        // 150 ms per execution, 20 ms deadline, room to queue: whoever
        // queues behind the first request must expire.
        saturated_config(150, 20, 8),
    );
    let addr = server.addr();
    let replies: Vec<Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut client =
                        simsearch_serve::Client::connect_retry(addr, Duration::from_secs(5))
                            .expect("connect");
                    client.query(b"Berlin", 1).expect("a reply, not a hang")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let timeouts = replies
        .iter()
        .filter(|r| **r == Response::Timeout)
        .count();
    for r in &replies {
        assert!(
            matches!(r, Response::Timeout | Response::Matches(_)),
            "unexpected reply {r:?}"
        );
    }
    assert!(timeouts > 0, "queued-past-deadline requests must TIMEOUT");
    assert!(server.metrics().dropped_timeout.get() as usize >= timeouts);
    server.shutdown();
}
