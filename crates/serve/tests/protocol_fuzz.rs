//! Protocol robustness properties, offline and over a live socket:
//! the parsers are total (arbitrary byte soup never panics), encoding
//! round-trips, and a live server answers every malformed frame with
//! `ERR` while staying healthy.

use simsearch_core::EngineKind;
use simsearch_data::Dataset;
use simsearch_scan::SeqVariant;
use simsearch_serve::protocol::{
    encode_request, parse_request, parse_response, Request,
};
use simsearch_serve::ServerConfig;
use simsearch_testkit::loopback::Loopback;
use simsearch_testkit::{check, gen, prop_assert_eq, Config, TestResult};

/// Arbitrary frames: any bytes except the line terminators the reader
/// strips before parsing.
fn frame_gen(max_len: usize) -> gen::Gen<Vec<u8>> {
    gen::vec_of(
        gen::byte_where(|b| b != b'\n' && b != b'\r'),
        0..max_len,
    )
}

#[test]
fn parse_request_is_total() {
    check(
        "parse_request_is_total",
        Config::default(),
        &frame_gen(200),
        |frame: &Vec<u8>| -> TestResult {
            // Any outcome but a panic is acceptable.
            let _ = parse_request(frame);
            Ok(())
        },
    );
}

#[test]
fn parse_response_is_total() {
    check(
        "parse_response_is_total",
        Config::default(),
        &frame_gen(200),
        |frame: &Vec<u8>| -> TestResult {
            let _ = parse_response(frame);
            Ok(())
        },
    );
}

#[test]
fn query_requests_round_trip() {
    let cases = gen::zip3(
        gen::u32_in(0..1_000_000),
        frame_gen(80),
        gen::u32_in(0..2),
    );
    check(
        "query_requests_round_trip",
        Config::default(),
        &cases,
        |(k, text, which): &(u32, Vec<u8>, u32)| -> TestResult {
            let request = if *which == 0 {
                Request::Query {
                    k: *k,
                    text: text.clone(),
                }
            } else {
                Request::TopK {
                    count: *k,
                    text: text.clone(),
                }
            };
            let decoded = parse_request(&encode_request(&request));
            prop_assert_eq!(decoded, Ok(request));
            Ok(())
        },
    );
}

/// Live-wire fuzz: a real server answers every malformed frame with an
/// `ERR` line (never silence, never a crash), interleaved health checks
/// keep passing, and the error counter adds up.
#[test]
fn live_server_survives_malformed_frames() {
    let server = Loopback::spawn(
        Dataset::from_records(["Berlin", "Bern", "Bonn"]),
        EngineKind::Scan(SeqVariant::V7SortedPrefix),
        ServerConfig::default(),
    );
    let mut client = server.client();
    let mut rng = simsearch_testkit::Xoshiro256::seed_from_u64(0xBADF_0005);
    let frames = frame_gen(120);
    let mut sent = 0u64;
    for round in 0..200 {
        let mut frame = frames.sample(&mut rng);
        // Make every frame non-empty so the mutation below has a byte
        // to work on (the empty frame is covered by its own test).
        if frame.is_empty() {
            frame.push(b'?');
        }
        // Keep definitely-malformed: break any accidental valid verb.
        frame[0] = frame[0].wrapping_add(1) | 0x80;
        let reply = client.send_raw(&frame).expect("a reply, not a hang");
        assert!(
            reply.starts_with(b"ERR "),
            "round {round}: malformed frame {:?} got {:?}",
            String::from_utf8_lossy(&frame),
            String::from_utf8_lossy(&reply)
        );
        sent += 1;
        if round % 50 == 0 {
            assert!(client.health().expect("health"), "server died mid-fuzz");
        }
    }
    assert!(client.health().expect("health after fuzz"));
    assert_eq!(server.metrics().replied_error.get(), sent);
    // Well-formed traffic still works on the same connection.
    let reply = client.query(b"Berlin", 1).expect("query after fuzz");
    assert!(matches!(
        reply,
        simsearch_serve::protocol::Response::Matches(_)
    ));
    server.shutdown();
}

/// An oversized line is refused with `ERR … bytes` and the connection
/// closes (framing is unrecoverable), but the server itself lives on.
#[test]
fn oversized_line_closes_only_that_connection() {
    let server = Loopback::spawn(
        Dataset::from_records(["Berlin", "Bern"]),
        EngineKind::Scan(SeqVariant::V4Flat),
        ServerConfig::default(),
    );
    let mut victim = server.client();
    let huge = vec![b'A'; simsearch_serve::protocol::MAX_LINE_BYTES + 64];
    let reply = victim.send_raw(&huge).expect("TooLong still gets a reply");
    assert!(
        reply.starts_with(b"ERR "),
        "got {:?}",
        String::from_utf8_lossy(&reply)
    );
    // The violating connection is closed afterwards…
    assert!(victim.send_raw(b"HEALTH").is_err(), "connection must close");
    // …but a fresh one is served normally.
    let mut fresh = server.client();
    assert!(fresh.health().expect("health"));
    server.shutdown();
}

#[test]
fn empty_and_whitespace_frames_get_err_replies() {
    let server = Loopback::spawn(
        Dataset::from_records(["Berlin"]),
        EngineKind::Scan(SeqVariant::V4Flat),
        ServerConfig::default(),
    );
    let mut client = server.client();
    for frame in [&b""[..], b" ", b"  QUERY 1 x", b"QUERY", b"QUERY 1"] {
        let reply = client.send_raw(frame).expect("a reply");
        assert!(
            reply.starts_with(b"ERR "),
            "{:?} got {:?}",
            String::from_utf8_lossy(frame),
            String::from_utf8_lossy(&reply)
        );
    }
    assert!(client.health().expect("health"));
    server.shutdown();
}
