//! Protocol robustness properties, offline and over a live socket:
//! the parsers are total (arbitrary byte soup never panics), encoding
//! round-trips, and a live server answers every malformed frame with
//! `ERR` while staying healthy.

use simsearch_core::EngineKind;
use simsearch_data::Dataset;
use simsearch_scan::SeqVariant;
use simsearch_serve::protocol::{
    encode_request, parse_request, parse_response, Request,
};
use simsearch_serve::ServerConfig;
use simsearch_testkit::loopback::Loopback;
use simsearch_testkit::{check, gen, prop_assert_eq, Config, TestResult};

/// Arbitrary frames: any bytes except the line terminators the reader
/// strips before parsing.
fn frame_gen(max_len: usize) -> gen::Gen<Vec<u8>> {
    gen::vec_of(
        gen::byte_where(|b| b != b'\n' && b != b'\r'),
        0..max_len,
    )
}

#[test]
fn parse_request_is_total() {
    check(
        "parse_request_is_total",
        Config::default(),
        &frame_gen(200),
        |frame: &Vec<u8>| -> TestResult {
            // Any outcome but a panic is acceptable.
            let _ = parse_request(frame);
            Ok(())
        },
    );
}

#[test]
fn parse_response_is_total() {
    check(
        "parse_response_is_total",
        Config::default(),
        &frame_gen(200),
        |frame: &Vec<u8>| -> TestResult {
            let _ = parse_response(frame);
            Ok(())
        },
    );
}

#[test]
fn query_requests_round_trip() {
    let cases = gen::zip3(
        gen::u32_in(0..1_000_000),
        frame_gen(80),
        gen::u32_in(0..2),
    );
    check(
        "query_requests_round_trip",
        Config::default(),
        &cases,
        |(k, text, which): &(u32, Vec<u8>, u32)| -> TestResult {
            let request = if *which == 0 {
                Request::Query {
                    k: *k,
                    text: text.clone(),
                }
            } else {
                Request::TopK {
                    count: *k,
                    text: text.clone(),
                }
            };
            let decoded = parse_request(&encode_request(&request));
            prop_assert_eq!(decoded, Ok(request));
            Ok(())
        },
    );
}

/// Live-wire fuzz: a real server answers every malformed frame with an
/// `ERR` line (never silence, never a crash), interleaved health checks
/// keep passing, and the error counter adds up.
#[test]
fn live_server_survives_malformed_frames() {
    let server = Loopback::spawn(
        Dataset::from_records(["Berlin", "Bern", "Bonn"]),
        EngineKind::Scan(SeqVariant::V7SortedPrefix),
        ServerConfig::default(),
    );
    let mut client = server.client();
    let mut rng = simsearch_testkit::Xoshiro256::seed_from_u64(0xBADF_0005);
    let frames = frame_gen(120);
    let mut sent = 0u64;
    for round in 0..200 {
        let mut frame = frames.sample(&mut rng);
        // Make every frame non-empty so the mutation below has a byte
        // to work on (the empty frame is covered by its own test).
        if frame.is_empty() {
            frame.push(b'?');
        }
        // Keep definitely-malformed: break any accidental valid verb.
        frame[0] = frame[0].wrapping_add(1) | 0x80;
        let reply = client.send_raw(&frame).expect("a reply, not a hang");
        assert!(
            reply.starts_with(b"ERR "),
            "round {round}: malformed frame {:?} got {:?}",
            String::from_utf8_lossy(&frame),
            String::from_utf8_lossy(&reply)
        );
        sent += 1;
        if round % 50 == 0 {
            assert!(client.health().expect("health"), "server died mid-fuzz");
        }
    }
    assert!(client.health().expect("health after fuzz"));
    assert_eq!(server.metrics().replied_error.get(), sent);
    // Well-formed traffic still works on the same connection.
    let reply = client.query(b"Berlin", 1).expect("query after fuzz");
    assert!(matches!(
        reply,
        simsearch_serve::protocol::Response::Matches(_)
    ));
    server.shutdown();
}

/// An oversized line is refused with `ERR … bytes` and the connection
/// closes (framing is unrecoverable), but the server itself lives on.
#[test]
fn oversized_line_closes_only_that_connection() {
    let server = Loopback::spawn(
        Dataset::from_records(["Berlin", "Bern"]),
        EngineKind::Scan(SeqVariant::V4Flat),
        ServerConfig::default(),
    );
    let mut victim = server.client();
    let huge = vec![b'A'; simsearch_serve::protocol::MAX_LINE_BYTES + 64];
    let reply = victim.send_raw(&huge).expect("TooLong still gets a reply");
    assert!(
        reply.starts_with(b"ERR "),
        "got {:?}",
        String::from_utf8_lossy(&reply)
    );
    // The violating connection is closed afterwards…
    assert!(victim.send_raw(b"HEALTH").is_err(), "connection must close");
    // …but a fresh one is served normally.
    let mut fresh = server.client();
    assert!(fresh.health().expect("health"));
    server.shutdown();
}

#[test]
fn mutation_requests_round_trip() {
    // INSERT carries arbitrary line-safe bytes (including empty and
    // space-laden records); DELETE carries any u32. Both must survive
    // encode→parse unchanged, like every other verb.
    let cases = gen::zip(frame_gen(80), gen::u32_in(0..u32::MAX));
    check(
        "mutation_requests_round_trip",
        Config::default(),
        &cases,
        |(text, id): &(Vec<u8>, u32)| -> TestResult {
            let insert = Request::Insert { text: text.clone() };
            prop_assert_eq!(parse_request(&encode_request(&insert)), Ok(insert));
            let delete = Request::Delete { id: *id };
            prop_assert_eq!(parse_request(&encode_request(&delete)), Ok(delete));
            Ok(())
        },
    );
}

/// Malformed mutation frames over a live socket: every one gets `ERR`
/// (never silence, never a crash) and the daemon keeps serving.
#[test]
fn malformed_mutation_frames_get_err_replies() {
    let server = Loopback::spawn(
        Dataset::from_records(["Berlin", "Bern"]),
        EngineKind::Live { memtable_cap: 4 },
        ServerConfig::default(),
    );
    let mut client = server.client();
    for frame in [
        &b"INSERT"[..],       // bare verb: missing argument
        b"DELETE",            // bare verb: missing argument
        b"DELETE x",          // non-numeric id
        b"DELETE -1",         // signs are not part of the grammar
        b"DELETE 1 2",        // trailing junk after the id
        b"DELETE 99999999999999999999", // u32 overflow
        b"insert a",          // verbs are case-sensitive
        b"INSERTx",           // no separating space
    ] {
        let reply = client.send_raw(frame).expect("a reply");
        assert!(
            reply.starts_with(b"ERR "),
            "{:?} got {:?}",
            String::from_utf8_lossy(frame),
            String::from_utf8_lossy(&reply)
        );
    }
    // The connection and the engine both survived: a real insert works.
    let id = client.insert(b"Bonn").expect("insert after fuzz");
    assert_eq!(id, 2, "ids continue after the seed load");
    assert!(client.health().expect("health"));
    server.shutdown();
}

/// An oversized INSERT payload is refused exactly like any oversized
/// line — `ERR`, connection closed, daemon alive — and the refused
/// record is NOT inserted.
#[test]
fn oversized_insert_payloads_are_refused_without_side_effects() {
    let server = Loopback::spawn(
        Dataset::from_records(["Berlin"]),
        EngineKind::Live { memtable_cap: 4 },
        ServerConfig::default(),
    );
    let mut victim = server.client();
    let mut huge = b"INSERT ".to_vec();
    huge.resize(simsearch_serve::protocol::MAX_LINE_BYTES + 64, b'A');
    let reply = victim.send_raw(&huge).expect("TooLong still gets a reply");
    assert!(reply.starts_with(b"ERR "), "got {:?}", String::from_utf8_lossy(&reply));
    assert!(victim.send_raw(b"HEALTH").is_err(), "connection must close");
    // The refused record never reached the engine: the next id is the
    // one right after the seed load.
    let mut fresh = server.client();
    assert_eq!(fresh.insert(b"Bern").expect("insert"), 1);
    server.shutdown();
}

/// Mutations on a frozen daemon: the verbs parse (the protocol is one
/// grammar for every engine) but the engine refuses, with an `ERR` that
/// names the fix. Nothing about the connection or daemon degrades.
#[test]
fn read_only_daemons_refuse_mutations_politely() {
    let server = Loopback::spawn(
        Dataset::from_records(["Berlin", "Bern"]),
        EngineKind::Scan(SeqVariant::V7SortedPrefix),
        ServerConfig::default(),
    );
    let mut client = server.client();
    for frame in [&b"INSERT Bonn"[..], b"DELETE 0"] {
        let reply = client.send_raw(frame).expect("a reply");
        assert!(
            reply.starts_with(b"ERR ") && reply.windows(6).any(|w| w == b"--live"),
            "{:?} got {:?}",
            String::from_utf8_lossy(frame),
            String::from_utf8_lossy(&reply)
        );
    }
    // Queries on the same connection are unaffected.
    let reply = client.query(b"Berlin", 1).expect("query");
    assert!(matches!(reply, simsearch_serve::protocol::Response::Matches(_)));
    server.shutdown();
}

/// Concurrent churn and queries: while one client INSERTs and DELETEs
/// far-away records, another client's QUERY replies stay byte-identical
/// to their pre-churn frames — the valid subset of traffic is
/// unaffected by interleaved mutations on other connections.
#[test]
fn queries_stay_byte_identical_under_concurrent_mutation() {
    let server = Loopback::spawn(
        Dataset::from_records(["Berlin", "Bern", "Bonn", "Ulm"]),
        EngineKind::Live { memtable_cap: 4 },
        ServerConfig::default(),
    );
    // Freeze the expected reply bytes before any churn: the churn
    // records below are 40 bytes long, unreachable within distance 2
    // of any probe, so these frames must never change.
    let probes: &[&[u8]] = &[b"QUERY 1 Bern", b"QUERY 2 Ulm", b"TOPK 2 Berlin"];
    let expected: Vec<Vec<u8>> = {
        let mut c = server.client();
        probes
            .iter()
            .map(|p| c.send_raw(p).expect("baseline reply"))
            .collect()
    };

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let churner = {
        let stop = std::sync::Arc::clone(&stop);
        let addr = server.addr();
        std::thread::spawn(move || {
            let mut c = simsearch_serve::Client::connect_retry(
                addr,
                std::time::Duration::from_secs(5),
            )
            .expect("churn client");
            let filler = [b'z'; 40];
            let mut live = std::collections::VecDeque::new();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                live.push_back(c.insert(&filler).expect("churn insert"));
                if live.len() > 4 {
                    let id = live.pop_front().unwrap();
                    assert!(c.delete(id).expect("churn delete"), "churn ids are live");
                }
            }
        })
    };

    let mut client = server.client();
    for round in 0..120 {
        for (probe, want) in probes.iter().zip(&expected) {
            let got = client.send_raw(probe).expect("query under churn");
            assert_eq!(
                got,
                *want,
                "round {round}: {:?} diverged under concurrent mutation",
                String::from_utf8_lossy(probe)
            );
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    churner.join().expect("churn client thread");

    // The daemon did real mutation work while the queries held steady.
    let stats = client.stats_json().expect("stats");
    assert!(stats.contains("\"inserts\""), "stats: {stats}");
    assert!(server.metrics().inserts.get() > 0, "churn reached the engine");
    assert!(client.health().expect("health"));
    server.shutdown();
}

/// The sharded-live daemon under test: 4 hash-routed shards with a
/// tiny cap, so the fuzz traffic crosses shard boundaries and fires
/// per-shard flushes.
fn sharded_live_kind() -> EngineKind {
    EngineKind::ShardedLive {
        shards: 4,
        by: simsearch_core::ShardBy::Hash,
        threads: 1,
        memtable_cap: 4,
    }
}

/// Malformed mutation frames against a sharded-live daemon: the router
/// sits between the protocol and the shards, and a bad frame must die
/// at the parser — one `ERR` per frame, no id burned, no shard touched,
/// and only the violating connection pays.
#[test]
fn sharded_live_isolates_malformed_mutation_frames_per_connection() {
    let server = Loopback::spawn(
        Dataset::from_records(["Berlin", "Bern", "Bonn", "Ulm"]),
        sharded_live_kind(),
        ServerConfig::default(),
    );
    let mut victim = server.client();
    let mut bystander = server.client();
    for frame in [
        &b"INSERT"[..],       // bare verb: missing argument
        b"DELETE",            // bare verb: missing argument
        b"DELETE x",          // non-numeric id
        b"DELETE -1",         // signs are not part of the grammar
        b"DELETE 0 0",        // trailing junk after the id
        b"DELETE 99999999999999999999", // u32 overflow
        b"insert a",          // verbs are case-sensitive
        b"INSERTx",           // no separating space
    ] {
        let reply = victim.send_raw(frame).expect("a reply");
        assert!(
            reply.starts_with(b"ERR "),
            "{:?} got {:?}",
            String::from_utf8_lossy(frame),
            String::from_utf8_lossy(&reply)
        );
        // The other connection never notices: queries keep answering.
        let reply = bystander.query(b"Bern", 1).expect("bystander query");
        assert!(matches!(reply, simsearch_serve::protocol::Response::Matches(_)));
    }
    // An oversized INSERT closes only the violating connection…
    let mut huge = b"INSERT ".to_vec();
    huge.resize(simsearch_serve::protocol::MAX_LINE_BYTES + 64, b'A');
    let reply = victim.send_raw(&huge).expect("TooLong still gets a reply");
    assert!(reply.starts_with(b"ERR "), "got {:?}", String::from_utf8_lossy(&reply));
    assert!(victim.send_raw(b"HEALTH").is_err(), "violating connection closes");
    // …and none of the garbage burned a global id: the next insert gets
    // the id right after the 4-record seed load.
    assert_eq!(bystander.insert(b"Born").expect("insert"), 4);
    assert!(bystander.health().expect("health"));
    server.shutdown();
}

/// The byte-identical-queries invariant, across shards: churn INSERTs
/// hash-route onto all 4 shards (rotating first byte) while another
/// connection's QUERY/TOPK replies must not change by a single byte —
/// the k-way merged reply is insensitive to concurrent cross-shard
/// mutation and per-shard flushes.
#[test]
fn sharded_queries_stay_byte_identical_under_cross_shard_churn() {
    let server = Loopback::spawn(
        Dataset::from_records(["Berlin", "Bern", "Bonn", "Ulm"]),
        sharded_live_kind(),
        ServerConfig::default(),
    );
    let probes: &[&[u8]] = &[b"QUERY 1 Bern", b"QUERY 2 Ulm", b"TOPK 2 Berlin"];
    let expected: Vec<Vec<u8>> = {
        let mut c = server.client();
        probes
            .iter()
            .map(|p| c.send_raw(p).expect("baseline reply"))
            .collect()
    };

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let churner = {
        let stop = std::sync::Arc::clone(&stop);
        let addr = server.addr();
        std::thread::spawn(move || {
            let mut c = simsearch_serve::Client::connect_retry(
                addr,
                std::time::Duration::from_secs(5),
            )
            .expect("churn client");
            let mut filler = [b'z'; 40];
            let mut live = std::collections::VecDeque::new();
            let mut round = 0u8;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                // Rotate a byte so the hash router cycles shards.
                filler[0] = b'a' + (round % 26);
                round = round.wrapping_add(1);
                live.push_back(c.insert(&filler).expect("churn insert"));
                if live.len() > 8 {
                    let id = live.pop_front().unwrap();
                    assert!(c.delete(id).expect("churn delete"), "churn ids are live");
                }
            }
        })
    };

    let mut client = server.client();
    for round in 0..120 {
        for (probe, want) in probes.iter().zip(&expected) {
            let got = client.send_raw(probe).expect("query under churn");
            assert_eq!(
                got,
                *want,
                "round {round}: {:?} diverged under cross-shard churn",
                String::from_utf8_lossy(probe)
            );
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    churner.join().expect("churn client thread");

    // The churn really crossed shards: STATS exposes per-shard gauges
    // and the insert counter moved.
    let stats = client.stats_json().expect("stats");
    assert!(stats.contains("\"s0.memtable_len\""), "stats: {stats}");
    assert!(stats.contains("\"s3.memtable_len\""), "stats: {stats}");
    assert!(server.metrics().inserts.get() > 0, "churn reached the engine");
    assert!(client.health().expect("health"));
    server.shutdown();
}

#[test]
fn join_requests_round_trip() {
    // JOIN carries any u32 threshold and one of the two algorithm
    // tokens; encode→parse must be the identity, like every verb.
    let cases = gen::zip(gen::u32_in(0..u32::MAX), gen::u32_in(0..2));
    check(
        "join_requests_round_trip",
        Config::default(),
        &cases,
        |(k, which): &(u32, u32)| -> TestResult {
            let algo = if *which == 0 {
                simsearch_serve::JoinAlgo::Pass
            } else {
                simsearch_serve::JoinAlgo::MinJoin
            };
            let request = Request::Join { k: *k, algo };
            prop_assert_eq!(parse_request(&encode_request(&request)), Ok(request));
            Ok(())
        },
    );
}

/// Drains one full `JOIN` reply stream as raw frames: the `OK join`
/// header plus every `OK pairs` chunk until the advertised total.
fn drain_join_stream(client: &mut simsearch_serve::Client, frame: &[u8]) -> Vec<Vec<u8>> {
    let header = client.send_raw(frame).expect("join header");
    let text = String::from_utf8_lossy(&header).into_owned();
    let total: u64 = text
        .strip_prefix("OK join ")
        .unwrap_or_else(|| panic!("not a join header: {text:?}"))
        .parse()
        .expect("numeric total");
    let mut frames = vec![header];
    let mut streamed = 0u64;
    while streamed < total {
        let chunk = client.recv_raw().expect("pair chunk");
        let text = String::from_utf8_lossy(&chunk).into_owned();
        let count: u64 = text
            .strip_prefix("OK pairs ")
            .and_then(|rest| rest.split(' ').next())
            .unwrap_or_else(|| panic!("not a pair chunk: {text:?}"))
            .parse()
            .expect("numeric chunk count");
        streamed += count;
        frames.push(chunk);
    }
    frames
}

/// Malformed JOIN frames over a live socket: every one gets a single
/// `ERR` line — never a dangling stream — and well-formed joins keep
/// working on the same connection afterwards.
#[test]
fn malformed_join_frames_get_err_replies() {
    let server = Loopback::spawn(
        Dataset::from_records(["Berlin", "Bern", "Bonn", "Born", "Ulm"]),
        EngineKind::Scan(SeqVariant::V7SortedPrefix),
        ServerConfig::default(),
    );
    let mut client = server.client();
    for frame in [
        &b"JOIN"[..],          // bare verb: missing argument
        b"JOIN x",             // non-numeric threshold
        b"JOIN -1",            // signs are not part of the grammar
        b"JOIN 99999999999999999999", // u32 overflow
        b"JOIN 1 quantum",     // unknown algorithm
        b"JOIN 1 PASS",        // algorithm tokens are case-sensitive
        b"JOIN 1 pass extra",  // trailing junk after the algorithm
        b"join 1",             // verbs are case-sensitive
        b"JOINx",              // no separating space
    ] {
        let reply = client.send_raw(frame).expect("a reply");
        assert!(
            reply.starts_with(b"ERR "),
            "{:?} got {:?}",
            String::from_utf8_lossy(frame),
            String::from_utf8_lossy(&reply)
        );
    }
    // The connection survived all of it: a real join streams, and both
    // spellings (defaulted and explicit algorithm) agree.
    let pairs = client.join(2, simsearch_serve::JoinAlgo::Pass).expect("join");
    assert!(!pairs.is_empty(), "Bern/Bonn/Born are within distance 2");
    let frames = drain_join_stream(&mut client, b"JOIN 2");
    assert!(frames[0].starts_with(b"OK join "), "defaulted algo streams too");
    assert!(client.health().expect("health"));
    server.shutdown();
}

/// JOIN on a `--live` daemon is refused with a single `ERR` frame that
/// names the fix — never a header the client would wait behind — and
/// the refusal stays byte-identical while churn runs on the engine.
#[test]
fn live_daemons_refuse_join_with_a_stable_error() {
    let server = Loopback::spawn(
        Dataset::from_records(["Berlin", "Bern"]),
        EngineKind::Live { memtable_cap: 4 },
        ServerConfig::default(),
    );
    let mut client = server.client();
    let baseline = client.send_raw(b"JOIN 1 pass").expect("a reply");
    assert!(
        baseline.starts_with(b"ERR ") && baseline.windows(6).any(|w| w == b"frozen"),
        "got {:?}",
        String::from_utf8_lossy(&baseline)
    );
    // Churn the engine between refusals: the reply must not depend on
    // engine state. Filler records are one repeated letter, 40 bytes.
    for i in 0..26u8 {
        let filler = [b'a' + i; 40];
        let id = client.insert(&filler).expect("churn insert");
        assert_eq!(
            client.send_raw(b"JOIN 1 pass").expect("a reply"),
            baseline,
            "refusal diverged after insert #{i}"
        );
        assert!(client.delete(id).expect("churn delete"));
    }
    assert!(client.health().expect("health"));
    server.shutdown();
}

/// Concurrent JOIN streams on a frozen daemon: while one client drains
/// join streams in a loop, another client's streams stay byte-identical
/// frame-for-frame — ordering inside a stream is per-connection and
/// never interleaves across connections.
#[test]
fn join_streams_stay_byte_identical_under_concurrent_joins() {
    let server = Loopback::spawn(
        Dataset::from_records(["Berlin", "Bern", "Bonn", "Born", "Ulm", "Ulmen"]),
        EngineKind::Scan(SeqVariant::V7SortedPrefix),
        ServerConfig::default(),
    );
    let expected = drain_join_stream(&mut server.client(), b"JOIN 2 pass");
    assert!(expected.len() >= 2, "header plus at least one chunk");

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let rival = {
        let stop = std::sync::Arc::clone(&stop);
        let addr = server.addr();
        std::thread::spawn(move || {
            let mut c = simsearch_serve::Client::connect_retry(
                addr,
                std::time::Duration::from_secs(5),
            )
            .expect("rival client");
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let pairs = c.join(2, simsearch_serve::JoinAlgo::MinJoin).expect("rival join");
                assert!(!pairs.is_empty());
            }
        })
    };

    let mut client = server.client();
    for round in 0..60 {
        assert_eq!(
            drain_join_stream(&mut client, b"JOIN 2 pass"),
            expected,
            "round {round}: join stream diverged under concurrent joins"
        );
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    rival.join().expect("rival client thread");

    assert!(server.metrics().joins.get() >= 61, "every stream was counted");
    assert!(client.health().expect("health"));
    server.shutdown();
}

#[test]
fn empty_and_whitespace_frames_get_err_replies() {
    let server = Loopback::spawn(
        Dataset::from_records(["Berlin"]),
        EngineKind::Scan(SeqVariant::V4Flat),
        ServerConfig::default(),
    );
    let mut client = server.client();
    for frame in [&b""[..], b" ", b"  QUERY 1 x", b"QUERY", b"QUERY 1"] {
        let reply = client.send_raw(frame).expect("a reply");
        assert!(
            reply.starts_with(b"ERR "),
            "{:?} got {:?}",
            String::from_utf8_lossy(frame),
            String::from_utf8_lossy(&reply)
        );
    }
    assert!(client.health().expect("health"));
    server.shutdown();
}
