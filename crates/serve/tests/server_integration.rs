//! End-to-end serving tests: a real `simsearchd` on a loopback
//! ephemeral port, concurrent clients, and byte-level comparison
//! against the V1 reference scan.

use std::sync::Arc;
use std::time::Duration;

use simsearch_core::{presets, EngineKind};
use simsearch_scan::{SeqVariant, SequentialScan};
use simsearch_serve::protocol::{encode_request, encode_response, matches_response, Request, Response};
use simsearch_serve::{BatchConfig, ServerConfig};
use simsearch_testkit::loopback::Loopback;

/// One query with its oracle reply, precomputed offline.
struct Expected {
    frame: Vec<u8>,
    reply: Vec<u8>,
}

/// Answers every workload query with the naive V1 scan and returns the
/// exact wire bytes the server must produce.
fn oracle(preset: &presets::Preset, take: usize) -> Vec<Expected> {
    let scan = SequentialScan::new(&preset.dataset);
    preset
        .workload
        .queries
        .iter()
        .take(take)
        .map(|q| {
            let matches = scan.search_one(SeqVariant::V1Base, &q.text, q.threshold);
            Expected {
                frame: encode_request(&Request::Query {
                    k: q.threshold,
                    text: q.text.clone(),
                }),
                reply: encode_response(&matches_response(&matches)),
            }
        })
        .collect()
}

/// The tentpole acceptance test: 1,000 city + DNA queries, eight
/// concurrent client threads, every reply byte-identical to the V1
/// oracle — through the batching scheduler, not around it.
#[test]
fn concurrent_clients_match_the_v1_oracle_byte_for_byte() {
    // 1,000 queries total; the DNA share is smaller because its V1
    // oracle runs a full ~100×100 DP per record per query.
    let cases = [
        (presets::city(1_200), "city", 700),
        (presets::dna(300), "dna", 300),
    ];
    for (preset, label, take) in cases {
        let expected = Arc::new(oracle(&preset, take));
        let server = Loopback::spawn(
            preset.dataset.clone(),
            EngineKind::Scan(SeqVariant::V7SortedPrefix),
            ServerConfig {
                dataset_label: label.into(),
                batch: BatchConfig {
                    threads: 3,
                    batch_size: 16,
                    // A slightly wider coalescing window makes batches
                    // of >1 from four lockstep clients deterministic.
                    max_delay: Duration::from_millis(2),
                    ..BatchConfig::default()
                },
                ..ServerConfig::default()
            },
        );
        let addr = server.addr();
        std::thread::scope(|scope| {
            let threads = 4;
            for t in 0..threads {
                let expected = Arc::clone(&expected);
                scope.spawn(move || {
                    let mut client = simsearch_serve::Client::connect_retry(
                        addr,
                        Duration::from_secs(5),
                    )
                    .expect("connect");
                    // Strided assignment: thread t answers queries
                    // t, t+threads, t+2*threads, …
                    for (i, case) in expected.iter().enumerate().skip(t).step_by(threads) {
                        let got = client.send_raw(&case.frame).expect("query");
                        assert_eq!(
                            got, case.reply,
                            "{label} query {i}: server reply differs from V1 oracle"
                        );
                    }
                });
            }
        });
        // The acceptance criterion: after real traffic, STATS carries
        // non-zero batch and latency histograms — and parses as JSON.
        let mut client = server.client();
        let json = client.stats_json().expect("stats");
        simsearch_serve::json::validate(&json).expect("STATS must be valid JSON");
        assert!(json.contains("\"schema\": \"simsearch-bench-v2\""), "{json}");
        let m = server.metrics();
        assert!(m.latency_ns.count() >= take as u64, "latency histogram populated");
        assert!(m.batch_size.count() > 0, "batch histogram populated");
        assert!(m.batch_size.max() > 1, "micro-batching actually coalesced");
        assert!(m.dp_cells.get() > 0, "V7 DP-cell diagnostics flow through");
        assert_eq!(m.requests_admitted.get(), take as u64);
        assert_eq!(m.replied_ok.get(), take as u64);
        assert_eq!(m.rejected_busy.get(), 0, "default queue never saturates here");
        server.shutdown();
    }
}

/// TOPK over the wire agrees with a direct deepening search and is
/// sorted by (distance, id).
#[test]
fn topk_replies_are_sorted_and_bounded() {
    let preset = presets::city(600);
    let server = Loopback::spawn_default(
        preset.dataset.clone(),
        EngineKind::Scan(SeqVariant::V7SortedPrefix),
    );
    let mut client = server.client();
    for q in preset.workload.queries.iter().take(50) {
        let matches = client.topk(&q.text, 5).expect("topk");
        assert!(matches.len() <= 5);
        for pair in matches.windows(2) {
            assert!(
                (pair[0].distance, pair[0].id) < (pair[1].distance, pair[1].id),
                "TOPK order"
            );
        }
    }
    server.shutdown();
}

/// Graceful drain: requests already admitted when SHUTDOWN arrives are
/// still answered, and every server thread joins.
#[test]
fn shutdown_drains_admitted_requests() {
    let preset = presets::city(300);
    let server = Loopback::spawn(
        preset.dataset.clone(),
        EngineKind::Scan(SeqVariant::V4Flat),
        ServerConfig {
            batch: BatchConfig {
                threads: 1,
                batch_size: 1,
                queue_capacity: 16,
                exec_delay: Duration::from_millis(30),
                ..BatchConfig::default()
            },
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();
    let clients: Vec<_> = (0..5)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client =
                    simsearch_serve::Client::connect_retry(addr, Duration::from_secs(5))
                        .expect("connect");
                client.query(b"Berlin", 2).expect("a drained reply")
            })
        })
        .collect();
    // Let every query reach the admission queue while the single slow
    // worker is busy, then shut down: the drain must answer them all.
    std::thread::sleep(Duration::from_millis(60));
    server.shutdown(); // sends SHUTDOWN, joins all server threads
    for c in clients {
        let reply = c.join().expect("client thread");
        assert!(
            matches!(reply, Response::Matches(_)),
            "admitted request answered with {reply:?} instead of matches"
        );
    }
}

/// HEALTH and STATS work on a fresh server with zero traffic.
#[test]
fn health_and_stats_on_idle_server() {
    let preset = presets::dna(200);
    let server = Loopback::spawn_default(
        preset.dataset.clone(),
        EngineKind::Scan(SeqVariant::V7SortedPrefix),
    );
    let mut client = server.client();
    assert!(client.health().expect("health"));
    let json = client.stats_json().expect("stats");
    simsearch_serve::json::validate(&json).expect("idle STATS is still valid JSON");
    assert!(json.contains("\"records\": 200"), "{json}");
    server.shutdown();
}
