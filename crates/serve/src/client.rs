//! A blocking client for the `simsearchd` wire protocol: one
//! connection, lockstep request/reply framing.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use simsearch_core::JoinPair;
use simsearch_data::Match;

use crate::protocol::{
    encode_request, parse_response, JoinAlgo, Request, Response, MAX_LINE_BYTES,
};

/// A connected `simsearchd` client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

impl Client {
    /// Connects to a server address.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Connects, retrying until `timeout` — covers the race between a
    /// server binding its port and accepting its first connection.
    pub fn connect_retry(addr: impl ToSocketAddrs + Copy, timeout: Duration) -> std::io::Result<Self> {
        let give_up = Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if Instant::now() >= give_up => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Sends one raw frame (terminator appended) and returns the raw
    /// reply line, terminator stripped. The workhorse for fuzz tests
    /// that must ship malformed bytes.
    pub fn send_raw(&mut self, frame: &[u8]) -> std::io::Result<Vec<u8>> {
        self.writer.write_all(frame)?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.recv_raw()
    }

    /// Reads one reply frame without sending anything — `JOIN` replies
    /// span several frames, so callers draining a stream read the
    /// continuation frames with this.
    pub fn recv_raw(&mut self) -> std::io::Result<Vec<u8>> {
        let mut line = Vec::new();
        let n = self
            .reader
            .by_ref()
            .take(MAX_LINE_BYTES as u64 + 2)
            .read_until(b'\n', &mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        if line.last() == Some(&b'\n') {
            line.pop();
        }
        Ok(line)
    }

    /// Reads and parses one reply frame.
    fn recv(&mut self) -> std::io::Result<Response> {
        let reply = self.recv_raw()?;
        parse_response(&reply).map_err(|e| bad_data(format!("bad reply frame: {e}")))
    }

    /// Sends a request and parses the reply.
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        let reply = self.send_raw(&encode_request(request))?;
        parse_response(&reply).map_err(|e| bad_data(format!("bad reply frame: {e}")))
    }

    /// `QUERY <k> <text>` — the reply as-is (may be `Busy`/`Timeout`).
    pub fn query(&mut self, text: &[u8], k: u32) -> std::io::Result<Response> {
        self.request(&Request::Query {
            k,
            text: text.to_vec(),
        })
    }

    /// `TOPK <count> <text>`, unwrapped to the match list.
    pub fn topk(&mut self, text: &[u8], count: u32) -> std::io::Result<Vec<Match>> {
        match self.request(&Request::TopK {
            count,
            text: text.to_vec(),
        })? {
            Response::Matches(matches) => Ok(matches),
            other => Err(bad_data(format!("expected matches, got {other:?}"))),
        }
    }

    /// `JOIN <k> <algo>`, unwrapped to the full pair list: reads the
    /// `OK join <total>` header, then drains `OK pairs` chunk frames
    /// until `total` pairs have arrived.
    pub fn join(&mut self, k: u32, algo: JoinAlgo) -> std::io::Result<Vec<JoinPair>> {
        let total = match self.request(&Request::Join { k, algo })? {
            Response::JoinHeader { total } => total,
            other => return Err(bad_data(format!("expected join header, got {other:?}"))),
        };
        let mut pairs: Vec<JoinPair> = Vec::new();
        while (pairs.len() as u64) < total {
            match self.recv()? {
                Response::JoinPairs(chunk) => pairs.extend(chunk),
                other => return Err(bad_data(format!("expected pair chunk, got {other:?}"))),
            }
        }
        Ok(pairs)
    }

    /// `INSERT <text>`, unwrapped to the assigned record id.
    pub fn insert(&mut self, text: &[u8]) -> std::io::Result<u32> {
        match self.request(&Request::Insert {
            text: text.to_vec(),
        })? {
            Response::Inserted(id) => Ok(id),
            other => Err(bad_data(format!("expected inserted id, got {other:?}"))),
        }
    }

    /// `DELETE <id>` — true iff the id named a live record.
    pub fn delete(&mut self, id: u32) -> std::io::Result<bool> {
        match self.request(&Request::Delete { id })? {
            Response::Deleted { existed } => Ok(existed),
            other => Err(bad_data(format!("expected deleted/absent, got {other:?}"))),
        }
    }

    /// `HEALTH` — true iff the server answered `OK healthy`.
    pub fn health(&mut self) -> std::io::Result<bool> {
        Ok(self.request(&Request::Health)? == Response::Healthy)
    }

    /// `STATS` — the one-line JSON snapshot.
    pub fn stats_json(&mut self) -> std::io::Result<String> {
        match self.request(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            other => Err(bad_data(format!("expected stats, got {other:?}"))),
        }
    }

    /// `SHUTDOWN` — asks the server to drain and exit.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(bad_data(format!("expected bye, got {other:?}"))),
        }
    }
}
