//! `simsearchd`: the TCP server — accept loop, connection handlers,
//! admission control, and graceful drain-on-shutdown.
//!
//! Thread architecture (everything is joined before [`run`] returns —
//! no detached threads):
//!
//! ```text
//! spawn() thread ─ run() ─ thread::scope
//!   ├── engine workers (scoped; borrow the prepared ServedEngine)
//!   ├── scheduler      (scoped; coalesces micro-batches)
//!   ├── accept loop    (the run() thread itself; non-blocking + poll)
//!   └── WorkerPool     (connection handlers; all state Arc-shared)
//! ```
//!
//! The engine borrows the dataset, so its workers are *scoped* threads;
//! connection handlers only touch `'static` shared state (streams,
//! queues, metrics) and therefore run on the reusable
//! [`WorkerPool`] from the parallel crate.
//!
//! Shutdown ordering is the load-bearing part: a `SHUTDOWN` frame (or
//! [`ServerHandle::request_shutdown`]) sets the flag; the accept loop
//! stops; connection handlers notice the flag at their next read
//! timeout and return; the connection pool joins; only then is the
//! admission queue closed, so the scheduler drains every admitted
//! request, the exec queue closes after it, and the engine workers
//! drain the remaining chunks. Every admitted request is answered.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use simsearch_core::EngineKind;
use simsearch_data::Dataset;
use simsearch_parallel::{PushError, SubmissionQueue, WorkerPool};

use crate::batch::{scheduler_loop, worker_loop, BatchConfig, Chunk, Pending, Work};
use crate::engine::ServedEngine;
use crate::metrics::Metrics;
use crate::protocol::{encode_response, parse_request, ProtocolError, Request, Response, MAX_LINE_BYTES};

/// Server tuning beyond the batch pipeline.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Port to bind on loopback; 0 asks the OS for an ephemeral port —
    /// read the real one from [`ServerHandle::port`].
    pub port: u16,
    /// Label for the dataset in `STATS` output.
    pub dataset_label: String,
    /// Connection-handler threads. Each persistent connection occupies
    /// one handler, so this bounds concurrent clients.
    pub conn_threads: usize,
    /// Socket read timeout; doubles as the shutdown-poll interval for
    /// idle connections.
    pub read_timeout: Duration,
    /// Self-tuning cadence: every interval a background tick re-derives
    /// the per-(arm, class) cost multipliers from the live latency
    /// grids and swaps a fresh decision table into the engine (see
    /// DESIGN §16). `None` disables the tick; engines without a
    /// tunable planner ignore it.
    pub replan_interval: Option<Duration>,
    /// Persisted-calibration path (a v3 radix dump). Restored at
    /// startup — ignored when the embedded snapshot mismatches the
    /// served dataset — and rewritten with the final calibrated state
    /// at shutdown. `None` disables persistence.
    pub calibration_path: Option<PathBuf>,
    /// The batch scheduler and engine-worker tuning.
    pub batch: BatchConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            port: 0,
            dataset_label: "unnamed".into(),
            conn_threads: 16,
            read_timeout: Duration::from_millis(50),
            replan_interval: None,
            calibration_path: None,
            batch: BatchConfig::default(),
        }
    }
}

/// A running server. Dropping the handle requests shutdown and joins.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The actually-bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// The live metrics registry (shared with the server).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Asks the server to drain and exit, without waiting. Equivalent to
    /// a client sending `SHUTDOWN`.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Blocks until the server has fully drained and every thread has
    /// been joined.
    pub fn join(mut self) {
        self.join_inner();
    }

    fn join_inner(&mut self) {
        if let Some(thread) = self.thread.take() {
            thread.join().expect("server thread panicked");
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.request_shutdown();
        self.join_inner();
    }
}

/// Binds a loopback listener and runs the server on a background
/// thread. The dataset is moved in; the engine is built and prepared
/// once before the first connection is accepted.
pub fn spawn(dataset: Dataset, kind: EngineKind, config: ServerConfig) -> std::io::Result<ServerHandle> {
    // Fail before the thread spawns (and before the listener binds):
    // an invalid kind — e.g. sharded-live with the `len` partitioner —
    // would otherwise panic on the server thread.
    kind.validate()
        .map_err(|msg| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg))?;
    let listener = TcpListener::bind(("127.0.0.1", config.port))?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let metrics = Arc::new(Metrics::new());
    let thread = {
        let shutdown = Arc::clone(&shutdown);
        let metrics = Arc::clone(&metrics);
        std::thread::Builder::new()
            .name("simsearchd".into())
            .spawn(move || run(listener, &dataset, kind, &config, &metrics, &shutdown))?
    };
    Ok(ServerHandle {
        addr,
        shutdown,
        metrics,
        thread: Some(thread),
    })
}

/// Shared per-server state every connection handler needs; `'static`
/// so handlers can run on the [`WorkerPool`].
struct Shared {
    admission: SubmissionQueue<Pending>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    engine_name: String,
    dataset_label: String,
    records: usize,
    started: Instant,
    read_timeout: Duration,
    /// Worst-case wait for a reply after admission; generous so a
    /// handler never abandons a request the workers will still answer.
    reply_timeout: Duration,
}

fn run(
    listener: TcpListener,
    dataset: &Dataset,
    kind: EngineKind,
    config: &ServerConfig,
    metrics: &Arc<Metrics>,
    shutdown: &Arc<AtomicBool>,
) {
    let engine = ServedEngine::build(dataset, kind);
    // Restore yesterday's measured routing before the first request:
    // the install swaps the persisted table in (epoch > 0), or falls
    // back silently to the static one when the file is missing, stale,
    // or foreign. Either way STATS shows the truth from frame one.
    if let Some(path) = &config.calibration_path {
        if engine.install_calibration(path) {
            metrics.replans.inc();
        }
    }
    engine.publish_replan(metrics);
    let exec: SubmissionQueue<Chunk> = SubmissionQueue::bounded(config.batch.threads.max(1) * 2);
    let shared = Arc::new(Shared {
        admission: SubmissionQueue::bounded(config.batch.queue_capacity),
        metrics: Arc::clone(metrics),
        shutdown: Arc::clone(shutdown),
        engine_name: engine.name().to_string(),
        dataset_label: config.dataset_label.clone(),
        records: engine.records(),
        started: Instant::now(),
        read_timeout: config.read_timeout,
        reply_timeout: config.batch.deadline.saturating_mul(2) + Duration::from_secs(30),
    });
    listener
        .set_nonblocking(true)
        .expect("nonblocking accept is required for shutdown polling");

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..config.batch.threads.max(1))
            .map(|_| scope.spawn(|| worker_loop(&exec, &engine, &config.batch, metrics)))
            .collect();
        let scheduler = {
            let shared = Arc::clone(&shared);
            let exec = &exec;
            let batch = &config.batch;
            scope.spawn(move || scheduler_loop(&shared.admission, exec, batch, &shared.metrics))
        };
        // The self-tuning tick: scoped like the workers (it borrows the
        // engine), polling the shutdown flag between short sleeps so a
        // long interval never delays the drain.
        let replanner = config
            .replan_interval
            .map(|interval| {
                let engine = &engine;
                scope.spawn(move || replan_loop(engine, interval, metrics, shutdown))
            });

        let mut conn_pool = WorkerPool::new(config.conn_threads, config.conn_threads * 4);
        while !shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    metrics.connections.inc();
                    let shared = Arc::clone(&shared);
                    let admitted = conn_pool.submit(move || handle_connection(stream, &shared));
                    if admitted.is_err() {
                        // Handler pool saturated: the stream drops with
                        // the rejected closure, which the client sees as
                        // EOF — a refusal, never a hang. Count it.
                        metrics.rejected_busy.inc();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }

        // Drain in dependency order; see the module docs.
        conn_pool.shutdown();
        shared.admission.close();
        scheduler.join().expect("scheduler panicked");
        exec.close();
        for worker in workers {
            worker.join().expect("engine worker panicked");
        }
        if let Some(replanner) = replanner {
            replanner.join().expect("replan tick panicked");
        }
    });

    // Persist the final calibrated state so the next daemon starts from
    // today's measured costs. Best-effort: a full disk must not turn a
    // clean drain into a crash.
    if let Some(path) = &config.calibration_path {
        let _ = engine.save_calibration(path);
    }
}

/// The background self-tuning loop: every `interval`, re-derive the
/// decision tables from the live observation grids and swap them in
/// ([`ServedEngine::replan`]), then mirror `plan_epoch` and the pooled
/// per-arm latencies into the metrics registry. Sleeps in short slices
/// so shutdown is never blocked behind a long interval.
fn replan_loop(
    engine: &ServedEngine<'_>,
    interval: Duration,
    metrics: &Metrics,
    shutdown: &AtomicBool,
) {
    let slice = Duration::from_millis(10).min(interval);
    let mut next = Instant::now() + interval;
    while !shutdown.load(Ordering::Acquire) {
        if Instant::now() < next {
            std::thread::sleep(slice);
            continue;
        }
        next = Instant::now() + interval;
        let swapped = engine.replan();
        if swapped > 0 {
            metrics.replans.add(swapped);
        }
        engine.publish_replan(metrics);
    }
}

/// One frame read from a connection.
enum FrameRead {
    /// A complete line (terminator stripped) is in the buffer.
    Frame,
    /// Clean end of stream with no partial line.
    Eof,
    /// The line exceeded [`MAX_LINE_BYTES`]; framing is lost.
    TooLong,
    /// Shutdown was requested or the socket errored; stop serving.
    Closed,
}

/// Accumulates one LF-terminated line into `line`, surviving read
/// timeouts (they are the shutdown-poll mechanism) and bounding memory
/// at [`MAX_LINE_BYTES`] even for hostile streams.
fn read_frame(reader: &mut BufReader<TcpStream>, line: &mut Vec<u8>, shutdown: &AtomicBool) -> FrameRead {
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return FrameRead::Closed;
                }
                continue;
            }
            Err(_) => return FrameRead::Closed,
        };
        if buf.is_empty() {
            // EOF; a partial unterminated line is still a frame.
            return if line.is_empty() { FrameRead::Eof } else { FrameRead::Frame };
        }
        if let Some(at) = buf.iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..at]);
            reader.consume(at + 1);
            if line.last() == Some(&b'\r') {
                line.pop(); // tolerate CRLF clients
            }
            return if line.len() > MAX_LINE_BYTES {
                FrameRead::TooLong
            } else {
                FrameRead::Frame
            };
        }
        let taken = buf.len();
        line.extend_from_slice(buf);
        reader.consume(taken);
        if line.len() > MAX_LINE_BYTES {
            return FrameRead::TooLong;
        }
    }
}

/// Discards input up to and including the next LF (or EOF / a 4 MiB
/// cap, whichever first) without storing it.
fn drain_line(reader: &mut BufReader<TcpStream>, shutdown: &AtomicBool) {
    let mut discarded = 0usize;
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        if buf.is_empty() {
            return; // EOF
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |at| at + 1);
        reader.consume(take);
        discarded += take;
        if newline.is_some() || discarded > 64 * MAX_LINE_BYTES {
            return;
        }
    }
}

fn write_frame(writer: &mut BufWriter<TcpStream>, response: &Response) -> std::io::Result<()> {
    writer.write_all(&encode_response(response))?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line: Vec<u8> = Vec::new();
    loop {
        line.clear();
        match read_frame(&mut reader, &mut line, &shared.shutdown) {
            FrameRead::Frame => {}
            FrameRead::Eof | FrameRead::Closed => return,
            FrameRead::TooLong => {
                shared.metrics.replied_error.inc();
                let _ = write_frame(
                    &mut writer,
                    &Response::Error(ProtocolError::TooLong.to_string()),
                );
                // Consume the rest of the oversized line before closing:
                // a close with unread bytes resets the socket, which can
                // destroy the ERR reply still in flight to the client.
                drain_line(&mut reader, &shared.shutdown);
                return; // framing lost: close
            }
        }
        let response = match parse_request(&line) {
            Err(e) => {
                shared.metrics.replied_error.inc();
                Response::Error(e.to_string())
            }
            Ok(Request::Health) => Response::Healthy,
            Ok(Request::Stats) => Response::Stats(shared.metrics.stats_json(
                &shared.engine_name,
                &shared.dataset_label,
                shared.records,
                shared.started,
            )),
            Ok(Request::Shutdown) => {
                let _ = write_frame(&mut writer, &Response::Bye);
                shared.shutdown.store(true, Ordering::Release);
                return;
            }
            Ok(Request::Query { k, text }) => enqueue_and_wait(shared, Work::Query { k }, text),
            Ok(Request::TopK { count, text }) => {
                enqueue_and_wait(shared, Work::TopK { count }, text)
            }
            // Mutations ride the same admission/batch/worker pipeline as
            // queries: they are ordered with the queries around them,
            // inherit admission control (BUSY) and deadlines (TIMEOUT),
            // and a read-only engine answers ERR from the worker.
            Ok(Request::Insert { text }) => enqueue_and_wait(shared, Work::Insert, text),
            Ok(Request::Delete { id }) => {
                enqueue_and_wait(shared, Work::Delete { id }, Vec::new())
            }
            // JOIN replies span several frames; stream them as they
            // arrive instead of collecting one Response.
            Ok(Request::Join { k, algo }) => {
                if enqueue_join_and_stream(shared, k, algo, &mut writer).is_err() {
                    return; // client hung up
                }
                continue;
            }
        };
        if write_frame(&mut writer, &response).is_err() {
            return; // client hung up
        }
    }
}

/// Admission control: non-blocking push (full queue ⇒ immediate `BUSY`),
/// then wait for the worker's reply on a private channel.
fn enqueue_and_wait(shared: &Shared, work: Work, text: Vec<u8>) -> Response {
    let (reply, receiver) = mpsc::channel();
    let pending = Pending {
        work,
        text,
        admitted: Instant::now(),
        reply,
    };
    match shared.admission.push(pending) {
        Ok(()) => {
            shared.metrics.requests_admitted.inc();
            match receiver.recv_timeout(shared.reply_timeout) {
                Ok(response) => response,
                Err(_) => Response::Error("reply channel broken".into()),
            }
        }
        Err(PushError::Full(_)) => {
            shared.metrics.rejected_busy.inc();
            Response::Busy
        }
        Err(PushError::Closed(_)) => Response::Error("server shutting down".into()),
    }
}

/// `JOIN` through the same admission queue, but the reply is a stream:
/// the worker sends `OK join <total>` followed by `OK pairs` chunks
/// over the pending's channel, and this forwards each frame to the
/// socket as it lands. Any non-header first frame (`BUSY`, `TIMEOUT`,
/// `ERR`) is terminal, exactly like a single-frame reply.
fn enqueue_join_and_stream(
    shared: &Shared,
    k: u32,
    algo: crate::protocol::JoinAlgo,
    writer: &mut BufWriter<TcpStream>,
) -> std::io::Result<()> {
    let (reply, receiver) = mpsc::channel();
    let pending = Pending {
        work: Work::Join { k, algo },
        text: Vec::new(),
        admitted: Instant::now(),
        reply,
    };
    match shared.admission.push(pending) {
        Ok(()) => {
            shared.metrics.requests_admitted.inc();
            let mut expected: Option<u64> = None;
            let mut streamed = 0u64;
            loop {
                let frame = match receiver.recv_timeout(shared.reply_timeout) {
                    Ok(frame) => frame,
                    Err(_) => {
                        return write_frame(writer, &Response::Error("reply channel broken".into()))
                    }
                };
                let done = match &frame {
                    Response::JoinHeader { total } => {
                        expected = Some(*total);
                        *total == 0
                    }
                    Response::JoinPairs(pairs) => {
                        streamed += pairs.len() as u64;
                        expected.is_some_and(|total| streamed >= total)
                    }
                    // BUSY / TIMEOUT / ERR: single-frame refusal.
                    _ => true,
                };
                write_frame(writer, &frame)?;
                if done {
                    return Ok(());
                }
            }
        }
        Err(PushError::Full(_)) => {
            shared.metrics.rejected_busy.inc();
            write_frame(writer, &Response::Busy)
        }
        Err(PushError::Closed(_)) => {
            write_frame(writer, &Response::Error("server shutting down".into()))
        }
    }
}
