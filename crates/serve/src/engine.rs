//! The daemon-side engine wrapper: one prepared backend, shared by
//! every request for the server's whole lifetime.
//!
//! Since the planner refactor this is a thin shell over the
//! [`Backend`] trait: `build` maps the configured [`EngineKind`] to
//! one trait object (calibrating the planner when the kind is
//! `Auto`), prepares it once at startup, and every request reuses the
//! prepared state. DP-cell counting and top-k deepening are trait
//! methods now, so the V7 scan needs no special case — any backend
//! that counts cells feeds the metrics registry's `dp_cells` counter,
//! and planner-driven backends expose their `plan_decisions` counters
//! through [`ServedEngine::plan_counts`].

use crate::metrics::Metrics;
use crate::protocol::JoinAlgo;
use simsearch_core::{
    build_backend, calibration, min_join_with_stats, pass_join_with_stats, AutoBackend, Backend,
    EngineKind, JoinPair, JoinStats, LiveEngine, LsmConfig, MinJoinConfig, MutableBackend,
    ShardedBackend, Strategy,
};
use simsearch_data::{Dataset, Match, MatchSet};
use std::path::Path;
use std::sync::Arc;

/// The engine a running `simsearchd` answers with.
pub(crate) struct ServedEngine<'a> {
    backend: Box<dyn Backend + 'a>,
    /// Typed handle to the planner-driven unsharded engine, for the
    /// replan tick and calibration persistence. The same `Arc` sits in
    /// `backend` (read path); `None` for every other kind.
    auto: Option<Arc<AutoBackend<'a>>>,
    /// Typed handle to a sharded composite (frozen or live) — the
    /// replan tick fans out to every shard through it.
    sharded: Option<Arc<ShardedBackend>>,
    /// Typed handle to the unsharded live engine, whose replan flips
    /// the segment arm between V7 and V8.
    live_engine: Option<Arc<LiveEngine>>,
    /// Set when the engine is mutable: the mutation surface
    /// (`INSERT`/`DELETE`, compaction) reaches the same engine the read
    /// path queries — an unsharded [`LiveEngine`] or a sharded-live
    /// composite, behind one trait. `None` for every frozen engine.
    live: Option<Arc<dyn MutableBackend>>,
    /// The frozen seed dataset — `JOIN` runs over this. Live engines
    /// refuse `JOIN` (the dataset shifts under the join), so the field
    /// staying at the seed is never observable there.
    dataset: &'a Dataset,
    name: String,
    records: usize,
}

impl<'a> ServedEngine<'a> {
    /// Builds (and prepares) the backend once, at server startup. For
    /// `EngineKind::Auto` the planner is calibrated with a micro-probe
    /// drawn from the dataset ([`AutoBackend::default_probe`]) — build
    /// cost, like index construction, lands here and not in the first
    /// request.
    pub fn build(dataset: &'a Dataset, kind: EngineKind) -> Self {
        let mut live = None;
        let mut auto = None;
        let mut sharded = None;
        let mut live_engine = None;
        let backend: Box<dyn Backend + 'a> = match kind {
            EngineKind::Auto { threads } => {
                let engine = Arc::new(AutoBackend::calibrated(
                    dataset,
                    threads,
                    &AutoBackend::default_probe(dataset),
                ));
                auto = Some(Arc::clone(&engine));
                Box::new(engine)
            }
            // A served sharded engine calibrates every shard's planner
            // against that shard's own records at startup.
            EngineKind::Sharded {
                shards,
                by,
                threads,
            } => {
                let composite = Arc::new(ShardedBackend::calibrated(dataset, shards, by, threads));
                sharded = Some(Arc::clone(&composite));
                Box::new(composite)
            }
            // Live engines are shared between the read path (this
            // backend slot) and the mutation surface — the same `Arc`
            // serves both, `Backend` on one side and `MutableBackend`
            // on the other.
            EngineKind::Live { memtable_cap } => {
                let engine = Arc::new(LiveEngine::from_dataset(
                    dataset,
                    LsmConfig { memtable_cap },
                ));
                live = Some(engine.clone() as Arc<dyn MutableBackend>);
                live_engine = Some(Arc::clone(&engine));
                Box::new(engine)
            }
            EngineKind::ShardedLive {
                shards,
                by,
                threads,
                memtable_cap,
            } => {
                // `spawn` and the CLI validate the kind before reaching
                // this; a panic here means a caller skipped validation.
                let composite = Arc::new(
                    ShardedBackend::live(dataset, shards, by, threads, LsmConfig { memtable_cap })
                        .expect("EngineKind::validate rejects invalid sharded-live configs"),
                );
                live = Some(composite.clone() as Arc<dyn MutableBackend>);
                sharded = Some(Arc::clone(&composite));
                Box::new(composite)
            }
            other => build_backend(dataset, other),
        };
        backend.prepare();
        Self {
            backend,
            auto,
            sharded,
            live_engine,
            live,
            dataset,
            name: kind.name(),
            records: dataset.len(),
        }
    }

    /// Whether this engine accepts `INSERT`/`DELETE`.
    pub fn is_live(&self) -> bool {
        self.live.is_some()
    }

    /// Appends a record on a live engine; `None` on read-only engines.
    pub fn insert(&self, record: &[u8]) -> Option<u32> {
        self.live.as_ref().map(|l| l.insert(record))
    }

    /// Tombstones a record on a live engine; `None` on read-only
    /// engines, `Some(existed)` otherwise.
    pub fn delete(&self, id: u32) -> Option<bool> {
        self.live.as_ref().map(|l| l.delete(id))
    }

    /// Self-joins the frozen dataset within distance `k`; `None` on
    /// live engines, whose dataset can shift mid-join. Runs
    /// sequentially — like the search kernels, a served join draws its
    /// concurrency from the batch workers rather than nesting a pool
    /// per request.
    pub fn join(&self, k: u32, algo: JoinAlgo) -> Option<(Vec<JoinPair>, JoinStats)> {
        if self.live.is_some() {
            return None;
        }
        Some(match algo {
            JoinAlgo::Pass => pass_join_with_stats(self.dataset, k, Strategy::Sequential),
            JoinAlgo::MinJoin => min_join_with_stats(
                self.dataset,
                k,
                Strategy::Sequential,
                MinJoinConfig::default(),
            ),
        })
    }

    /// Runs one compaction step on a live engine when one is due.
    /// Called by the batch workers between chunks — compaction rides
    /// the worker threads, no dedicated compaction thread needed.
    pub fn maybe_compact(&self) -> bool {
        self.live.as_ref().is_some_and(|l| l.maybe_compact())
    }

    /// Publishes the live engine's structural state into the metrics
    /// registry (no-op for frozen engines). Called beside
    /// [`ServedEngine::publish_plan`] after every executed chunk. The
    /// aggregate gauges are sums over shards (for sharded-live engines),
    /// so the per-shard `live_shards` entries sum to them by
    /// construction.
    pub fn publish_live(&self, metrics: &Metrics) {
        if let Some(live) = &self.live {
            let stats = live.live_stats();
            metrics.memtable_len.set(stats.memtable_len);
            metrics.segments.set(stats.segments);
            metrics.tombstones.set(stats.tombstones);
            metrics.compactions.set(stats.compactions);
            metrics.inserts.set(stats.inserts);
            metrics.deletes.set(stats.deletes);
            if let Some(per_shard) = live.live_shard_stats() {
                let labelled: Vec<(String, u64)> = per_shard
                    .iter()
                    .enumerate()
                    .flat_map(|(i, s)| {
                        [
                            (format!("s{i}.memtable_len"), s.memtable_len as u64),
                            (format!("s{i}.segments"), s.segments as u64),
                            (format!("s{i}.tombstones"), s.tombstones as u64),
                        ]
                    })
                    .collect();
                let refs: Vec<(&str, u64)> =
                    labelled.iter().map(|(n, c)| (n.as_str(), *c)).collect();
                metrics.live_shards.publish(&refs);
            }
        }
    }

    /// Engine label for `STATS`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dataset size for `STATS`.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Threshold search: all records within `k`, plus the DP cells the
    /// kernel reports (0 for kernels without cell counting).
    pub fn search(&self, query: &[u8], k: u32) -> (MatchSet, u64) {
        self.backend.search_counting(query, k)
    }

    /// Top-k search by iterative deepening, accumulating DP cells over
    /// the deepening probes.
    pub fn topk(&self, query: &[u8], count: usize, max_radius: u32) -> (Vec<Match>, u64) {
        self.backend.search_top_k_with(query, count, max_radius)
    }

    /// `(backend name, queries routed)` counters when the engine is
    /// planner-driven (`None` otherwise). The batch workers publish
    /// these into the metrics registry after every chunk.
    pub fn plan_counts(&self) -> Option<Vec<(&'static str, u64)>> {
        self.backend.plan_counts()
    }

    /// One self-tuning tick: re-derives the decision tables from the
    /// live observation grids and swaps them in atomically. Returns the
    /// number of accepted swaps — 0 when the engine has no tunable
    /// planner, when the grids are still too thin
    /// ([`simsearch_core::MIN_CELL_OBSERVATIONS`]), or when nothing
    /// changed (a live engine's segment arm only counts when it flips).
    /// Sharded engines tick every shard, so a freshly flushed shard can
    /// move to its V7/V8 segments while a memtable-heavy neighbour
    /// keeps the flat scan.
    pub fn replan(&self) -> u64 {
        if let Some(auto) = &self.auto {
            return u64::from(auto.replan());
        }
        if let Some(sharded) = &self.sharded {
            return sharded.replan() as u64;
        }
        if let Some(engine) = &self.live_engine {
            return u64::from(engine.replan());
        }
        0
    }

    /// The engine's plan epoch: 0 until the first accepted swap, then
    /// +1 per swap (summed over shards for sharded engines). A restart
    /// that installs persisted calibration starts above 0.
    pub fn plan_epoch(&self) -> u64 {
        if let Some(auto) = &self.auto {
            return auto.plan_epoch();
        }
        if let Some(sharded) = &self.sharded {
            return sharded.plan_epoch();
        }
        if let Some(engine) = &self.live_engine {
            return engine.plan_epoch();
        }
        0
    }

    /// Restores persisted calibration into the planner (unsharded
    /// planner engines only) and swaps it in, bumping the plan epoch
    /// above 0. Returns `false` — leaving the static table in place —
    /// when the engine is not an unsharded `auto`, the file is missing
    /// or unreadable, or the persisted snapshot mismatches the dataset
    /// being served (stale calibration must not route today's data).
    pub fn install_calibration(&self, path: &Path) -> bool {
        let Some(auto) = &self.auto else {
            return false;
        };
        let current = auto.planner();
        match calibration::load_calibration(path, current.snapshot(), current.candidates()) {
            Some(restored) => auto.set_planner(restored),
            None => false,
        }
    }

    /// Persists the current calibrated planner next to a freshly built
    /// radix index (unsharded planner engines only). `Ok(false)` when
    /// the engine has nothing to persist.
    ///
    /// # Errors
    /// Any underlying I/O error from writing the dump.
    pub fn save_calibration(&self, path: &Path) -> std::io::Result<bool> {
        let Some(auto) = &self.auto else {
            return Ok(false);
        };
        calibration::save_calibration(path, self.dataset, &auto.planner())?;
        Ok(true)
    }

    /// Mirrors the replanning state into the metrics registry: the
    /// current plan epoch and (for unsharded planner engines) the
    /// pooled per-arm observed nanoseconds the next replan will derive
    /// its multipliers from.
    pub fn publish_replan(&self, metrics: &Metrics) {
        metrics.plan_epoch.set(self.plan_epoch());
        if let Some(auto) = &self.auto {
            metrics.arm_nanos.publish(&auto.observed_arm_nanos());
        }
    }

    /// Publishes the engine's routing state into the metrics registry:
    /// `plan_decisions` gets the cross-shard aggregate per arm plus one
    /// `s{i}.{arm}` entry per shard and arm (sharded engines), and
    /// `shard_matches` gets per-shard cumulative match counts. Called
    /// by the batch workers after every executed chunk.
    pub fn publish_plan(&self, metrics: &Metrics) {
        let shards = self.backend.shard_stats();
        if let Some(counts) = self.plan_counts() {
            match &shards {
                Some(stats) => {
                    let mut labelled: Vec<(String, u64)> =
                        counts.iter().map(|&(n, c)| (n.to_string(), c)).collect();
                    for (i, s) in stats.iter().enumerate() {
                        for (n, c) in s.plan_counts.iter().flatten() {
                            labelled.push((format!("s{i}.{n}"), *c));
                        }
                    }
                    let refs: Vec<(&str, u64)> =
                        labelled.iter().map(|(n, c)| (n.as_str(), *c)).collect();
                    metrics.plan_decisions.publish(&refs);
                }
                None => metrics.plan_decisions.publish(&counts),
            }
        }
        if let Some(stats) = shards {
            let labelled: Vec<(String, u64)> = stats
                .iter()
                .enumerate()
                .map(|(i, s)| (format!("s{i}"), s.matches))
                .collect();
            let refs: Vec<(&str, u64)> = labelled.iter().map(|(n, c)| (n.as_str(), *c)).collect();
            metrics.shard_matches.publish(&refs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_core::{IdxVariant, SeqVariant};

    fn dataset() -> Dataset {
        Dataset::from_records(["Berlin", "Bern", "Bonn", "Ulm", "Berlingen", ""])
    }

    #[test]
    fn served_engines_agree_with_the_reference() {
        let ds = dataset();
        let reference = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        let kinds = [
            EngineKind::Scan(SeqVariant::V4Flat),
            EngineKind::Scan(SeqVariant::V7SortedPrefix),
            EngineKind::Scan(SeqVariant::V8BitParallel),
            EngineKind::Index(IdxVariant::I2Compressed),
            EngineKind::Auto { threads: 1 },
        ];
        for kind in kinds {
            let engine = ServedEngine::build(&ds, kind);
            for q in ["Berlin", "Urm", ""] {
                for k in 0..3 {
                    let (want, _) = reference.search(q.as_bytes(), k);
                    let (got, _) = engine.search(q.as_bytes(), k);
                    assert_eq!(got, want, "{} q={q} k={k}", engine.name());
                }
                let (want_top, _) = reference.topk(q.as_bytes(), 3, 16);
                let (got_top, _) = engine.topk(q.as_bytes(), 3, 16);
                assert_eq!(got_top, want_top, "{} topk q={q}", engine.name());
            }
        }
    }

    #[test]
    fn v7_reports_dp_cells() {
        let ds = dataset();
        let engine = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V7SortedPrefix));
        let (_, cells) = engine.search(b"Berlin", 2);
        assert!(cells > 0, "the V7 kernel counts its DP cells");
        let (_, v8_cells) = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V8BitParallel))
            .search(b"Berlin", 2);
        assert!(v8_cells > 0, "the V8 kernel counts its DP cells too");
        let (_, flat_cells) =
            ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat)).search(b"Berlin", 2);
        assert_eq!(flat_cells, 0, "uncounted kernels report zero");
    }

    #[test]
    fn auto_engines_count_plan_decisions() {
        let ds = dataset();
        let fixed = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat));
        assert!(fixed.plan_counts().is_none());
        let auto = ServedEngine::build(&ds, EngineKind::Auto { threads: 1 });
        let before: u64 = auto
            .plan_counts()
            .expect("auto engines expose counters")
            .iter()
            .map(|(_, c)| c)
            .sum();
        let _ = auto.search(b"Berlin", 2);
        let _ = auto.search(b"Ulm", 1);
        let after: u64 = auto
            .plan_counts()
            .unwrap()
            .iter()
            .map(|(_, c)| c)
            .sum();
        assert_eq!(after, before + 2);
    }

    #[test]
    fn replan_swaps_after_enough_observations_and_fixed_engines_ignore() {
        let ds = dataset();
        let fixed = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat));
        assert_eq!(fixed.replan(), 0, "fixed engines have no planner");
        assert_eq!(fixed.plan_epoch(), 0);

        let auto = ServedEngine::build(&ds, EngineKind::Auto { threads: 1 });
        assert_eq!(auto.plan_epoch(), 0, "build-time calibration is epoch 0");
        assert_eq!(auto.replan(), 0, "no observations yet: swap refused");
        for _ in 0..simsearch_core::MIN_CELL_OBSERVATIONS {
            let _ = auto.search(b"Berlin", 1);
            let _ = auto.topk(b"Bern", 2, 8);
        }
        assert_eq!(auto.replan(), 1, "grid filled: the swap is accepted");
        assert_eq!(auto.plan_epoch(), 1);
        // Replanned routing still answers exactly like the oracle.
        let reference = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        for q in ["Berlin", "Urm", ""] {
            for k in 0..3 {
                let (want, _) = reference.search(q.as_bytes(), k);
                let (got, _) = auto.search(q.as_bytes(), k);
                assert_eq!(got, want, "q={q} k={k}");
            }
        }
        let metrics = Metrics::new();
        auto.publish_replan(&metrics);
        assert_eq!(metrics.plan_epoch.get(), 1);
        let nanos = metrics.arm_nanos.snapshot();
        assert!(!nanos.is_empty(), "auto engines expose arm nanos");
        assert!(
            nanos.iter().any(|(_, n)| *n > 0),
            "observed latencies are nonzero: {nanos:?}"
        );
    }

    #[test]
    fn calibration_persists_across_an_engine_rebuild() {
        let ds = dataset();
        let path = std::env::temp_dir().join(format!(
            "simsearch-served-calib-{}",
            std::process::id()
        ));
        {
            let auto = ServedEngine::build(&ds, EngineKind::Auto { threads: 1 });
            for _ in 0..simsearch_core::MIN_CELL_OBSERVATIONS {
                let _ = auto.search(b"Berlin", 1);
            }
            assert_eq!(auto.replan(), 1);
            assert!(auto.save_calibration(&path).unwrap());
        }
        // The "restarted daemon": a fresh engine over the same dataset
        // installs yesterday's calibration, starting above epoch 0.
        let restarted = ServedEngine::build(&ds, EngineKind::Auto { threads: 1 });
        assert!(restarted.install_calibration(&path));
        assert!(restarted.plan_epoch() > 0, "restored swap counts as an epoch");
        // A daemon serving *different* data refuses the stale file.
        let other = Dataset::from_records(["ACGT", "ACGA", "TTTT"]);
        let mismatched = ServedEngine::build(&other, EngineKind::Auto { threads: 1 });
        assert!(!mismatched.install_calibration(&path));
        assert_eq!(mismatched.plan_epoch(), 0, "fallback keeps the static table");
        std::fs::remove_file(&path).unwrap();
        // Frozen engines have nothing to persist.
        let fixed = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat));
        assert!(!fixed.save_calibration(&path).unwrap());
        assert!(!path.exists());
    }

    #[test]
    fn sharded_and_live_engines_replan_per_shard() {
        let ds = dataset();
        let sharded = ServedEngine::build(
            &ds,
            EngineKind::Sharded {
                shards: 2,
                by: simsearch_core::ShardBy::Len,
                threads: 1,
            },
        );
        assert_eq!(sharded.replan(), 0, "thin grids refuse the swap");
        for _ in 0..simsearch_core::MIN_CELL_OBSERVATIONS * 4 {
            let _ = sharded.search(b"Berlin", 1);
            let _ = sharded.search(b"Ulm", 1);
        }
        let swapped = sharded.replan();
        assert!(swapped > 0, "observed shards accept the swap");
        assert_eq!(sharded.plan_epoch(), swapped);

        // An unsharded live engine replans its segment arm; with the
        // whole seed still in one fresh flush of short city strings the
        // preferred arm stays the sorted scan — no epoch bump.
        let live = ServedEngine::build(&ds, EngineKind::Live { memtable_cap: 2 });
        let _ = live.replan();
        assert_eq!(live.plan_epoch(), 0, "short records keep the V7 arm");
    }

    #[test]
    fn live_engine_accepts_mutations_and_frozen_engines_refuse() {
        let ds = dataset();
        let frozen = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat));
        assert!(!frozen.is_live());
        assert!(frozen.insert(b"x").is_none());
        assert!(frozen.delete(0).is_none());
        assert!(!frozen.maybe_compact());

        let live = ServedEngine::build(&ds, EngineKind::Live { memtable_cap: 2 });
        assert!(live.is_live());
        // Seeded reads agree with the reference engine.
        let reference = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        for q in ["Berlin", "Urm", ""] {
            for k in 0..3 {
                let (want, _) = reference.search(q.as_bytes(), k);
                let (got, _) = live.search(q.as_bytes(), k);
                assert_eq!(got, want, "q={q} k={k}");
            }
        }
        let id = live.insert("Bärlin".as_bytes()).unwrap();
        assert_eq!(id as usize, ds.len(), "ids continue after the seed");
        assert_eq!(live.delete(id), Some(true));
        assert_eq!(live.delete(id), Some(false));

        let metrics = Metrics::new();
        live.publish_live(&metrics);
        assert_eq!(metrics.segments.get(), 1, "seed flushed to one segment");
        assert_eq!(metrics.inserts.get(), ds.len() as u64 + 1);
        assert_eq!(metrics.deletes.get(), 1);
        // Frozen engines leave the live gauges untouched.
        let frozen_metrics = Metrics::new();
        frozen.publish_live(&frozen_metrics);
        assert_eq!(frozen_metrics.segments.get(), 0);
    }

    #[test]
    fn frozen_engines_join_and_live_engines_refuse() {
        let ds = dataset();
        let frozen = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        let reference = simsearch_core::join::nested_loop_join(&ds, 2);
        for algo in [JoinAlgo::Pass, JoinAlgo::MinJoin] {
            let (pairs, stats) = frozen.join(2, algo).expect("frozen engines join");
            assert_eq!(pairs, reference, "{algo:?}");
            assert_eq!(stats.pairs_emitted, pairs.len() as u64);
        }
        let live = ServedEngine::build(&ds, EngineKind::Live { memtable_cap: 4 });
        assert!(live.join(1, JoinAlgo::Pass).is_none());
    }

    #[test]
    fn sharded_engine_agrees_and_publishes_per_shard_metrics() {
        let ds = dataset();
        let reference = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        let sharded = ServedEngine::build(
            &ds,
            EngineKind::Sharded {
                shards: 3,
                by: simsearch_core::ShardBy::Len,
                threads: 1,
            },
        );
        for q in ["Berlin", "Urm", ""] {
            for k in 0..3 {
                let (want, _) = reference.search(q.as_bytes(), k);
                let (got, _) = sharded.search(q.as_bytes(), k);
                assert_eq!(got, want, "q={q} k={k}");
            }
        }
        let metrics = Metrics::new();
        sharded.publish_plan(&metrics);
        let decisions = metrics.plan_decisions.snapshot();
        assert!(
            decisions.iter().any(|(n, _)| n.starts_with("s0.")),
            "per-shard plan_decisions published: {decisions:?}"
        );
        let matches = metrics.shard_matches.snapshot();
        assert_eq!(matches.len(), 3);
        assert!(matches.iter().all(|(n, _)| n.starts_with('s')));
    }

    #[test]
    fn sharded_live_engine_mutates_and_publishes_per_shard_gauges() {
        let ds = dataset();
        let engine = ServedEngine::build(
            &ds,
            EngineKind::ShardedLive {
                shards: 4,
                by: simsearch_core::ShardBy::Hash,
                threads: 1,
                memtable_cap: 2,
            },
        );
        assert!(engine.is_live());
        assert!(engine.join(1, JoinAlgo::Pass).is_none(), "live refuses JOIN");
        // Seeded reads agree with the reference engine.
        let reference = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        for q in ["Berlin", "Urm", ""] {
            for k in 0..3 {
                let (want, _) = reference.search(q.as_bytes(), k);
                let (got, _) = engine.search(q.as_bytes(), k);
                assert_eq!(got, want, "q={q} k={k}");
            }
        }
        // Mutations route across shards from one global id space.
        let id = engine.insert("Bärlin".as_bytes()).unwrap();
        assert_eq!(id as usize, ds.len(), "ids continue after the seed");
        let id2 = engine.insert(b"Ulmen").unwrap();
        assert_eq!(id2, id + 1);
        assert_eq!(engine.delete(id), Some(true));
        assert_eq!(engine.delete(id), Some(false));
        let (got, _) = engine.search(b"Ulmen", 0);
        assert_eq!(got.ids(), vec![id2]);

        let metrics = Metrics::new();
        engine.publish_live(&metrics);
        assert_eq!(metrics.inserts.get(), ds.len() as u64 + 2);
        assert_eq!(metrics.deletes.get(), 1);
        let per_shard = metrics.live_shards.snapshot();
        assert_eq!(per_shard.len(), 4 * 3, "three gauges per shard");
        // Per-shard gauges sum to the aggregates.
        let sum = |suffix: &str| -> u64 {
            per_shard
                .iter()
                .filter(|(n, _)| n.ends_with(suffix))
                .map(|(_, c)| c)
                .sum()
        };
        assert_eq!(sum(".memtable_len"), metrics.memtable_len.get() as u64);
        assert_eq!(sum(".segments"), metrics.segments.get() as u64);
        assert_eq!(sum(".tombstones"), metrics.tombstones.get() as u64);
    }
}
