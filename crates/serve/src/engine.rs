//! The daemon-side engine wrapper: one prepared backend, shared by
//! every request for the server's whole lifetime.
//!
//! Since the planner refactor this is a thin shell over the
//! [`Backend`] trait: `build` maps the configured [`EngineKind`] to
//! one trait object (calibrating the planner when the kind is
//! `Auto`), prepares it once at startup, and every request reuses the
//! prepared state. DP-cell counting and top-k deepening are trait
//! methods now, so the V7 scan needs no special case — any backend
//! that counts cells feeds the metrics registry's `dp_cells` counter,
//! and planner-driven backends expose their `plan_decisions` counters
//! through [`ServedEngine::plan_counts`].

use crate::metrics::Metrics;
use crate::protocol::JoinAlgo;
use simsearch_core::{
    build_backend, min_join_with_stats, pass_join_with_stats, AutoBackend, Backend, EngineKind,
    JoinPair, JoinStats, LiveEngine, LsmConfig, MinJoinConfig, MutableBackend, ShardedBackend,
    Strategy,
};
use simsearch_data::{Dataset, Match, MatchSet};
use std::sync::Arc;

/// The engine a running `simsearchd` answers with.
pub(crate) struct ServedEngine<'a> {
    backend: Box<dyn Backend + 'a>,
    /// Set when the engine is mutable: the mutation surface
    /// (`INSERT`/`DELETE`, compaction) reaches the same engine the read
    /// path queries — an unsharded [`LiveEngine`] or a sharded-live
    /// composite, behind one trait. `None` for every frozen engine.
    live: Option<Arc<dyn MutableBackend>>,
    /// The frozen seed dataset — `JOIN` runs over this. Live engines
    /// refuse `JOIN` (the dataset shifts under the join), so the field
    /// staying at the seed is never observable there.
    dataset: &'a Dataset,
    name: String,
    records: usize,
}

impl<'a> ServedEngine<'a> {
    /// Builds (and prepares) the backend once, at server startup. For
    /// `EngineKind::Auto` the planner is calibrated with a micro-probe
    /// drawn from the dataset ([`AutoBackend::default_probe`]) — build
    /// cost, like index construction, lands here and not in the first
    /// request.
    pub fn build(dataset: &'a Dataset, kind: EngineKind) -> Self {
        let mut live = None;
        let backend: Box<dyn Backend + 'a> = match kind {
            EngineKind::Auto { threads } => Box::new(AutoBackend::calibrated(
                dataset,
                threads,
                &AutoBackend::default_probe(dataset),
            )),
            // A served sharded engine calibrates every shard's planner
            // against that shard's own records at startup.
            EngineKind::Sharded {
                shards,
                by,
                threads,
            } => Box::new(ShardedBackend::calibrated(dataset, shards, by, threads)),
            // Live engines are shared between the read path (this
            // backend slot) and the mutation surface — the same `Arc`
            // serves both, `Backend` on one side and `MutableBackend`
            // on the other.
            EngineKind::Live { memtable_cap } => {
                let engine = Arc::new(LiveEngine::from_dataset(
                    dataset,
                    LsmConfig { memtable_cap },
                ));
                live = Some(engine.clone() as Arc<dyn MutableBackend>);
                Box::new(engine)
            }
            EngineKind::ShardedLive {
                shards,
                by,
                threads,
                memtable_cap,
            } => {
                // `spawn` and the CLI validate the kind before reaching
                // this; a panic here means a caller skipped validation.
                let composite = Arc::new(
                    ShardedBackend::live(dataset, shards, by, threads, LsmConfig { memtable_cap })
                        .expect("EngineKind::validate rejects invalid sharded-live configs"),
                );
                live = Some(composite.clone() as Arc<dyn MutableBackend>);
                Box::new(composite)
            }
            other => build_backend(dataset, other),
        };
        backend.prepare();
        Self {
            backend,
            live,
            dataset,
            name: kind.name(),
            records: dataset.len(),
        }
    }

    /// Whether this engine accepts `INSERT`/`DELETE`.
    pub fn is_live(&self) -> bool {
        self.live.is_some()
    }

    /// Appends a record on a live engine; `None` on read-only engines.
    pub fn insert(&self, record: &[u8]) -> Option<u32> {
        self.live.as_ref().map(|l| l.insert(record))
    }

    /// Tombstones a record on a live engine; `None` on read-only
    /// engines, `Some(existed)` otherwise.
    pub fn delete(&self, id: u32) -> Option<bool> {
        self.live.as_ref().map(|l| l.delete(id))
    }

    /// Self-joins the frozen dataset within distance `k`; `None` on
    /// live engines, whose dataset can shift mid-join. Runs
    /// sequentially — like the search kernels, a served join draws its
    /// concurrency from the batch workers rather than nesting a pool
    /// per request.
    pub fn join(&self, k: u32, algo: JoinAlgo) -> Option<(Vec<JoinPair>, JoinStats)> {
        if self.live.is_some() {
            return None;
        }
        Some(match algo {
            JoinAlgo::Pass => pass_join_with_stats(self.dataset, k, Strategy::Sequential),
            JoinAlgo::MinJoin => min_join_with_stats(
                self.dataset,
                k,
                Strategy::Sequential,
                MinJoinConfig::default(),
            ),
        })
    }

    /// Runs one compaction step on a live engine when one is due.
    /// Called by the batch workers between chunks — compaction rides
    /// the worker threads, no dedicated compaction thread needed.
    pub fn maybe_compact(&self) -> bool {
        self.live.as_ref().is_some_and(|l| l.maybe_compact())
    }

    /// Publishes the live engine's structural state into the metrics
    /// registry (no-op for frozen engines). Called beside
    /// [`ServedEngine::publish_plan`] after every executed chunk. The
    /// aggregate gauges are sums over shards (for sharded-live engines),
    /// so the per-shard `live_shards` entries sum to them by
    /// construction.
    pub fn publish_live(&self, metrics: &Metrics) {
        if let Some(live) = &self.live {
            let stats = live.live_stats();
            metrics.memtable_len.set(stats.memtable_len);
            metrics.segments.set(stats.segments);
            metrics.tombstones.set(stats.tombstones);
            metrics.compactions.set(stats.compactions);
            metrics.inserts.set(stats.inserts);
            metrics.deletes.set(stats.deletes);
            if let Some(per_shard) = live.live_shard_stats() {
                let labelled: Vec<(String, u64)> = per_shard
                    .iter()
                    .enumerate()
                    .flat_map(|(i, s)| {
                        [
                            (format!("s{i}.memtable_len"), s.memtable_len as u64),
                            (format!("s{i}.segments"), s.segments as u64),
                            (format!("s{i}.tombstones"), s.tombstones as u64),
                        ]
                    })
                    .collect();
                let refs: Vec<(&str, u64)> =
                    labelled.iter().map(|(n, c)| (n.as_str(), *c)).collect();
                metrics.live_shards.publish(&refs);
            }
        }
    }

    /// Engine label for `STATS`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dataset size for `STATS`.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Threshold search: all records within `k`, plus the DP cells the
    /// kernel reports (0 for kernels without cell counting).
    pub fn search(&self, query: &[u8], k: u32) -> (MatchSet, u64) {
        self.backend.search_counting(query, k)
    }

    /// Top-k search by iterative deepening, accumulating DP cells over
    /// the deepening probes.
    pub fn topk(&self, query: &[u8], count: usize, max_radius: u32) -> (Vec<Match>, u64) {
        self.backend.search_top_k_with(query, count, max_radius)
    }

    /// `(backend name, queries routed)` counters when the engine is
    /// planner-driven (`None` otherwise). The batch workers publish
    /// these into the metrics registry after every chunk.
    pub fn plan_counts(&self) -> Option<Vec<(&'static str, u64)>> {
        self.backend.plan_counts()
    }

    /// Publishes the engine's routing state into the metrics registry:
    /// `plan_decisions` gets the cross-shard aggregate per arm plus one
    /// `s{i}.{arm}` entry per shard and arm (sharded engines), and
    /// `shard_matches` gets per-shard cumulative match counts. Called
    /// by the batch workers after every executed chunk.
    pub fn publish_plan(&self, metrics: &Metrics) {
        let shards = self.backend.shard_stats();
        if let Some(counts) = self.plan_counts() {
            match &shards {
                Some(stats) => {
                    let mut labelled: Vec<(String, u64)> =
                        counts.iter().map(|&(n, c)| (n.to_string(), c)).collect();
                    for (i, s) in stats.iter().enumerate() {
                        for (n, c) in s.plan_counts.iter().flatten() {
                            labelled.push((format!("s{i}.{n}"), *c));
                        }
                    }
                    let refs: Vec<(&str, u64)> =
                        labelled.iter().map(|(n, c)| (n.as_str(), *c)).collect();
                    metrics.plan_decisions.publish(&refs);
                }
                None => metrics.plan_decisions.publish(&counts),
            }
        }
        if let Some(stats) = shards {
            let labelled: Vec<(String, u64)> = stats
                .iter()
                .enumerate()
                .map(|(i, s)| (format!("s{i}"), s.matches))
                .collect();
            let refs: Vec<(&str, u64)> = labelled.iter().map(|(n, c)| (n.as_str(), *c)).collect();
            metrics.shard_matches.publish(&refs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_core::{IdxVariant, SeqVariant};

    fn dataset() -> Dataset {
        Dataset::from_records(["Berlin", "Bern", "Bonn", "Ulm", "Berlingen", ""])
    }

    #[test]
    fn served_engines_agree_with_the_reference() {
        let ds = dataset();
        let reference = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        let kinds = [
            EngineKind::Scan(SeqVariant::V4Flat),
            EngineKind::Scan(SeqVariant::V7SortedPrefix),
            EngineKind::Scan(SeqVariant::V8BitParallel),
            EngineKind::Index(IdxVariant::I2Compressed),
            EngineKind::Auto { threads: 1 },
        ];
        for kind in kinds {
            let engine = ServedEngine::build(&ds, kind);
            for q in ["Berlin", "Urm", ""] {
                for k in 0..3 {
                    let (want, _) = reference.search(q.as_bytes(), k);
                    let (got, _) = engine.search(q.as_bytes(), k);
                    assert_eq!(got, want, "{} q={q} k={k}", engine.name());
                }
                let (want_top, _) = reference.topk(q.as_bytes(), 3, 16);
                let (got_top, _) = engine.topk(q.as_bytes(), 3, 16);
                assert_eq!(got_top, want_top, "{} topk q={q}", engine.name());
            }
        }
    }

    #[test]
    fn v7_reports_dp_cells() {
        let ds = dataset();
        let engine = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V7SortedPrefix));
        let (_, cells) = engine.search(b"Berlin", 2);
        assert!(cells > 0, "the V7 kernel counts its DP cells");
        let (_, v8_cells) = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V8BitParallel))
            .search(b"Berlin", 2);
        assert!(v8_cells > 0, "the V8 kernel counts its DP cells too");
        let (_, flat_cells) =
            ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat)).search(b"Berlin", 2);
        assert_eq!(flat_cells, 0, "uncounted kernels report zero");
    }

    #[test]
    fn auto_engines_count_plan_decisions() {
        let ds = dataset();
        let fixed = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat));
        assert!(fixed.plan_counts().is_none());
        let auto = ServedEngine::build(&ds, EngineKind::Auto { threads: 1 });
        let before: u64 = auto
            .plan_counts()
            .expect("auto engines expose counters")
            .iter()
            .map(|(_, c)| c)
            .sum();
        let _ = auto.search(b"Berlin", 2);
        let _ = auto.search(b"Ulm", 1);
        let after: u64 = auto
            .plan_counts()
            .unwrap()
            .iter()
            .map(|(_, c)| c)
            .sum();
        assert_eq!(after, before + 2);
    }

    #[test]
    fn live_engine_accepts_mutations_and_frozen_engines_refuse() {
        let ds = dataset();
        let frozen = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat));
        assert!(!frozen.is_live());
        assert!(frozen.insert(b"x").is_none());
        assert!(frozen.delete(0).is_none());
        assert!(!frozen.maybe_compact());

        let live = ServedEngine::build(&ds, EngineKind::Live { memtable_cap: 2 });
        assert!(live.is_live());
        // Seeded reads agree with the reference engine.
        let reference = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        for q in ["Berlin", "Urm", ""] {
            for k in 0..3 {
                let (want, _) = reference.search(q.as_bytes(), k);
                let (got, _) = live.search(q.as_bytes(), k);
                assert_eq!(got, want, "q={q} k={k}");
            }
        }
        let id = live.insert("Bärlin".as_bytes()).unwrap();
        assert_eq!(id as usize, ds.len(), "ids continue after the seed");
        assert_eq!(live.delete(id), Some(true));
        assert_eq!(live.delete(id), Some(false));

        let metrics = Metrics::new();
        live.publish_live(&metrics);
        assert_eq!(metrics.segments.get(), 1, "seed flushed to one segment");
        assert_eq!(metrics.inserts.get(), ds.len() as u64 + 1);
        assert_eq!(metrics.deletes.get(), 1);
        // Frozen engines leave the live gauges untouched.
        let frozen_metrics = Metrics::new();
        frozen.publish_live(&frozen_metrics);
        assert_eq!(frozen_metrics.segments.get(), 0);
    }

    #[test]
    fn frozen_engines_join_and_live_engines_refuse() {
        let ds = dataset();
        let frozen = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        let reference = simsearch_core::join::nested_loop_join(&ds, 2);
        for algo in [JoinAlgo::Pass, JoinAlgo::MinJoin] {
            let (pairs, stats) = frozen.join(2, algo).expect("frozen engines join");
            assert_eq!(pairs, reference, "{algo:?}");
            assert_eq!(stats.pairs_emitted, pairs.len() as u64);
        }
        let live = ServedEngine::build(&ds, EngineKind::Live { memtable_cap: 4 });
        assert!(live.join(1, JoinAlgo::Pass).is_none());
    }

    #[test]
    fn sharded_engine_agrees_and_publishes_per_shard_metrics() {
        let ds = dataset();
        let reference = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        let sharded = ServedEngine::build(
            &ds,
            EngineKind::Sharded {
                shards: 3,
                by: simsearch_core::ShardBy::Len,
                threads: 1,
            },
        );
        for q in ["Berlin", "Urm", ""] {
            for k in 0..3 {
                let (want, _) = reference.search(q.as_bytes(), k);
                let (got, _) = sharded.search(q.as_bytes(), k);
                assert_eq!(got, want, "q={q} k={k}");
            }
        }
        let metrics = Metrics::new();
        sharded.publish_plan(&metrics);
        let decisions = metrics.plan_decisions.snapshot();
        assert!(
            decisions.iter().any(|(n, _)| n.starts_with("s0.")),
            "per-shard plan_decisions published: {decisions:?}"
        );
        let matches = metrics.shard_matches.snapshot();
        assert_eq!(matches.len(), 3);
        assert!(matches.iter().all(|(n, _)| n.starts_with('s')));
    }

    #[test]
    fn sharded_live_engine_mutates_and_publishes_per_shard_gauges() {
        let ds = dataset();
        let engine = ServedEngine::build(
            &ds,
            EngineKind::ShardedLive {
                shards: 4,
                by: simsearch_core::ShardBy::Hash,
                threads: 1,
                memtable_cap: 2,
            },
        );
        assert!(engine.is_live());
        assert!(engine.join(1, JoinAlgo::Pass).is_none(), "live refuses JOIN");
        // Seeded reads agree with the reference engine.
        let reference = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        for q in ["Berlin", "Urm", ""] {
            for k in 0..3 {
                let (want, _) = reference.search(q.as_bytes(), k);
                let (got, _) = engine.search(q.as_bytes(), k);
                assert_eq!(got, want, "q={q} k={k}");
            }
        }
        // Mutations route across shards from one global id space.
        let id = engine.insert("Bärlin".as_bytes()).unwrap();
        assert_eq!(id as usize, ds.len(), "ids continue after the seed");
        let id2 = engine.insert(b"Ulmen").unwrap();
        assert_eq!(id2, id + 1);
        assert_eq!(engine.delete(id), Some(true));
        assert_eq!(engine.delete(id), Some(false));
        let (got, _) = engine.search(b"Ulmen", 0);
        assert_eq!(got.ids(), vec![id2]);

        let metrics = Metrics::new();
        engine.publish_live(&metrics);
        assert_eq!(metrics.inserts.get(), ds.len() as u64 + 2);
        assert_eq!(metrics.deletes.get(), 1);
        let per_shard = metrics.live_shards.snapshot();
        assert_eq!(per_shard.len(), 4 * 3, "three gauges per shard");
        // Per-shard gauges sum to the aggregates.
        let sum = |suffix: &str| -> u64 {
            per_shard
                .iter()
                .filter(|(n, _)| n.ends_with(suffix))
                .map(|(_, c)| c)
                .sum()
        };
        assert_eq!(sum(".memtable_len"), metrics.memtable_len.get() as u64);
        assert_eq!(sum(".segments"), metrics.segments.get() as u64);
        assert_eq!(sum(".tombstones"), metrics.tombstones.get() as u64);
    }
}
