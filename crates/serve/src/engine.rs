//! The daemon-side engine wrapper: one prepared engine, shared by every
//! request for the server's whole lifetime.
//!
//! Two concerns separate this from using [`SearchEngine`] directly:
//! auxiliary state must be built once at startup (the whole point of a
//! long-lived server — `prepare()`d owned copies / sorted views are
//! reused across requests, where the batch CLI rebuilds them per
//! process), and the V7 row-stack kernel reports the DP cells it
//! computes, which feeds the metrics registry's `dp_cells` counter.

use simsearch_core::{search_top_k, search_top_k_with, EngineKind, SearchEngine};
use simsearch_data::{Dataset, Match, MatchSet};
use simsearch_scan::{SeqVariant, SequentialScan};

enum Inner<'a> {
    /// The V7 sorted-prefix scan, kept unwrapped so every answer also
    /// yields its DP-cell count (the PR 2 diagnostics).
    V7(SequentialScan<'a>),
    /// Any other engine, behind the uniform [`SearchEngine`] interface.
    /// Scan rungs arrive here through [`SearchEngine::from_scan`], so
    /// their prepared state is likewise built exactly once.
    Engine(SearchEngine<'a>),
}

/// The engine a running `simsearchd` answers with.
pub(crate) struct ServedEngine<'a> {
    inner: Inner<'a>,
    name: String,
    records: usize,
}

impl<'a> ServedEngine<'a> {
    /// Builds (and prepares) the engine once, at server startup.
    pub fn build(dataset: &'a Dataset, kind: EngineKind) -> Self {
        let name = kind.name();
        let records = dataset.len();
        let inner = match kind {
            EngineKind::Scan(SeqVariant::V7SortedPrefix) => {
                let scan = SequentialScan::new(dataset);
                scan.prepare(SeqVariant::V7SortedPrefix);
                Inner::V7(scan)
            }
            EngineKind::Scan(variant) => {
                let scan = SequentialScan::new(dataset);
                scan.prepare(variant);
                Inner::Engine(SearchEngine::from_scan(scan, variant))
            }
            other => Inner::Engine(SearchEngine::build(dataset, other)),
        };
        Self {
            inner,
            name,
            records,
        }
    }

    /// Engine label for `STATS`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dataset size for `STATS`.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Threshold search: all records within `k`, plus the DP cells the
    /// kernel reports (0 for kernels without cell counting).
    pub fn search(&self, query: &[u8], k: u32) -> (MatchSet, u64) {
        match &self.inner {
            Inner::V7(scan) => scan.v7_search(query, k),
            Inner::Engine(engine) => (engine.search(query, k), 0),
        }
    }

    /// Top-k search by iterative deepening, accumulating DP cells over
    /// the deepening probes.
    pub fn topk(&self, query: &[u8], count: usize, max_radius: u32) -> (Vec<Match>, u64) {
        match &self.inner {
            Inner::V7(scan) => {
                let mut cells = 0u64;
                let matches = search_top_k_with(
                    |radius| {
                        let (m, c) = scan.v7_search(query, radius);
                        cells += c;
                        m
                    },
                    count,
                    max_radius,
                );
                (matches, cells)
            }
            Inner::Engine(engine) => (search_top_k(engine, query, count, max_radius), 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_core::IdxVariant;

    fn dataset() -> Dataset {
        Dataset::from_records(["Berlin", "Bern", "Bonn", "Ulm", "Berlingen", ""])
    }

    #[test]
    fn served_engines_agree_with_the_reference() {
        let ds = dataset();
        let reference = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        let kinds = [
            EngineKind::Scan(SeqVariant::V4Flat),
            EngineKind::Scan(SeqVariant::V7SortedPrefix),
            EngineKind::Index(IdxVariant::I2Compressed),
        ];
        for kind in kinds {
            let engine = ServedEngine::build(&ds, kind);
            for q in ["Berlin", "Urm", ""] {
                for k in 0..3 {
                    let (want, _) = reference.search(q.as_bytes(), k);
                    let (got, _) = engine.search(q.as_bytes(), k);
                    assert_eq!(got, want, "{} q={q} k={k}", engine.name());
                }
                let (want_top, _) = reference.topk(q.as_bytes(), 3, 16);
                let (got_top, _) = engine.topk(q.as_bytes(), 3, 16);
                assert_eq!(got_top, want_top, "{} topk q={q}", engine.name());
            }
        }
    }

    #[test]
    fn v7_reports_dp_cells() {
        let ds = dataset();
        let engine = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V7SortedPrefix));
        let (_, cells) = engine.search(b"Berlin", 2);
        assert!(cells > 0, "the V7 kernel counts its DP cells");
        let (_, flat_cells) =
            ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V4Flat)).search(b"Berlin", 2);
        assert_eq!(flat_cells, 0, "uncounted kernels report zero");
    }
}
