//! The `simsearchd` wire protocol: newline-delimited frames over a
//! byte stream.
//!
//! Grammar (one frame per line, LF-terminated; bytes, not UTF-8):
//!
//! ```text
//! request  = "QUERY" SP integer SP text      ; all records within k
//!          / "TOPK"  SP integer SP text      ; the count nearest records
//!          / "INSERT" SP text                ; append a record (live mode)
//!          / "DELETE" SP integer             ; tombstone a record (live mode)
//!          / "STATS"                         ; metrics snapshot (JSON)
//!          / "HEALTH"                        ; liveness probe
//!          / "SHUTDOWN"                      ; drain and exit
//! text     = *OCTET                          ; no LF, no CR
//!
//! response = "OK" SP payload
//!          / "BUSY"                          ; admission queue full
//!          / "TIMEOUT"                       ; per-request deadline hit
//!          / "ERR" SP message
//! payload  = "healthy" / "bye" / matches / json
//!          / "id=" integer                   ; INSERT: the assigned record id
//!          / "deleted" / "absent"            ; DELETE: whether the id was live
//! matches  = integer [SP match *("," match)] ; count, then id:distance
//! match    = integer ":" integer
//! json     = "{" …single-line JSON… "}"
//! ```
//!
//! `INSERT`/`DELETE` are only *servable* when the daemon runs a live
//! engine (`--live`); a read-only daemon still parses them (the parser
//! is engine-agnostic) and answers `ERR`.
//!
//! Every parser here is total: malformed input yields a
//! [`ProtocolError`], never a panic (property-tested against arbitrary
//! byte soup), and `parse(encode(x)) == x` for every value (round-trip
//! property). Frames longer than [`MAX_LINE_BYTES`] are rejected before
//! any allocation proportional to their length.

use simsearch_data::{Match, MatchSet};

/// Upper bound on one frame, terminator excluded. Connections reject
/// longer lines (and close, since framing is lost beyond this point).
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// A client→server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `QUERY <k> <text>`: all records within edit distance `k`.
    Query {
        /// Distance threshold.
        k: u32,
        /// Query string (byte semantics, like the records).
        text: Vec<u8>,
    },
    /// `TOPK <count> <text>`: the `count` nearest records.
    TopK {
        /// How many nearest records to return.
        count: u32,
        /// Query string.
        text: Vec<u8>,
    },
    /// `INSERT <text>`: append a record to a live engine; the reply
    /// carries the assigned global id.
    Insert {
        /// The record to append (byte semantics; may be empty, may
        /// contain spaces).
        text: Vec<u8>,
    },
    /// `DELETE <id>`: tombstone record `id` on a live engine.
    Delete {
        /// The global record id to delete.
        id: u32,
    },
    /// `STATS`: one-line JSON metrics snapshot.
    Stats,
    /// `HEALTH`: liveness probe.
    Health,
    /// `SHUTDOWN`: stop accepting, drain queued requests, exit.
    Shutdown,
}

/// A server→client frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `OK <n> id:d,id:d,…`: the matches of a `QUERY`/`TOPK`.
    Matches(Vec<Match>),
    /// `BUSY`: the bounded admission queue is full — retry later.
    Busy,
    /// `TIMEOUT`: the request waited past its deadline and was dropped.
    Timeout,
    /// `OK healthy`: reply to `HEALTH`.
    Healthy,
    /// `OK id=<n>`: reply to `INSERT` — the assigned record id.
    Inserted(u32),
    /// `OK deleted` / `OK absent`: reply to `DELETE` — whether the id
    /// named a live record.
    Deleted {
        /// `true` when the id was live (and is now tombstoned).
        existed: bool,
    },
    /// `OK {…}`: reply to `STATS` (single-line JSON).
    Stats(String),
    /// `OK bye`: reply to `SHUTDOWN`; the server drains and exits.
    Bye,
    /// `ERR <message>`: the request was malformed or unservable.
    Error(String),
}

/// Why a frame was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame is empty.
    Empty,
    /// The frame exceeds [`MAX_LINE_BYTES`].
    TooLong,
    /// The first word is not a known verb.
    UnknownVerb(String),
    /// A numeric field did not parse as the expected integer type.
    BadInteger(String),
    /// The verb requires `<int> <text>` fields that are missing.
    MissingFields(&'static str),
    /// The verb requires one argument that is missing.
    MissingArg(&'static str, &'static str),
    /// The frame contains a CR or LF where none is allowed.
    BadByte,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Empty => write!(f, "empty frame"),
            ProtocolError::TooLong => {
                write!(f, "frame exceeds {MAX_LINE_BYTES} bytes")
            }
            ProtocolError::UnknownVerb(v) => write!(
                f,
                "unknown verb '{v}' (expected QUERY, TOPK, INSERT, DELETE, STATS, HEALTH, SHUTDOWN)"
            ),
            ProtocolError::BadInteger(s) => write!(f, "bad integer '{s}'"),
            ProtocolError::MissingFields(verb) => {
                write!(f, "{verb} requires '<integer> <text>'")
            }
            ProtocolError::MissingArg(verb, expected) => {
                write!(f, "{verb} requires '{expected}'")
            }
            ProtocolError::BadByte => write!(f, "frame contains CR/LF"),
        }
    }
}

impl std::error::Error for ProtocolError {}

fn check_frame(line: &[u8]) -> Result<(), ProtocolError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ProtocolError::TooLong);
    }
    if line.is_empty() {
        return Err(ProtocolError::Empty);
    }
    if line.iter().any(|&b| b == b'\n' || b == b'\r') {
        return Err(ProtocolError::BadByte);
    }
    Ok(())
}

/// Splits `VERB <int> <text>` after the verb: the integer word and the
/// raw remainder (which may be empty and may contain spaces).
fn int_and_text<'a>(
    rest: &'a [u8],
    verb: &'static str,
) -> Result<(u32, &'a [u8]), ProtocolError> {
    let sep = rest
        .iter()
        .position(|&b| b == b' ')
        .ok_or(ProtocolError::MissingFields(verb))?;
    let (num, text) = rest.split_at(sep);
    let num = std::str::from_utf8(num)
        .map_err(|_| ProtocolError::BadInteger(String::from_utf8_lossy(num).into_owned()))?;
    let value: u32 = num
        .parse()
        .map_err(|_| ProtocolError::BadInteger(num.to_string()))?;
    Ok((value, &text[1..]))
}

/// Parses one request frame (line terminator already stripped).
pub fn parse_request(line: &[u8]) -> Result<Request, ProtocolError> {
    check_frame(line)?;
    match line {
        b"STATS" => return Ok(Request::Stats),
        b"HEALTH" => return Ok(Request::Health),
        b"SHUTDOWN" => return Ok(Request::Shutdown),
        _ => {}
    }
    if let Some(rest) = line.strip_prefix(b"QUERY ") {
        let (k, text) = int_and_text(rest, "QUERY")?;
        return Ok(Request::Query {
            k,
            text: text.to_vec(),
        });
    }
    if let Some(rest) = line.strip_prefix(b"TOPK ") {
        let (count, text) = int_and_text(rest, "TOPK")?;
        return Ok(Request::TopK {
            count,
            text: text.to_vec(),
        });
    }
    if let Some(text) = line.strip_prefix(b"INSERT ") {
        // The whole remainder is the record — it may be empty and may
        // contain spaces, exactly like query text.
        return Ok(Request::Insert {
            text: text.to_vec(),
        });
    }
    if let Some(rest) = line.strip_prefix(b"DELETE ") {
        let id = std::str::from_utf8(rest)
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| ProtocolError::BadInteger(String::from_utf8_lossy(rest).into_owned()))?;
        return Ok(Request::Delete { id });
    }
    // A bare mutation verb is a known verb missing its argument — more
    // actionable than "unknown verb".
    match line {
        b"INSERT" => return Err(ProtocolError::MissingArg("INSERT", "<text>")),
        b"DELETE" => return Err(ProtocolError::MissingArg("DELETE", "<id>")),
        _ => {}
    }
    let verb = line.split(|&b| b == b' ').next().unwrap_or(line);
    Err(ProtocolError::UnknownVerb(
        String::from_utf8_lossy(verb).into_owned(),
    ))
}

/// Encodes a request as one frame, terminator excluded.
///
/// # Panics
/// Panics if the query text contains CR or LF — such a request is not
/// representable on the wire; validate user input before building one.
pub fn encode_request(request: &Request) -> Vec<u8> {
    let frame = |verb: &str, n: u32, text: &[u8]| {
        assert!(
            !text.iter().any(|&b| b == b'\n' || b == b'\r'),
            "query text contains CR/LF"
        );
        let mut out = format!("{verb} {n} ").into_bytes();
        out.extend_from_slice(text);
        out
    };
    match request {
        Request::Query { k, text } => frame("QUERY", *k, text),
        Request::TopK { count, text } => frame("TOPK", *count, text),
        Request::Insert { text } => {
            assert!(
                !text.iter().any(|&b| b == b'\n' || b == b'\r'),
                "record text contains CR/LF"
            );
            let mut out = b"INSERT ".to_vec();
            out.extend_from_slice(text);
            out
        }
        Request::Delete { id } => format!("DELETE {id}").into_bytes(),
        Request::Stats => b"STATS".to_vec(),
        Request::Health => b"HEALTH".to_vec(),
        Request::Shutdown => b"SHUTDOWN".to_vec(),
    }
}

/// Encodes a response as one frame, terminator excluded.
pub fn encode_response(response: &Response) -> Vec<u8> {
    match response {
        Response::Matches(matches) => {
            let mut out = format!("OK {}", matches.len());
            for (i, m) in matches.iter().enumerate() {
                out.push(if i == 0 { ' ' } else { ',' });
                out.push_str(&format!("{}:{}", m.id, m.distance));
            }
            out.into_bytes()
        }
        Response::Busy => b"BUSY".to_vec(),
        Response::Timeout => b"TIMEOUT".to_vec(),
        Response::Healthy => b"OK healthy".to_vec(),
        Response::Inserted(id) => format!("OK id={id}").into_bytes(),
        Response::Deleted { existed: true } => b"OK deleted".to_vec(),
        Response::Deleted { existed: false } => b"OK absent".to_vec(),
        Response::Stats(json) => format!("OK {json}").into_bytes(),
        Response::Bye => b"OK bye".to_vec(),
        Response::Error(msg) => {
            // The message must stay one frame: strip the only bytes that
            // would break framing.
            let clean: String = msg.chars().filter(|c| *c != '\n' && *c != '\r').collect();
            format!("ERR {clean}").into_bytes()
        }
    }
}

/// Parses one response frame (line terminator already stripped).
pub fn parse_response(line: &[u8]) -> Result<Response, ProtocolError> {
    check_frame(line)?;
    match line {
        b"BUSY" => return Ok(Response::Busy),
        b"TIMEOUT" => return Ok(Response::Timeout),
        b"OK healthy" => return Ok(Response::Healthy),
        b"OK bye" => return Ok(Response::Bye),
        b"OK deleted" => return Ok(Response::Deleted { existed: true }),
        b"OK absent" => return Ok(Response::Deleted { existed: false }),
        _ => {}
    }
    if let Some(msg) = line.strip_prefix(b"ERR ") {
        return Ok(Response::Error(String::from_utf8_lossy(msg).into_owned()));
    }
    if let Some(payload) = line.strip_prefix(b"OK ") {
        if let Some(id) = payload.strip_prefix(b"id=") {
            let id = std::str::from_utf8(id)
                .ok()
                .and_then(|s| s.parse::<u32>().ok())
                .ok_or_else(|| {
                    ProtocolError::BadInteger(String::from_utf8_lossy(id).into_owned())
                })?;
            return Ok(Response::Inserted(id));
        }
        if payload.first() == Some(&b'{') {
            let json = std::str::from_utf8(payload)
                .map_err(|_| ProtocolError::BadInteger("non-UTF-8 JSON".into()))?;
            return Ok(Response::Stats(json.to_string()));
        }
        return parse_matches(payload);
    }
    let verb = line.split(|&b| b == b' ').next().unwrap_or(line);
    Err(ProtocolError::UnknownVerb(
        String::from_utf8_lossy(verb).into_owned(),
    ))
}

fn parse_matches(payload: &[u8]) -> Result<Response, ProtocolError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ProtocolError::BadInteger("non-UTF-8 match list".into()))?;
    let (count_str, list) = match text.split_once(' ') {
        Some((c, l)) => (c, Some(l)),
        None => (text, None),
    };
    let count: usize = count_str
        .parse()
        .map_err(|_| ProtocolError::BadInteger(count_str.to_string()))?;
    let mut matches = Vec::new();
    if let Some(list) = list {
        for item in list.split(',') {
            let (id, d) = item
                .split_once(':')
                .ok_or_else(|| ProtocolError::BadInteger(item.to_string()))?;
            let id: u32 = id
                .parse()
                .map_err(|_| ProtocolError::BadInteger(id.to_string()))?;
            let d: u32 = d
                .parse()
                .map_err(|_| ProtocolError::BadInteger(d.to_string()))?;
            matches.push(Match::new(id, d));
        }
    }
    if matches.len() != count {
        return Err(ProtocolError::BadInteger(format!(
            "count {count} != {} matches",
            matches.len()
        )));
    }
    Ok(Response::Matches(matches))
}

/// Encodes a [`MatchSet`] as the canonical `OK …` reply.
pub fn matches_response(matches: &MatchSet) -> Response {
    Response::Matches(matches.iter().copied().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let cases = [
            Request::Query {
                k: 2,
                text: b"Berlin".to_vec(),
            },
            Request::Query {
                k: 0,
                text: Vec::new(),
            },
            Request::Query {
                k: 4_000_000,
                text: b"New York City".to_vec(), // spaces survive
            },
            Request::TopK {
                count: 10,
                text: b"ACGT".to_vec(),
            },
            Request::Insert {
                text: b"New York City".to_vec(), // spaces survive
            },
            Request::Insert { text: Vec::new() }, // empty record is legal
            Request::Delete { id: 0 },
            Request::Delete { id: u32::MAX },
            Request::Stats,
            Request::Health,
            Request::Shutdown,
        ];
        for r in cases {
            let encoded = encode_request(&r);
            assert_eq!(parse_request(&encoded), Ok(r.clone()), "{r:?}");
        }
    }

    #[test]
    fn response_round_trips() {
        let cases = [
            Response::Matches(vec![]),
            Response::Matches(vec![Match::new(3, 1), Match::new(17, 0)]),
            Response::Busy,
            Response::Timeout,
            Response::Healthy,
            Response::Bye,
            Response::Inserted(0),
            Response::Inserted(u32::MAX),
            Response::Deleted { existed: true },
            Response::Deleted { existed: false },
            Response::Stats("{\"schema\": \"simsearch-bench-v2\"}".into()),
            Response::Error("bad integer 'x'".into()),
        ];
        for r in cases {
            let encoded = encode_response(&r);
            assert_eq!(parse_response(&encoded), Ok(r.clone()), "{r:?}");
        }
    }

    #[test]
    fn malformed_requests_are_rejected_not_panicked() {
        let bad: &[&[u8]] = &[
            b"",
            b"QUERY",
            b"QUERY 2",        // no space after k: not self-delimiting
            b"QUERY x Berlin", // non-numeric k
            b"QUERY -1 a",
            b"QUERY 99999999999999999999 a", // u32 overflow
            b"query 2 a",                    // verbs are case-sensitive
            b"FROBNICATE",
            b"STATS now",
            b"\xff\xfe\x00",
            b"QUERY 2 a\rb",
            b"INSERT",                       // bare mutation verbs
            b"DELETE",
            b"DELETE x",                     // non-numeric id
            b"DELETE -1",
            b"DELETE 99999999999999999999",  // u32 overflow
            b"DELETE 1 2",                   // trailing junk
            b"insert a",
        ];
        for frame in bad {
            assert!(
                parse_request(frame).is_err(),
                "{:?} should be rejected",
                String::from_utf8_lossy(frame)
            );
        }
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let long = vec![b'A'; MAX_LINE_BYTES + 1];
        assert_eq!(parse_request(&long), Err(ProtocolError::TooLong));
        let mut just_fits = b"QUERY 1 ".to_vec();
        just_fits.resize(MAX_LINE_BYTES, b'a');
        assert!(parse_request(&just_fits).is_ok());
    }

    #[test]
    fn match_list_count_must_agree() {
        assert!(parse_response(b"OK 2 1:0").is_err());
        assert!(parse_response(b"OK 0").is_ok());
        assert!(parse_response(b"OK 1 5:2").is_ok());
    }

    #[test]
    fn error_display_is_actionable() {
        let err = parse_request(b"NOPE").unwrap_err();
        assert!(err.to_string().contains("NOPE"));
        assert!(err.to_string().contains("QUERY"));
        assert!(err.to_string().contains("INSERT"));
        let err = parse_request(b"INSERT").unwrap_err();
        assert_eq!(err, ProtocolError::MissingArg("INSERT", "<text>"));
        assert!(err.to_string().contains("<text>"));
        let err = parse_request(b"DELETE").unwrap_err();
        assert_eq!(err, ProtocolError::MissingArg("DELETE", "<id>"));
    }

    #[test]
    fn insert_id_replies_parse_strictly() {
        assert_eq!(parse_response(b"OK id=7"), Ok(Response::Inserted(7)));
        assert!(parse_response(b"OK id=").is_err());
        assert!(parse_response(b"OK id=x").is_err());
        assert!(parse_response(b"OK id=-1").is_err());
        assert!(parse_response(b"OK id=99999999999999999999").is_err());
    }
}
