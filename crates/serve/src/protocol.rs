//! The `simsearchd` wire protocol: newline-delimited frames over a
//! byte stream.
//!
//! Grammar (one frame per line, LF-terminated; bytes, not UTF-8):
//!
//! ```text
//! request  = "QUERY" SP integer SP text      ; all records within k
//!          / "TOPK"  SP integer SP text      ; the count nearest records
//!          / "JOIN" SP integer [SP algo]     ; self-join, stream all pairs
//!          / "INSERT" SP text                ; append a record (live mode)
//!          / "DELETE" SP integer             ; tombstone a record (live mode)
//!          / "STATS"                         ; metrics snapshot (JSON)
//!          / "HEALTH"                        ; liveness probe
//!          / "SHUTDOWN"                      ; drain and exit
//! text     = *OCTET                          ; no LF, no CR
//! algo     = "pass" / "minjoin"              ; default "pass"
//!
//! response = "OK" SP payload
//!          / "BUSY"                          ; admission queue full
//!          / "TIMEOUT"                       ; per-request deadline hit
//!          / "ERR" SP message
//! payload  = "healthy" / "bye" / matches / json
//!          / "id=" integer                   ; INSERT: the assigned record id
//!          / "deleted" / "absent"            ; DELETE: whether the id was live
//!          / "join" SP integer               ; JOIN stream header: total pairs
//!          / "pairs" SP pairlist             ; JOIN stream chunk
//! matches  = integer [SP match *("," match)] ; count, then id:distance
//! match    = integer ":" integer
//! pairlist = integer [SP pair *("," pair)]   ; count, then left:right:distance
//! pair     = integer ":" integer ":" integer
//! ```
//!
//! `JOIN` is the one verb whose reply spans several frames: a header
//! `OK join <total>` followed by `OK pairs …` chunks (each under
//! [`MAX_LINE_BYTES`]) until `total` pairs have been streamed — there
//! is no trailer, the client counts. A non-header first frame (`BUSY`,
//! `TIMEOUT`, `ERR`) terminates the exchange as usual.
//!
//! `INSERT`/`DELETE` are only *servable* when the daemon runs a live
//! engine (`--live`); a read-only daemon still parses them (the parser
//! is engine-agnostic) and answers `ERR`.
//!
//! Every parser here is total: malformed input yields a
//! [`ProtocolError`], never a panic (property-tested against arbitrary
//! byte soup), and `parse(encode(x)) == x` for every value (round-trip
//! property). Frames longer than [`MAX_LINE_BYTES`] are rejected before
//! any allocation proportional to their length.

use simsearch_core::JoinPair;
use simsearch_data::{Match, MatchSet};

/// Upper bound on one frame, terminator excluded. Connections reject
/// longer lines (and close, since framing is lost beyond this point).
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Pairs per `OK pairs` chunk frame: the worst-case triple is 33 bytes
/// (three 10-digit u32s plus separators), so 1,000 pairs stay well
/// under [`MAX_LINE_BYTES`].
pub const JOIN_CHUNK_PAIRS: usize = 1_000;

/// Which partition join serves a `JOIN` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinAlgo {
    /// Exact PASS-JOIN over the even-partition segment index (the
    /// default).
    #[default]
    Pass,
    /// MinJoin: content-defined partitions for long records, exact
    /// length-window fallback for short ones.
    MinJoin,
}

impl JoinAlgo {
    /// The wire token (`JOIN <k> <token>`).
    pub fn token(self) -> &'static str {
        match self {
            JoinAlgo::Pass => "pass",
            JoinAlgo::MinJoin => "minjoin",
        }
    }

    fn parse(token: &[u8]) -> Option<Self> {
        match token {
            b"pass" => Some(JoinAlgo::Pass),
            b"minjoin" => Some(JoinAlgo::MinJoin),
            _ => None,
        }
    }
}

/// A client→server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `QUERY <k> <text>`: all records within edit distance `k`.
    Query {
        /// Distance threshold.
        k: u32,
        /// Query string (byte semantics, like the records).
        text: Vec<u8>,
    },
    /// `TOPK <count> <text>`: the `count` nearest records.
    TopK {
        /// How many nearest records to return.
        count: u32,
        /// Query string.
        text: Vec<u8>,
    },
    /// `JOIN <k> [algo]`: every record pair within edit distance `k`,
    /// streamed as a header frame plus pair chunks.
    Join {
        /// Join distance threshold.
        k: u32,
        /// Partition algorithm serving the join.
        algo: JoinAlgo,
    },
    /// `INSERT <text>`: append a record to a live engine; the reply
    /// carries the assigned global id.
    Insert {
        /// The record to append (byte semantics; may be empty, may
        /// contain spaces).
        text: Vec<u8>,
    },
    /// `DELETE <id>`: tombstone record `id` on a live engine.
    Delete {
        /// The global record id to delete.
        id: u32,
    },
    /// `STATS`: one-line JSON metrics snapshot.
    Stats,
    /// `HEALTH`: liveness probe.
    Health,
    /// `SHUTDOWN`: stop accepting, drain queued requests, exit.
    Shutdown,
}

/// A server→client frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `OK <n> id:d,id:d,…`: the matches of a `QUERY`/`TOPK`.
    Matches(Vec<Match>),
    /// `BUSY`: the bounded admission queue is full — retry later.
    Busy,
    /// `TIMEOUT`: the request waited past its deadline and was dropped.
    Timeout,
    /// `OK healthy`: reply to `HEALTH`.
    Healthy,
    /// `OK id=<n>`: reply to `INSERT` — the assigned record id.
    Inserted(u32),
    /// `OK deleted` / `OK absent`: reply to `DELETE` — whether the id
    /// named a live record.
    Deleted {
        /// `true` when the id was live (and is now tombstoned).
        existed: bool,
    },
    /// `OK join <total>`: header of a `JOIN` reply stream — `total`
    /// pairs follow in `OK pairs` chunk frames.
    JoinHeader {
        /// How many pairs the stream carries in total.
        total: u64,
    },
    /// `OK pairs <n> l:r:d,…`: one chunk of a `JOIN` reply stream.
    JoinPairs(Vec<JoinPair>),
    /// `OK {…}`: reply to `STATS` (single-line JSON).
    Stats(String),
    /// `OK bye`: reply to `SHUTDOWN`; the server drains and exits.
    Bye,
    /// `ERR <message>`: the request was malformed or unservable.
    Error(String),
}

/// Why a frame was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame is empty.
    Empty,
    /// The frame exceeds [`MAX_LINE_BYTES`].
    TooLong,
    /// The first word is not a known verb.
    UnknownVerb(String),
    /// A numeric field did not parse as the expected integer type.
    BadInteger(String),
    /// The verb requires `<int> <text>` fields that are missing.
    MissingFields(&'static str),
    /// The verb requires one argument that is missing.
    MissingArg(&'static str, &'static str),
    /// The `JOIN` algorithm token is not recognized.
    UnknownAlgo(String),
    /// The frame contains a CR or LF where none is allowed.
    BadByte,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Empty => write!(f, "empty frame"),
            ProtocolError::TooLong => {
                write!(f, "frame exceeds {MAX_LINE_BYTES} bytes")
            }
            ProtocolError::UnknownVerb(v) => write!(
                f,
                "unknown verb '{v}' (expected QUERY, TOPK, JOIN, INSERT, DELETE, STATS, HEALTH, SHUTDOWN)"
            ),
            ProtocolError::BadInteger(s) => write!(f, "bad integer '{s}'"),
            ProtocolError::MissingFields(verb) => {
                write!(f, "{verb} requires '<integer> <text>'")
            }
            ProtocolError::MissingArg(verb, expected) => {
                write!(f, "{verb} requires '{expected}'")
            }
            ProtocolError::UnknownAlgo(a) => {
                write!(f, "unknown join algorithm '{a}' (expected pass or minjoin)")
            }
            ProtocolError::BadByte => write!(f, "frame contains CR/LF"),
        }
    }
}

impl std::error::Error for ProtocolError {}

fn check_frame(line: &[u8]) -> Result<(), ProtocolError> {
    if line.len() > MAX_LINE_BYTES {
        return Err(ProtocolError::TooLong);
    }
    if line.is_empty() {
        return Err(ProtocolError::Empty);
    }
    if line.iter().any(|&b| b == b'\n' || b == b'\r') {
        return Err(ProtocolError::BadByte);
    }
    Ok(())
}

/// Splits `VERB <int> <text>` after the verb: the integer word and the
/// raw remainder (which may be empty and may contain spaces).
fn int_and_text<'a>(
    rest: &'a [u8],
    verb: &'static str,
) -> Result<(u32, &'a [u8]), ProtocolError> {
    let sep = rest
        .iter()
        .position(|&b| b == b' ')
        .ok_or(ProtocolError::MissingFields(verb))?;
    let (num, text) = rest.split_at(sep);
    let num = std::str::from_utf8(num)
        .map_err(|_| ProtocolError::BadInteger(String::from_utf8_lossy(num).into_owned()))?;
    let value: u32 = num
        .parse()
        .map_err(|_| ProtocolError::BadInteger(num.to_string()))?;
    Ok((value, &text[1..]))
}

/// Parses one request frame (line terminator already stripped).
pub fn parse_request(line: &[u8]) -> Result<Request, ProtocolError> {
    check_frame(line)?;
    match line {
        b"STATS" => return Ok(Request::Stats),
        b"HEALTH" => return Ok(Request::Health),
        b"SHUTDOWN" => return Ok(Request::Shutdown),
        _ => {}
    }
    if let Some(rest) = line.strip_prefix(b"QUERY ") {
        let (k, text) = int_and_text(rest, "QUERY")?;
        return Ok(Request::Query {
            k,
            text: text.to_vec(),
        });
    }
    if let Some(rest) = line.strip_prefix(b"TOPK ") {
        let (count, text) = int_and_text(rest, "TOPK")?;
        return Ok(Request::TopK {
            count,
            text: text.to_vec(),
        });
    }
    if let Some(rest) = line.strip_prefix(b"JOIN ") {
        // `JOIN <k>` is self-delimiting (unlike QUERY, whose text may
        // be empty), so the algo token is genuinely optional.
        let (num, algo) = match rest.iter().position(|&b| b == b' ') {
            Some(sep) => {
                let (num, token) = rest.split_at(sep);
                let algo = JoinAlgo::parse(&token[1..]).ok_or_else(|| {
                    ProtocolError::UnknownAlgo(String::from_utf8_lossy(&token[1..]).into_owned())
                })?;
                (num, algo)
            }
            None => (rest, JoinAlgo::default()),
        };
        let k = std::str::from_utf8(num)
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| ProtocolError::BadInteger(String::from_utf8_lossy(num).into_owned()))?;
        return Ok(Request::Join { k, algo });
    }
    if let Some(text) = line.strip_prefix(b"INSERT ") {
        // The whole remainder is the record — it may be empty and may
        // contain spaces, exactly like query text.
        return Ok(Request::Insert {
            text: text.to_vec(),
        });
    }
    if let Some(rest) = line.strip_prefix(b"DELETE ") {
        let id = std::str::from_utf8(rest)
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| ProtocolError::BadInteger(String::from_utf8_lossy(rest).into_owned()))?;
        return Ok(Request::Delete { id });
    }
    // A bare mutation verb is a known verb missing its argument — more
    // actionable than "unknown verb".
    match line {
        b"INSERT" => return Err(ProtocolError::MissingArg("INSERT", "<text>")),
        b"DELETE" => return Err(ProtocolError::MissingArg("DELETE", "<id>")),
        b"JOIN" => return Err(ProtocolError::MissingArg("JOIN", "<k> [pass|minjoin]")),
        _ => {}
    }
    let verb = line.split(|&b| b == b' ').next().unwrap_or(line);
    Err(ProtocolError::UnknownVerb(
        String::from_utf8_lossy(verb).into_owned(),
    ))
}

/// Encodes a request as one frame, terminator excluded.
///
/// # Panics
/// Panics if the query text contains CR or LF — such a request is not
/// representable on the wire; validate user input before building one.
pub fn encode_request(request: &Request) -> Vec<u8> {
    let frame = |verb: &str, n: u32, text: &[u8]| {
        assert!(
            !text.iter().any(|&b| b == b'\n' || b == b'\r'),
            "query text contains CR/LF"
        );
        let mut out = format!("{verb} {n} ").into_bytes();
        out.extend_from_slice(text);
        out
    };
    match request {
        Request::Query { k, text } => frame("QUERY", *k, text),
        Request::TopK { count, text } => frame("TOPK", *count, text),
        Request::Insert { text } => {
            assert!(
                !text.iter().any(|&b| b == b'\n' || b == b'\r'),
                "record text contains CR/LF"
            );
            let mut out = b"INSERT ".to_vec();
            out.extend_from_slice(text);
            out
        }
        Request::Join { k, algo } => format!("JOIN {k} {}", algo.token()).into_bytes(),
        Request::Delete { id } => format!("DELETE {id}").into_bytes(),
        Request::Stats => b"STATS".to_vec(),
        Request::Health => b"HEALTH".to_vec(),
        Request::Shutdown => b"SHUTDOWN".to_vec(),
    }
}

/// Encodes a response as one frame, terminator excluded.
pub fn encode_response(response: &Response) -> Vec<u8> {
    match response {
        Response::Matches(matches) => {
            let mut out = format!("OK {}", matches.len());
            for (i, m) in matches.iter().enumerate() {
                out.push(if i == 0 { ' ' } else { ',' });
                out.push_str(&format!("{}:{}", m.id, m.distance));
            }
            out.into_bytes()
        }
        Response::Busy => b"BUSY".to_vec(),
        Response::Timeout => b"TIMEOUT".to_vec(),
        Response::Healthy => b"OK healthy".to_vec(),
        Response::Inserted(id) => format!("OK id={id}").into_bytes(),
        Response::Deleted { existed: true } => b"OK deleted".to_vec(),
        Response::Deleted { existed: false } => b"OK absent".to_vec(),
        Response::JoinHeader { total } => format!("OK join {total}").into_bytes(),
        Response::JoinPairs(pairs) => {
            let mut out = format!("OK pairs {}", pairs.len());
            for (i, p) in pairs.iter().enumerate() {
                out.push(if i == 0 { ' ' } else { ',' });
                out.push_str(&format!("{}:{}:{}", p.left, p.right, p.distance));
            }
            out.into_bytes()
        }
        Response::Stats(json) => format!("OK {json}").into_bytes(),
        Response::Bye => b"OK bye".to_vec(),
        Response::Error(msg) => {
            // The message must stay one frame: strip the only bytes that
            // would break framing.
            let clean: String = msg.chars().filter(|c| *c != '\n' && *c != '\r').collect();
            format!("ERR {clean}").into_bytes()
        }
    }
}

/// Parses one response frame (line terminator already stripped).
pub fn parse_response(line: &[u8]) -> Result<Response, ProtocolError> {
    check_frame(line)?;
    match line {
        b"BUSY" => return Ok(Response::Busy),
        b"TIMEOUT" => return Ok(Response::Timeout),
        b"OK healthy" => return Ok(Response::Healthy),
        b"OK bye" => return Ok(Response::Bye),
        b"OK deleted" => return Ok(Response::Deleted { existed: true }),
        b"OK absent" => return Ok(Response::Deleted { existed: false }),
        _ => {}
    }
    if let Some(msg) = line.strip_prefix(b"ERR ") {
        return Ok(Response::Error(String::from_utf8_lossy(msg).into_owned()));
    }
    if let Some(payload) = line.strip_prefix(b"OK ") {
        if let Some(id) = payload.strip_prefix(b"id=") {
            let id = std::str::from_utf8(id)
                .ok()
                .and_then(|s| s.parse::<u32>().ok())
                .ok_or_else(|| {
                    ProtocolError::BadInteger(String::from_utf8_lossy(id).into_owned())
                })?;
            return Ok(Response::Inserted(id));
        }
        // The join frames must be dispatched before the match-list
        // fallback, which would try (and fail) to split their triples.
        if let Some(total) = payload.strip_prefix(b"join ") {
            let total = std::str::from_utf8(total)
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| {
                    ProtocolError::BadInteger(String::from_utf8_lossy(total).into_owned())
                })?;
            return Ok(Response::JoinHeader { total });
        }
        if let Some(list) = payload.strip_prefix(b"pairs ") {
            return parse_pairs(list);
        }
        if payload.first() == Some(&b'{') {
            let json = std::str::from_utf8(payload)
                .map_err(|_| ProtocolError::BadInteger("non-UTF-8 JSON".into()))?;
            return Ok(Response::Stats(json.to_string()));
        }
        return parse_matches(payload);
    }
    let verb = line.split(|&b| b == b' ').next().unwrap_or(line);
    Err(ProtocolError::UnknownVerb(
        String::from_utf8_lossy(verb).into_owned(),
    ))
}

fn parse_matches(payload: &[u8]) -> Result<Response, ProtocolError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ProtocolError::BadInteger("non-UTF-8 match list".into()))?;
    let (count_str, list) = match text.split_once(' ') {
        Some((c, l)) => (c, Some(l)),
        None => (text, None),
    };
    let count: usize = count_str
        .parse()
        .map_err(|_| ProtocolError::BadInteger(count_str.to_string()))?;
    let mut matches = Vec::new();
    if let Some(list) = list {
        for item in list.split(',') {
            let (id, d) = item
                .split_once(':')
                .ok_or_else(|| ProtocolError::BadInteger(item.to_string()))?;
            let id: u32 = id
                .parse()
                .map_err(|_| ProtocolError::BadInteger(id.to_string()))?;
            let d: u32 = d
                .parse()
                .map_err(|_| ProtocolError::BadInteger(d.to_string()))?;
            matches.push(Match::new(id, d));
        }
    }
    if matches.len() != count {
        return Err(ProtocolError::BadInteger(format!(
            "count {count} != {} matches",
            matches.len()
        )));
    }
    Ok(Response::Matches(matches))
}

fn parse_pairs(payload: &[u8]) -> Result<Response, ProtocolError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| ProtocolError::BadInteger("non-UTF-8 pair list".into()))?;
    let (count_str, list) = match text.split_once(' ') {
        Some((c, l)) => (c, Some(l)),
        None => (text, None),
    };
    let count: usize = count_str
        .parse()
        .map_err(|_| ProtocolError::BadInteger(count_str.to_string()))?;
    let mut pairs = Vec::new();
    if let Some(list) = list {
        for item in list.split(',') {
            let mut fields = item.split(':');
            let (l, r, d) = match (fields.next(), fields.next(), fields.next(), fields.next()) {
                (Some(l), Some(r), Some(d), None) => (l, r, d),
                _ => return Err(ProtocolError::BadInteger(item.to_string())),
            };
            let parse = |s: &str| {
                s.parse::<u32>()
                    .map_err(|_| ProtocolError::BadInteger(s.to_string()))
            };
            pairs.push(JoinPair {
                left: parse(l)?,
                right: parse(r)?,
                distance: parse(d)?,
            });
        }
    }
    if pairs.len() != count {
        return Err(ProtocolError::BadInteger(format!(
            "count {count} != {} pairs",
            pairs.len()
        )));
    }
    Ok(Response::JoinPairs(pairs))
}

/// Encodes a [`MatchSet`] as the canonical `OK …` reply.
pub fn matches_response(matches: &MatchSet) -> Response {
    Response::Matches(matches.iter().copied().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let cases = [
            Request::Query {
                k: 2,
                text: b"Berlin".to_vec(),
            },
            Request::Query {
                k: 0,
                text: Vec::new(),
            },
            Request::Query {
                k: 4_000_000,
                text: b"New York City".to_vec(), // spaces survive
            },
            Request::TopK {
                count: 10,
                text: b"ACGT".to_vec(),
            },
            Request::Insert {
                text: b"New York City".to_vec(), // spaces survive
            },
            Request::Insert { text: Vec::new() }, // empty record is legal
            Request::Delete { id: 0 },
            Request::Delete { id: u32::MAX },
            Request::Join {
                k: 1,
                algo: JoinAlgo::Pass,
            },
            Request::Join {
                k: u32::MAX,
                algo: JoinAlgo::MinJoin,
            },
            Request::Stats,
            Request::Health,
            Request::Shutdown,
        ];
        for r in cases {
            let encoded = encode_request(&r);
            assert_eq!(parse_request(&encoded), Ok(r.clone()), "{r:?}");
        }
    }

    #[test]
    fn response_round_trips() {
        let cases = [
            Response::Matches(vec![]),
            Response::Matches(vec![Match::new(3, 1), Match::new(17, 0)]),
            Response::Busy,
            Response::Timeout,
            Response::Healthy,
            Response::Bye,
            Response::Inserted(0),
            Response::Inserted(u32::MAX),
            Response::Deleted { existed: true },
            Response::Deleted { existed: false },
            Response::Stats("{\"schema\": \"simsearch-bench-v2\"}".into()),
            Response::Error("bad integer 'x'".into()),
            Response::JoinHeader { total: 0 },
            Response::JoinHeader { total: u64::MAX },
            Response::JoinPairs(vec![]),
            Response::JoinPairs(vec![
                JoinPair {
                    left: 0,
                    right: 7,
                    distance: 1,
                },
                JoinPair {
                    left: u32::MAX - 1,
                    right: u32::MAX,
                    distance: 0,
                },
            ]),
        ];
        for r in cases {
            let encoded = encode_response(&r);
            assert_eq!(parse_response(&encoded), Ok(r.clone()), "{r:?}");
        }
    }

    #[test]
    fn malformed_requests_are_rejected_not_panicked() {
        let bad: &[&[u8]] = &[
            b"",
            b"QUERY",
            b"QUERY 2",        // no space after k: not self-delimiting
            b"QUERY x Berlin", // non-numeric k
            b"QUERY -1 a",
            b"QUERY 99999999999999999999 a", // u32 overflow
            b"query 2 a",                    // verbs are case-sensitive
            b"FROBNICATE",
            b"STATS now",
            b"\xff\xfe\x00",
            b"QUERY 2 a\rb",
            b"INSERT",                       // bare mutation verbs
            b"DELETE",
            b"DELETE x",                     // non-numeric id
            b"DELETE -1",
            b"DELETE 99999999999999999999",  // u32 overflow
            b"DELETE 1 2",                   // trailing junk
            b"insert a",
            b"JOIN",                         // bare verb
            b"JOIN x",                       // non-numeric k
            b"JOIN -1",
            b"JOIN 99999999999999999999",    // u32 overflow
            b"JOIN 1 quantum",               // unknown algorithm
            b"JOIN 1 pass extra",            // trailing junk
            b"JOIN 1 PASS",                  // tokens are case-sensitive
            b"join 1",
        ];
        for frame in bad {
            assert!(
                parse_request(frame).is_err(),
                "{:?} should be rejected",
                String::from_utf8_lossy(frame)
            );
        }
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let long = vec![b'A'; MAX_LINE_BYTES + 1];
        assert_eq!(parse_request(&long), Err(ProtocolError::TooLong));
        let mut just_fits = b"QUERY 1 ".to_vec();
        just_fits.resize(MAX_LINE_BYTES, b'a');
        assert!(parse_request(&just_fits).is_ok());
    }

    #[test]
    fn match_list_count_must_agree() {
        assert!(parse_response(b"OK 2 1:0").is_err());
        assert!(parse_response(b"OK 0").is_ok());
        assert!(parse_response(b"OK 1 5:2").is_ok());
    }

    #[test]
    fn join_requests_parse_with_and_without_algo() {
        assert_eq!(
            parse_request(b"JOIN 2"),
            Ok(Request::Join {
                k: 2,
                algo: JoinAlgo::Pass,
            })
        );
        assert_eq!(
            parse_request(b"JOIN 0 minjoin"),
            Ok(Request::Join {
                k: 0,
                algo: JoinAlgo::MinJoin,
            })
        );
        let err = parse_request(b"JOIN 1 quantum").unwrap_err();
        assert_eq!(err, ProtocolError::UnknownAlgo("quantum".into()));
        assert!(err.to_string().contains("minjoin"));
    }

    #[test]
    fn pair_list_count_and_shape_must_agree() {
        assert!(parse_response(b"OK pairs 2 1:2:0").is_err());
        assert!(parse_response(b"OK pairs 0").is_ok());
        assert!(parse_response(b"OK pairs 1 1:2:0").is_ok());
        assert!(parse_response(b"OK pairs 1 1:2").is_err()); // pair, not match
        assert!(parse_response(b"OK pairs 1 1:2:0:9").is_err());
        assert!(parse_response(b"OK pairs 1 1:x:0").is_err());
        assert!(parse_response(b"OK join x").is_err());
        assert!(parse_response(b"OK join").is_err()); // falls through to matches: bad count
    }

    #[test]
    fn error_display_is_actionable() {
        let err = parse_request(b"NOPE").unwrap_err();
        assert!(err.to_string().contains("NOPE"));
        assert!(err.to_string().contains("QUERY"));
        assert!(err.to_string().contains("INSERT"));
        let err = parse_request(b"INSERT").unwrap_err();
        assert_eq!(err, ProtocolError::MissingArg("INSERT", "<text>"));
        assert!(err.to_string().contains("<text>"));
        let err = parse_request(b"DELETE").unwrap_err();
        assert_eq!(err, ProtocolError::MissingArg("DELETE", "<id>"));
        let err = parse_request(b"NOPE").unwrap_err();
        assert!(err.to_string().contains("JOIN"));
        let err = parse_request(b"JOIN").unwrap_err();
        assert_eq!(err, ProtocolError::MissingArg("JOIN", "<k> [pass|minjoin]"));
    }

    #[test]
    fn insert_id_replies_parse_strictly() {
        assert_eq!(parse_response(b"OK id=7"), Ok(Response::Inserted(7)));
        assert!(parse_response(b"OK id=").is_err());
        assert!(parse_response(b"OK id=x").is_err());
        assert!(parse_response(b"OK id=-1").is_err());
        assert!(parse_response(b"OK id=99999999999999999999").is_err());
    }
}
