//! A minimal JSON validator (RFC 8259 grammar, no value tree).
//!
//! The CI gate asserts "`STATS` parses as JSON" on machines with no
//! Python or `jq`, and the client's `--check-stats-json` flag needs the
//! same check — so the workspace carries its own ~100-line validator
//! rather than an external parser, matching the zero-dependency policy.

/// Checks that `input` is exactly one valid JSON value (with optional
/// surrounding whitespace). Returns the byte offset and a message on
/// the first violation.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn err(pos: usize, what: &str) -> String {
    format!("invalid JSON at byte {pos}: {what}")
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(b, pos),
        Some(&c) => Err(err(*pos, &format!("unexpected byte 0x{c:02x}"))),
        None => Err(err(*pos, "unexpected end of input")),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, "bad literal"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':'"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(err(*pos, "bad \\u escape"));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
            }
            0x00..=0x1f => return Err(err(*pos, "raw control byte in string")),
            _ => *pos += 1,
        }
    }
    Err(err(*pos, "unterminated string"))
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        _ => return Err(err(*pos, "expected digit")),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(err(*pos, "expected fraction digit"));
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(err(*pos, "expected exponent digit"));
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "-12.5e+3",
            "\"a \\\"quoted\\\" string\\n\"",
            "{\"a\": [1, 2, {\"b\": null}], \"c\": true}",
            "  { \"x\" : 0 }  ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "{]",
            "{\"a\":}",
            "{\"a\": 1,}",
            "[1 2]",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"raw\ncontrol\"",
            "{} extra",
            "nul",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} should be rejected");
        }
    }
}
