//! The `simsearchd` metrics registry: atomic counters, gauges, and
//! log-linear histograms, snapshotted into the testkit's bench JSON
//! schema by `STATS`.
//!
//! Everything on the hot path is a relaxed atomic operation — one
//! `fetch_add` per counter bump, three per histogram observation — so
//! recording a metric never takes a lock and never blocks a worker.
//! Snapshots are taken while traffic continues; they are internally
//! *approximately* consistent (counters may be a few events apart),
//! which is the standard contract for serving metrics.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for counters mirroring a monotone source
    /// of truth elsewhere (the live engine's own compaction/insert
    /// counters), where publishing is an idempotent copy rather than an
    /// accumulation, exactly like [`PlanCounters::publish`].
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value (queue depth, in-flight requests).
#[derive(Debug, Default)]
pub struct Gauge(AtomicUsize);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: usize) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: each power of two is split into 16 linear
/// sub-buckets, bounding the relative quantile error at 1/16 ≈ 6.25%.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS; // 16
/// Values below `SUB` get exact single-value buckets; above, one bucket
/// per (exponent, sub-bucket) pair up to `u64::MAX`.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// A fixed-size log-linear histogram over `u64` values (latencies in
/// nanoseconds, batch sizes, queue depths — any non-negative quantity).
///
/// `observe` is three relaxed atomic RMWs; `quantile` walks at most
/// [`BUCKETS`] counters. Quantiles are upper bounds of the hit bucket,
/// so `quantile(q)` ≥ the true q-quantile and overshoots by at most one
/// sub-bucket width (6.25% relative, exact below 16).
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = ((v >> (exp - SUB_BITS)) - SUB as u64) as usize;
    SUB + ((exp - SUB_BITS) as usize) * SUB + sub
}

/// Largest value that maps to `index` (the reported representative).
fn bucket_upper(index: usize) -> u64 {
    if index < SUB {
        return index as u64;
    }
    let exp = SUB_BITS + ((index - SUB) / SUB) as u32;
    let sub = ((index - SUB) % SUB) as u64;
    let lower = (SUB as u64 + sub) << (exp - SUB_BITS);
    // Width-minus-one first: the top bucket's upper bound is u64::MAX
    // exactly, so `lower + width` would overflow.
    lower + ((1u64 << (exp - SUB_BITS)) - 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the boxed array from a vec.
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> = buckets
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("vec built with BUCKETS elements"));
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Largest recorded value (exact; 0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The q-quantile by nearest rank over bucket upper bounds
    /// (0 when empty). `quantile(0.0)` is the smallest occupied bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        // Counter updates racing the walk can leave `seen < rank`; the
        // max is the correct upper bound then.
        self.max()
    }
}

/// Per-backend query-routing counters for planner-driven engines.
///
/// The label set (backend names, in planner-candidate order) is fixed
/// at first publish and never changes afterwards, so the slots can be
/// `OnceLock`-initialised once and updated with plain relaxed stores:
/// the engine workers *overwrite* each slot with the engine's own
/// monotone counter value rather than accumulating deltas, which makes
/// publishing idempotent and race-free across workers (the counters
/// only ever grow, so any interleaving of stores leaves a value that
/// was true at some recent instant — the standard serving-metrics
/// contract).
#[derive(Default)]
pub struct PlanCounters {
    slots: OnceLock<Vec<(String, AtomicU64)>>,
}

impl PlanCounters {
    /// Publishes the engine's current `(backend, routed)` counters.
    /// The first call fixes the label set; later calls overwrite the
    /// matching slots by position (the engine reports a stable order).
    pub fn publish(&self, counts: &[(&str, u64)]) {
        let slots = self.slots.get_or_init(|| {
            counts
                .iter()
                .map(|(name, _)| (name.to_string(), AtomicU64::new(0)))
                .collect()
        });
        for ((_, slot), (_, value)) in slots.iter().zip(counts) {
            slot.store(*value, Ordering::Relaxed);
        }
    }

    /// Current `(backend, routed)` values (empty before first publish).
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.slots
            .get()
            .map(|slots| {
                slots
                    .iter()
                    .map(|(name, slot)| (name.clone(), slot.load(Ordering::Relaxed)))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// True before anything was published (fixed-backend engines).
    pub fn is_empty(&self) -> bool {
        self.slots.get().is_none()
    }
}

/// The registry: every metric `simsearchd` exposes through `STATS`.
///
/// Field groups mirror the request lifecycle: admission (accepted /
/// rejected / queue depth), scheduling (batches, batch size), execution
/// (latency, DP cells), and replies by outcome.
#[derive(Default)]
pub struct Metrics {
    /// Requests admitted to the queue (QUERY/TOPK only).
    pub requests_admitted: Counter,
    /// Requests rejected with `BUSY` (queue full).
    pub rejected_busy: Counter,
    /// Requests dropped with `TIMEOUT` (deadline exceeded in queue).
    pub dropped_timeout: Counter,
    /// Malformed or unservable frames answered with `ERR`.
    pub replied_error: Counter,
    /// Successful `OK` match replies.
    pub replied_ok: Counter,
    /// Micro-batches executed.
    pub batches: Counter,
    /// Queries per micro-batch.
    pub batch_size: Histogram,
    /// Admission-queue depth sampled at each scheduler pass.
    pub queue_depth: Gauge,
    /// End-to-end request latency (admission to reply), nanoseconds.
    pub latency_ns: Histogram,
    /// DP cells computed by the engine's kernel, when the kernel counts
    /// them (the V7 row-stack diagnostics; 0 for kernels that don't).
    pub dp_cells: Counter,
    /// Client connections accepted.
    pub connections: Counter,
    /// Queries routed per backend by the adaptive planner (empty for
    /// fixed-backend engines; published by the batch workers). Sharded
    /// engines add one `s{i}.{arm}` entry per shard and arm beside the
    /// cross-shard aggregates.
    pub plan_decisions: PlanCounters,
    /// Cumulative matches returned per shard (`s{i}` labels; empty for
    /// unsharded engines).
    pub shard_matches: PlanCounters,
    /// Per-shard LSM gauges for sharded-live engines
    /// (`s{i}.memtable_len` / `s{i}.segments` / `s{i}.tombstones`
    /// labels; empty otherwise). The entries sum to the aggregate
    /// `memtable_len` / `segments` / `tombstones` gauges.
    pub live_shards: PlanCounters,
    /// Live engines: current memtable length (0 for frozen engines).
    pub memtable_len: Gauge,
    /// Live engines: current immutable segment count.
    pub segments: Gauge,
    /// Live engines: tombstones not yet elided by compaction.
    pub tombstones: Gauge,
    /// Live engines: compaction steps completed (flushes + merges);
    /// mirrored from the engine's own counter via [`Counter::set`].
    pub compactions: Counter,
    /// Live engines: total `INSERT`s accepted (mirrored).
    pub inserts: Counter,
    /// Live engines: total `DELETE`s that hit a live record (mirrored).
    pub deletes: Counter,
    /// Replan ticks that swapped a fresh decision table into the
    /// engine (ticks that found too few observations don't count).
    pub replans: Counter,
    /// The engine's current plan epoch: 0 until the first swap, +1 per
    /// accepted swap; a restart that installs persisted calibration
    /// starts above 0. Mirrored from the engine via [`Counter::set`].
    pub plan_epoch: Counter,
    /// Cumulative measured wall-clock nanoseconds per routed arm, from
    /// the engine's observation grid (empty for fixed-backend engines).
    /// These are the pooled latency totals the replan tick derives its
    /// cost multipliers from, exposed so an operator can see *why* the
    /// table moved.
    pub arm_nanos: PlanCounters,
    /// `JOIN` requests served with a pair stream.
    pub joins: Counter,
    /// Join result pairs streamed to clients, cumulative.
    pub join_pairs_emitted: Counter,
    /// Join candidate pairs handed to the verification kernel,
    /// cumulative.
    pub join_candidates_verified: Counter,
    /// Segment-index shape of the most recent join: distinct
    /// (length, position, bytes) buckets.
    pub join_seg_buckets: Gauge,
    /// Segment-index shape of the most recent join: postings
    /// (one per record per segment).
    pub join_seg_postings: Gauge,
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders the `STATS` snapshot: single-line JSON in the testkit
    /// bench trajectory shape (`schema` = `simsearch-bench-v2`, a
    /// `workload` object, and histogram summaries under `results`),
    /// extended with a `counters` object for the non-histogram metrics.
    /// Readers of the bench schema can consume the subset unchanged.
    pub fn stats_json(&self, engine: &str, dataset: &str, records: usize, started: Instant) -> String {
        let hist = |name: &str, h: &Histogram| {
            format!(
                "{{\"name\": \"{name}\", \"iters\": 1, \"samples\": {}, \
                 \"min_ns\": {}, \"mean_ns\": {}, \"median_ns\": {}, \
                 \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                h.count(),
                h.quantile(0.0),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.quantile(0.99),
                h.max(),
            )
        };
        format!(
            "{{\"schema\": \"{}\", \"group\": \"simsearchd\", \
             \"workload\": {{\"dataset\": \"{}\", \"records\": {records}, \
             \"queries\": {}, \"thresholds\": \"engine={}\"}}, \
             \"results\": [{}, {}], \
             \"counters\": {{\"requests_admitted\": {}, \"rejected_busy\": {}, \
             \"dropped_timeout\": {}, \"replied_error\": {}, \"replied_ok\": {}, \
             \"batches\": {}, \"queue_depth\": {}, \"dp_cells\": {}, \
             \"connections\": {}, \"uptime_ms\": {}, \
             \"memtable_len\": {}, \"segments\": {}, \"tombstones\": {}, \
             \"compactions\": {}, \"inserts\": {}, \"deletes\": {}, \
             \"replans\": {}, \"plan_epoch\": {}, \
             \"joins\": {}, \"join_pairs_emitted\": {}, \
             \"join_candidates_verified\": {}, \"join_seg_buckets\": {}, \
             \"join_seg_postings\": {}, \
             \"plan_decisions\": {{{}}}, \"arm_nanos\": {{{}}}, \
             \"shard_matches\": {{{}}}, \
             \"live_shards\": {{{}}}}}}}",
            crate::STATS_SCHEMA,
            json_escape(dataset),
            self.requests_admitted.get(),
            json_escape(engine),
            hist("request_latency", &self.latency_ns),
            hist("batch_size", &self.batch_size),
            self.requests_admitted.get(),
            self.rejected_busy.get(),
            self.dropped_timeout.get(),
            self.replied_error.get(),
            self.replied_ok.get(),
            self.batches.get(),
            self.queue_depth.get(),
            self.dp_cells.get(),
            self.connections.get(),
            started.elapsed().as_millis(),
            self.memtable_len.get(),
            self.segments.get(),
            self.tombstones.get(),
            self.compactions.get(),
            self.inserts.get(),
            self.deletes.get(),
            self.replans.get(),
            self.plan_epoch.get(),
            self.joins.get(),
            self.join_pairs_emitted.get(),
            self.join_candidates_verified.get(),
            self.join_seg_buckets.get(),
            self.join_seg_postings.get(),
            self.plan_decisions
                .snapshot()
                .iter()
                .map(|(name, count)| format!("\"{}\": {count}", json_escape(name)))
                .collect::<Vec<_>>()
                .join(", "),
            self.arm_nanos
                .snapshot()
                .iter()
                .map(|(name, count)| format!("\"{}\": {count}", json_escape(name)))
                .collect::<Vec<_>>()
                .join(", "),
            self.shard_matches
                .snapshot()
                .iter()
                .map(|(name, count)| format!("\"{}\": {count}", json_escape(name)))
                .collect::<Vec<_>>()
                .join(", "),
            self.live_shards
                .snapshot()
                .iter()
                .map(|(name, count)| format!("\"{}\": {count}", json_escape(name)))
                .collect::<Vec<_>>()
                .join(", "),
        )
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_data::rng::Xoshiro256;

    #[test]
    fn bucket_mapping_is_monotone_and_total() {
        let mut last = 0usize;
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            100,
            1_000,
            65_535,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "v={v} idx={idx}");
            assert!(idx >= last, "bucket index must be monotone in v");
            assert!(bucket_upper(idx) >= v, "upper bound covers v={v}");
            last = idx;
        }
        // Exact small-value buckets.
        for v in 0..16u64 {
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn quantiles_match_sorted_vector_reference_within_bucket_error() {
        // Deterministic seed, as the satellite task prescribes.
        let mut rng = Xoshiro256::seed_from_u64(0x5EED_F00D);
        let hist = Histogram::new();
        let mut reference: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            // Log-uniform-ish spread: latencies from ns to seconds.
            let shift = rng.next_u64() % 30;
            let v = rng.next_u64() % (1u64 << (34 - shift));
            hist.observe(v);
            reference.push(v);
        }
        reference.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * reference.len() as f64).ceil() as usize)
                .clamp(1, reference.len());
            let truth = reference[rank - 1];
            let got = hist.quantile(q);
            // The histogram reports its bucket's upper bound: never
            // below the truth, at most one sub-bucket (6.25%) above.
            assert!(got >= truth, "q={q}: got {got} < truth {truth}");
            let bound = truth + truth / 16 + 1;
            assert!(got <= bound, "q={q}: got {got} > bound {bound}");
        }
        assert_eq!(hist.count(), 10_000);
        assert_eq!(hist.max(), *reference.last().unwrap());
        let mean_truth = reference.iter().sum::<u64>() / reference.len() as u64;
        assert_eq!(hist.mean(), mean_truth);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn counters_and_gauges() {
        let m = Metrics::new();
        m.requests_admitted.inc();
        m.requests_admitted.add(4);
        m.queue_depth.set(17);
        assert_eq!(m.requests_admitted.get(), 5);
        assert_eq!(m.queue_depth.get(), 17);
    }

    #[test]
    fn stats_json_is_valid_and_carries_histograms() {
        let m = Metrics::new();
        m.latency_ns.observe(1_000);
        m.latency_ns.observe(2_000);
        m.batch_size.observe(2);
        m.batches.inc();
        m.replied_ok.add(2);
        let json = m.stats_json("scan[x) Sorted-prefix scan]", "city", 1234, Instant::now());
        crate::json::validate(&json).unwrap();
        for needle in [
            "\"schema\": \"simsearch-bench-v2\"",
            "\"group\": \"simsearchd\"",
            "\"records\": 1234",
            "\"request_latency\"",
            "\"batch_size\"",
            "\"replied_ok\": 2",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(!json.contains('\n'), "STATS must stay one frame");
        assert!(
            json.contains("\"plan_decisions\": {}"),
            "fixed-backend engines report an empty plan_decisions object: {json}"
        );
    }

    #[test]
    fn stats_json_always_carries_live_ingest_keys() {
        // The keys are present (zeroed) even for frozen engines, so
        // dashboards and the CI smoke can grep unconditionally.
        let m = Metrics::new();
        let json = m.stats_json("scan[v7]", "city", 10, Instant::now());
        crate::json::validate(&json).unwrap();
        for needle in [
            "\"memtable_len\": 0",
            "\"segments\": 0",
            "\"tombstones\": 0",
            "\"compactions\": 0",
            "\"inserts\": 0",
            "\"deletes\": 0",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        m.memtable_len.set(5);
        m.segments.set(2);
        m.compactions.set(3);
        m.compactions.set(4); // set overwrites, idempotent publish
        m.inserts.set(17);
        let json = m.stats_json("live[lsm/cap=4]", "city", 10, Instant::now());
        crate::json::validate(&json).unwrap();
        assert!(json.contains("\"memtable_len\": 5"), "{json}");
        assert!(json.contains("\"segments\": 2"), "{json}");
        assert!(json.contains("\"compactions\": 4"), "{json}");
        assert!(json.contains("\"inserts\": 17"), "{json}");
    }

    #[test]
    fn stats_json_always_carries_join_keys() {
        // Present (zeroed) even when no JOIN ever ran, so the CI smoke
        // can grep unconditionally.
        let m = Metrics::new();
        let json = m.stats_json("scan[v7]", "city", 10, Instant::now());
        crate::json::validate(&json).unwrap();
        for needle in [
            "\"joins\": 0",
            "\"join_pairs_emitted\": 0",
            "\"join_candidates_verified\": 0",
            "\"join_seg_buckets\": 0",
            "\"join_seg_postings\": 0",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        m.joins.inc();
        m.join_pairs_emitted.add(42);
        m.join_candidates_verified.add(99);
        m.join_seg_buckets.set(7);
        m.join_seg_postings.set(16);
        let json = m.stats_json("scan[v7]", "city", 10, Instant::now());
        crate::json::validate(&json).unwrap();
        assert!(json.contains("\"joins\": 1"), "{json}");
        assert!(json.contains("\"join_pairs_emitted\": 42"), "{json}");
        assert!(json.contains("\"join_candidates_verified\": 99"), "{json}");
        assert!(json.contains("\"join_seg_buckets\": 7"), "{json}");
        assert!(json.contains("\"join_seg_postings\": 16"), "{json}");
    }

    #[test]
    fn stats_json_always_carries_replan_keys() {
        // Present (zeroed) even for engines that never replan, so the
        // CI smoke can grep unconditionally.
        let m = Metrics::new();
        let json = m.stats_json("scan[v7]", "city", 10, Instant::now());
        crate::json::validate(&json).unwrap();
        assert!(json.contains("\"replans\": 0"), "{json}");
        assert!(json.contains("\"plan_epoch\": 0"), "{json}");
        assert!(json.contains("\"arm_nanos\": {}"), "{json}");
        m.replans.add(3);
        m.plan_epoch.set(4); // mirrored: restart may start above replans
        m.arm_nanos.publish(&[("scan-flat", 12_345), ("radix", 678)]);
        let json = m.stats_json("auto[threads=1]", "city", 10, Instant::now());
        crate::json::validate(&json).unwrap();
        assert!(json.contains("\"replans\": 3"), "{json}");
        assert!(json.contains("\"plan_epoch\": 4"), "{json}");
        assert!(
            json.contains("\"arm_nanos\": {\"scan-flat\": 12345, \"radix\": 678}"),
            "{json}"
        );
    }

    #[test]
    fn plan_counters_publish_overwrites_and_snapshot_reads_back() {
        let counters = PlanCounters::default();
        assert!(counters.is_empty());
        assert!(counters.snapshot().is_empty());
        counters.publish(&[("scan-flat", 3), ("radix", 1)]);
        counters.publish(&[("scan-flat", 7), ("radix", 2)]);
        assert!(!counters.is_empty());
        assert_eq!(
            counters.snapshot(),
            vec![("scan-flat".to_string(), 7), ("radix".to_string(), 2)]
        );
    }

    #[test]
    fn stats_json_renders_published_plan_decisions() {
        let m = Metrics::new();
        m.plan_decisions.publish(&[("scan-flat", 5), ("qgram", 9)]);
        let json = m.stats_json("auto[threads=1]", "city", 10, Instant::now());
        crate::json::validate(&json).unwrap();
        assert!(
            json.contains("\"plan_decisions\": {\"scan-flat\": 5, \"qgram\": 9}"),
            "missing plan_decisions counters in {json}"
        );
    }

    #[test]
    fn stats_json_renders_per_shard_decisions_and_matches() {
        let m = Metrics::new();
        m.plan_decisions
            .publish(&[("scan-flat", 5), ("s0.scan-flat", 2), ("s1.scan-flat", 3)]);
        m.shard_matches.publish(&[("s0", 7), ("s1", 4)]);
        let json = m.stats_json("sharded[s=2/len/threads=1]", "city", 10, Instant::now());
        crate::json::validate(&json).unwrap();
        assert!(
            json.contains("\"s0.scan-flat\": 2") && json.contains("\"s1.scan-flat\": 3"),
            "missing per-shard plan_decisions in {json}"
        );
        assert!(
            json.contains("\"shard_matches\": {\"s0\": 7, \"s1\": 4}"),
            "missing shard_matches counters in {json}"
        );
    }

    #[test]
    fn stats_json_renders_per_shard_live_gauges() {
        let m = Metrics::new();
        m.live_shards.publish(&[
            ("s0.memtable_len", 3),
            ("s0.segments", 1),
            ("s0.tombstones", 0),
            ("s1.memtable_len", 2),
            ("s1.segments", 2),
            ("s1.tombstones", 1),
        ]);
        m.memtable_len.set(5);
        m.segments.set(3);
        m.tombstones.set(1);
        let json = m.stats_json("sharded-live[s=2/hash/cap=64/threads=1]", "city", 10, Instant::now());
        crate::json::validate(&json).unwrap();
        assert!(
            json.contains("\"live_shards\": {\"s0.memtable_len\": 3, ")
                && json.contains("\"s1.tombstones\": 1"),
            "missing per-shard live gauges in {json}"
        );
        // Frozen daemons render the object empty, still valid JSON.
        let frozen = Metrics::new();
        let json = frozen.stats_json("scan[v4]", "city", 10, Instant::now());
        crate::json::validate(&json).unwrap();
        assert!(json.contains("\"live_shards\": {}"), "{json}");
    }
}
