//! `simsearchd`: a std-only query service over the similarity-search
//! engines — wire protocol, micro-batch scheduler, admission control,
//! and a metrics registry.
//!
//! The offline crates answer "how fast is one scan over one workload";
//! this crate answers "what does the scan look like as a *service*":
//! a long-lived process that prepares its engine once, coalesces
//! concurrent queries into micro-batches, refuses load it cannot carry
//! (`BUSY`, never a hang), and reports latency histograms through
//! `STATS` in the same JSON shape the testkit bench harness emits.
//!
//! Start a server and talk to it:
//!
//! ```
//! use simsearch_serve::{spawn, Client, ServerConfig};
//! use simsearch_core::EngineKind;
//! use simsearch_scan::SeqVariant;
//! use simsearch_data::Dataset;
//!
//! let dataset = Dataset::from_records(["Berlin", "Bern", "Bonn"]);
//! let server = spawn(
//!     dataset,
//!     EngineKind::Scan(SeqVariant::V7SortedPrefix),
//!     ServerConfig::default(), // port 0: ephemeral
//! )
//! .unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! assert!(client.health().unwrap());
//! let reply = client.query(b"Berlin", 1).unwrap();
//! client.shutdown().unwrap();
//! server.join(); // every server thread is joined here
//! # drop(reply);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod client;
mod engine;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use batch::BatchConfig;
pub use client::Client;
pub use metrics::Metrics;
pub use protocol::JoinAlgo;
pub use server::{spawn, ServerConfig, ServerHandle};

/// Schema tag of the `STATS` JSON document — deliberately the testkit
/// bench schema, so trajectory readers consume server snapshots too.
pub const STATS_SCHEMA: &str = "simsearch-bench-v2";
