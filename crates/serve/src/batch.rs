//! The micro-batch scheduler: coalesces concurrent in-flight requests
//! and fans each batch out over the shared engine workers.
//!
//! The pipeline is three stages, each a bounded [`SubmissionQueue`]:
//!
//! ```text
//! conn handlers ──push──▶ admission ──▶ scheduler ──push_wait──▶ exec ──▶ workers
//!                 (BUSY on full)        (coalesce)   (blocks =         (per-chunk
//!                                                    backpressure)      execution)
//! ```
//!
//! The scheduler takes one request, then keeps pulling until either the
//! batch reaches [`BatchConfig::batch_size`] or [`BatchConfig::max_delay`]
//! has passed since the batch opened — so a lone request never waits
//! longer than `max_delay`, and a burst amortizes scheduling across a
//! full batch. Each batch is split into contiguous per-worker chunks via
//! [`chunk_ranges`], the same partitioner the offline executors use.
//!
//! Backpressure is intentional and explicit: the scheduler's push into
//! the exec queue *blocks* when every worker is busy, which stops it
//! draining the admission queue, which fills, which makes connection
//! handlers answer `BUSY` instead of queueing unboundedly. Nothing in
//! the chain waits forever on a full queue except the scheduler, and the
//! scheduler's wait is bounded by the workers finishing their chunks.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use simsearch_parallel::{chunk_ranges, SubmissionQueue};

use crate::engine::ServedEngine;
use crate::metrics::Metrics;
use crate::protocol::{matches_response, JoinAlgo, Response, JOIN_CHUNK_PAIRS};

/// Tuning for the scheduler and the engine workers.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Engine worker threads executing batch chunks.
    pub threads: usize,
    /// Flush a batch once it holds this many requests.
    pub batch_size: usize,
    /// Flush a partial batch once the oldest request has waited this
    /// long in the scheduler.
    pub max_delay: Duration,
    /// Admission queue capacity; a full queue answers `BUSY`.
    pub queue_capacity: usize,
    /// Per-request deadline, measured from admission. A request still
    /// unexecuted past its deadline is dropped with `TIMEOUT` instead of
    /// occupying a worker.
    pub deadline: Duration,
    /// Radius cap for `TOPK`'s iterative deepening.
    pub topk_max_radius: u32,
    /// Fault-injection: extra busy-wait per executed request. Zero in
    /// production; tests use it to hold workers busy deterministically
    /// so admission control (`BUSY`, `TIMEOUT`) can be exercised.
    pub exec_delay: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            batch_size: 64,
            max_delay: Duration::from_millis(1),
            queue_capacity: 1024,
            deadline: Duration::from_secs(10),
            topk_max_radius: 64,
            exec_delay: Duration::ZERO,
        }
    }
}

/// What an admitted request asks the engine to do.
pub(crate) enum Work {
    /// All records within distance `k`.
    Query {
        /// Distance threshold.
        k: u32,
    },
    /// The `count` nearest records.
    TopK {
        /// How many records.
        count: u32,
    },
    /// Append the request text as a record (live engines only; the
    /// pending's `text` carries the record bytes).
    Insert,
    /// Tombstone record `id` (live engines only).
    Delete {
        /// The global record id.
        id: u32,
    },
    /// Self-join the whole dataset within distance `k`, streaming the
    /// result pairs (frozen engines only).
    Join {
        /// Join distance threshold.
        k: u32,
        /// Which partition algorithm serves the join.
        algo: JoinAlgo,
    },
}

/// One admitted request waiting for execution.
pub(crate) struct Pending {
    pub work: Work,
    pub text: Vec<u8>,
    /// When the request entered the admission queue; deadlines and the
    /// latency histogram both measure from here.
    pub admitted: Instant,
    /// Where the worker delivers the reply. The receiving connection
    /// handler may have vanished (client hung up); delivery failure is
    /// silently fine.
    pub reply: mpsc::Sender<Response>,
}

/// A contiguous slice of one batch, executed by one worker.
pub(crate) struct Chunk {
    pub items: Vec<Pending>,
}

/// The scheduler loop: runs until the admission queue is closed *and*
/// drained, so a graceful shutdown answers everything already admitted.
pub(crate) fn scheduler_loop(
    admission: &SubmissionQueue<Pending>,
    exec: &SubmissionQueue<Chunk>,
    cfg: &BatchConfig,
    metrics: &Metrics,
) {
    while let Some(first) = admission.pop() {
        let flush_at = Instant::now() + cfg.max_delay;
        let mut batch = vec![first];
        while batch.len() < cfg.batch_size {
            match admission.pop_deadline(flush_at) {
                Some(pending) => batch.push(pending),
                None => break, // max_delay elapsed (or queue closed+dry)
            }
        }
        metrics.queue_depth.set(admission.len());
        metrics.batches.inc();
        metrics.batch_size.observe(batch.len() as u64);

        let workers = cfg.threads.max(1);
        let mut items = batch.into_iter();
        for range in chunk_ranges(items.len(), workers) {
            let chunk = Chunk {
                items: items.by_ref().take(range.len()).collect(),
            };
            // Blocking push: this is where backpressure originates.
            if let Err(refused) = exec.push_wait(chunk) {
                // Exec queue closed under us — only possible if shutdown
                // ordering is violated; answer rather than drop silently.
                for p in refused.into_inner().items {
                    let _ = p.reply.send(Response::Error("server shutting down".into()));
                }
            }
        }
    }
}

/// One engine worker: executes chunks until the exec queue is closed
/// and drained.
pub(crate) fn worker_loop(
    exec: &SubmissionQueue<Chunk>,
    engine: &ServedEngine<'_>,
    cfg: &BatchConfig,
    metrics: &Metrics,
) {
    while let Some(chunk) = exec.pop() {
        for pending in chunk.items {
            let response = execute_one(
                pending.work,
                &pending.text,
                pending.admitted,
                &pending.reply,
                engine,
                cfg,
                metrics,
            );
            metrics
                .latency_ns
                .observe(pending.admitted.elapsed().as_nanos() as u64);
            let _ = pending.reply.send(response);
        }
        // Planner-driven engines: refresh the per-backend routing
        // counters (and per-shard breakdowns) after each chunk so
        // `STATS` stays near-live.
        engine.publish_plan(metrics);
        // Live engines: compaction rides the worker threads — one step
        // between chunks keeps the memtable bounded without a dedicated
        // compaction thread, and the gate inside the engine serialises
        // concurrent workers. Then refresh the structural gauges.
        if engine.is_live() {
            engine.maybe_compact();
            engine.publish_live(metrics);
        }
    }
}

fn execute_one(
    work: Work,
    text: &[u8],
    admitted: Instant,
    reply: &mpsc::Sender<Response>,
    engine: &ServedEngine<'_>,
    cfg: &BatchConfig,
    metrics: &Metrics,
) -> Response {
    if admitted.elapsed() > cfg.deadline {
        metrics.dropped_timeout.inc();
        return Response::Timeout;
    }
    if !cfg.exec_delay.is_zero() {
        std::thread::sleep(cfg.exec_delay);
    }
    let read_only = || {
        Response::Error("engine is read-only (start simsearchd with --live)".into())
    };
    let (response, cells) = match work {
        Work::Query { k } => {
            let (matches, cells) = engine.search(text, k);
            (matches_response(&matches), cells)
        }
        Work::TopK { count } => {
            let (matches, cells) = engine.topk(text, count as usize, cfg.topk_max_radius);
            (Response::Matches(matches), cells)
        }
        Work::Insert => match engine.insert(text) {
            Some(id) => (Response::Inserted(id), 0),
            None => (read_only(), 0),
        },
        Work::Delete { id } => match engine.delete(id) {
            Some(existed) => (Response::Deleted { existed }, 0),
            None => (read_only(), 0),
        },
        Work::Join { k, algo } => match engine.join(k, algo) {
            Some((pairs, stats)) => {
                metrics.joins.inc();
                metrics.join_pairs_emitted.add(stats.pairs_emitted);
                metrics
                    .join_candidates_verified
                    .add(stats.candidates_verified);
                metrics.join_seg_buckets.set(stats.seg_buckets as usize);
                metrics.join_seg_postings.set(stats.seg_postings as usize);
                // Stream the reply: header plus all-but-the-last chunk
                // go straight out through the pending's channel (it is
                // unbounded, so this never blocks a worker); the final
                // frame returns through the normal path so latency and
                // ok/error accounting see exactly one response per
                // request.
                if pairs.is_empty() {
                    (Response::JoinHeader { total: 0 }, 0)
                } else {
                    let _ = reply.send(Response::JoinHeader {
                        total: pairs.len() as u64,
                    });
                    let mut chunks = pairs.chunks(JOIN_CHUNK_PAIRS).peekable();
                    let mut last = Vec::new();
                    while let Some(chunk) = chunks.next() {
                        if chunks.peek().is_some() {
                            let _ = reply.send(Response::JoinPairs(chunk.to_vec()));
                        } else {
                            last = chunk.to_vec();
                        }
                    }
                    (Response::JoinPairs(last), 0)
                }
            }
            None => (
                Response::Error(
                    "JOIN requires a frozen dataset (not servable on a --live engine)".into(),
                ),
                0,
            ),
        },
    };
    metrics.dp_cells.add(cells);
    match &response {
        Response::Error(_) => metrics.replied_error.inc(),
        _ => metrics.replied_ok.inc(),
    }
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_core::EngineKind;
    use simsearch_data::Dataset;
    use simsearch_scan::SeqVariant;

    fn harness(cfg: &BatchConfig, requests: Vec<Pending>) {
        let ds = Dataset::from_records(["Berlin", "Bern", "Bonn", "Ulm"]);
        let engine = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        let metrics = Metrics::new();
        let admission: SubmissionQueue<Pending> =
            SubmissionQueue::bounded(cfg.queue_capacity.max(requests.len()));
        let exec: SubmissionQueue<Chunk> = SubmissionQueue::bounded(cfg.threads.max(1) * 2);
        for p in requests {
            admission.push(p).map_err(|_| "admission full").unwrap();
        }
        admission.close();
        std::thread::scope(|s| {
            let sched = s.spawn(|| scheduler_loop(&admission, &exec, cfg, &metrics));
            let worker = s.spawn(|| worker_loop(&exec, &engine, cfg, &metrics));
            sched.join().unwrap();
            exec.close();
            worker.join().unwrap();
        });
    }

    fn pending(text: &str, k: u32) -> (Pending, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        (
            Pending {
                work: Work::Query { k },
                text: text.as_bytes().to_vec(),
                admitted: Instant::now(),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn drained_scheduler_answers_every_admitted_request() {
        let cfg = BatchConfig {
            threads: 2,
            batch_size: 3,
            ..BatchConfig::default()
        };
        let mut rxs = Vec::new();
        let mut reqs = Vec::new();
        for i in 0..10 {
            let (p, rx) = pending(if i % 2 == 0 { "Berlin" } else { "Ulm" }, 1);
            reqs.push(p);
            rxs.push(rx);
        }
        harness(&cfg, reqs);
        for rx in rxs {
            let resp = rx.recv_timeout(Duration::from_secs(5)).expect("a reply");
            assert!(matches!(resp, Response::Matches(_)), "{resp:?}");
        }
    }

    #[test]
    fn expired_requests_get_timeout_not_execution() {
        let cfg = BatchConfig {
            threads: 1,
            deadline: Duration::from_millis(1),
            ..BatchConfig::default()
        };
        let (mut p, rx) = pending("Berlin", 1);
        // Backdate the admission so the deadline has already passed.
        p.admitted = Instant::now() - Duration::from_millis(50);
        harness(&cfg, vec![p]);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            Response::Timeout
        );
    }

    #[test]
    fn join_work_streams_header_then_chunks() {
        let cfg = BatchConfig {
            threads: 1,
            ..BatchConfig::default()
        };
        let (tx, rx) = mpsc::channel();
        // k=2 catches Berlin~Bern and Bern~Bonn in the harness corpus.
        let p = Pending {
            work: Work::Join {
                k: 2,
                algo: JoinAlgo::Pass,
            },
            text: Vec::new(),
            admitted: Instant::now(),
            reply: tx,
        };
        harness(&cfg, vec![p]);
        let total = match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            Response::JoinHeader { total } => total,
            other => panic!("expected join header, got {other:?}"),
        };
        assert!(total >= 2, "total={total}");
        let mut streamed = 0u64;
        while streamed < total {
            match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                Response::JoinPairs(chunk) => streamed += chunk.len() as u64,
                other => panic!("expected pairs, got {other:?}"),
            }
        }
        assert_eq!(streamed, total);

        // An empty result is the header alone.
        let (tx, rx) = mpsc::channel();
        let p = Pending {
            work: Work::Join {
                k: 0,
                algo: JoinAlgo::MinJoin,
            },
            text: Vec::new(),
            admitted: Instant::now(),
            reply: tx,
        };
        harness(&cfg, vec![p]);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            Response::JoinHeader { total: 0 }
        );
        assert!(rx.recv_timeout(Duration::from_millis(200)).is_err());
    }

    #[test]
    fn batches_coalesce_up_to_batch_size() {
        let cfg = BatchConfig {
            threads: 1,
            batch_size: 4,
            max_delay: Duration::from_millis(20),
            ..BatchConfig::default()
        };
        let ds = Dataset::from_records(["Berlin", "Bern"]);
        let engine = ServedEngine::build(&ds, EngineKind::Scan(SeqVariant::V1Base));
        let metrics = Metrics::new();
        let admission: SubmissionQueue<Pending> = SubmissionQueue::bounded(64);
        let exec: SubmissionQueue<Chunk> = SubmissionQueue::bounded(2);
        let mut rxs = Vec::new();
        for _ in 0..8 {
            let (p, rx) = pending("Bern", 0);
            admission.push(p).map_err(|_| "full").unwrap();
            rxs.push(rx);
        }
        admission.close();
        std::thread::scope(|s| {
            let sched = s.spawn(|| scheduler_loop(&admission, &exec, &cfg, &metrics));
            let worker = s.spawn(|| worker_loop(&exec, &engine, &cfg, &metrics));
            sched.join().unwrap();
            exec.close();
            worker.join().unwrap();
        });
        for rx in rxs {
            assert!(rx.recv_timeout(Duration::from_secs(5)).is_ok());
        }
        // 8 pre-queued requests, batch_size 4: exactly two full batches.
        assert_eq!(metrics.batches.get(), 2);
        assert_eq!(metrics.batch_size.max(), 4);
        assert_eq!(metrics.batch_size.count(), 2);
        assert_eq!(metrics.replied_ok.get(), 8);
    }
}
