//! Property tests: every executor strategy is a deterministic,
//! order-preserving map over the job indices — the invariant the paper's
//! correctness methodology silently relies on when it parallelizes.

use proptest::prelude::*;
use simsearch_parallel::{run_adaptive_with_report, run_queries, Strategy};
use std::sync::atomic::{AtomicUsize, Ordering};

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::Sequential,
        Strategy::ThreadPerQuery,
        Strategy::FixedPool { threads: 2 },
        Strategy::FixedPool { threads: 5 },
        Strategy::WorkQueue { threads: 3 },
        Strategy::Adaptive { max_threads: 3 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn results_are_in_job_order(n in 0usize..80, salt in any::<u64>()) {
        let expected: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(salt)).collect();
        for s in strategies() {
            let got = run_queries(s, n, |i| (i as u64).wrapping_mul(salt));
            prop_assert_eq!(&got, &expected, "strategy {}", s.name());
        }
    }

    #[test]
    fn every_job_runs_exactly_once(n in 0usize..60) {
        for s in strategies() {
            let counter = AtomicUsize::new(0);
            let per_job: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            run_queries(s, n, |i| {
                counter.fetch_add(1, Ordering::Relaxed);
                per_job[i].fetch_add(1, Ordering::Relaxed);
            });
            prop_assert_eq!(counter.load(Ordering::Relaxed), n, "strategy {}", s.name());
            for (i, c) in per_job.iter().enumerate() {
                prop_assert_eq!(c.load(Ordering::Relaxed), 1, "job {} under {}", i, s.name());
            }
        }
    }

    #[test]
    fn adaptive_respects_worker_cap(n in 1usize..40, cap in 1usize..5) {
        let (out, report) = run_adaptive_with_report(cap, n, |i| i);
        prop_assert_eq!(out, (0..n).collect::<Vec<_>>());
        prop_assert!(report.max_active <= cap, "{report:?}");
    }
}
