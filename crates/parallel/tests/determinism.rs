//! Property tests: every executor strategy is a deterministic,
//! order-preserving map over the job indices — the invariant the paper's
//! correctness methodology silently relies on when it parallelizes.
//!
//! The pool here is the std-only rewrite (`std::thread` +
//! `std::sync::{Mutex, Condvar, mpsc}`), so these tests double as its
//! acceptance suite: same seed and job set at thread counts 1, 4 and 8
//! must produce identical, stably-ordered results.

use simsearch_parallel::{run_adaptive_with_report, run_queries, Strategy};
use simsearch_testkit::{check, gen, prop_assert, prop_assert_eq, Config, Xoshiro256};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The thread counts the determinism contract is stated over.
const THREADS: [usize; 3] = [1, 4, 8];

fn strategies() -> Vec<Strategy> {
    let mut out = vec![Strategy::Sequential, Strategy::ThreadPerQuery];
    for t in THREADS {
        out.push(Strategy::FixedPool { threads: t });
        out.push(Strategy::WorkQueue { threads: t });
        out.push(Strategy::Adaptive { max_threads: t });
    }
    out
}

#[test]
fn results_are_in_job_order() {
    check(
        "results_are_in_job_order",
        Config::cases(16).seed(0x00DE_7E12),
        &gen::zip(gen::usize_in(0..80), gen::u64_any()),
        |(n, salt)| {
            let expected: Vec<u64> = (0..*n as u64).map(|i| i.wrapping_mul(*salt)).collect();
            for s in strategies() {
                let got = run_queries(s, *n, |i| (i as u64).wrapping_mul(*salt));
                prop_assert_eq!(&got, &expected, "strategy {}", s.name());
            }
            Ok(())
        },
    );
}

#[test]
fn every_job_runs_exactly_once() {
    check(
        "every_job_runs_exactly_once",
        Config::cases(16).seed(0x00DE_7E12),
        &gen::usize_in(0..60),
        |&n| {
            for s in strategies() {
                let counter = AtomicUsize::new(0);
                let per_job: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                run_queries(s, n, |i| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    per_job[i].fetch_add(1, Ordering::Relaxed);
                });
                prop_assert_eq!(counter.load(Ordering::Relaxed), n, "strategy {}", s.name());
                for (i, c) in per_job.iter().enumerate() {
                    prop_assert_eq!(c.load(Ordering::Relaxed), 1, "job {} under {}", i, s.name());
                }
            }
            Ok(())
        },
    );
}

#[test]
fn adaptive_respects_worker_cap() {
    check(
        "adaptive_respects_worker_cap",
        Config::cases(16).seed(0x00DE_7E12),
        &gen::zip(gen::usize_in(1..40), gen::usize_in(1..5)),
        |(n, cap)| {
            let (out, report) = run_adaptive_with_report(*cap, *n, |i| i);
            prop_assert_eq!(out, (0..*n).collect::<Vec<_>>());
            prop_assert!(report.max_active <= *cap, "{report:?}");
            Ok(())
        },
    );
}

/// Seeded work under every thread count produces byte-identical,
/// stably-ordered result vectors — re-running the same seed at t=1, 4
/// and 8 cannot change a single element.
#[test]
fn seeded_runs_are_identical_across_thread_counts() {
    for seed in [1u64, 0xDEAD_BEEF, 0x5EED] {
        // Per-job cost derives from the seed only, so every thread count
        // faces the same (skewed) workload.
        let jobs: Vec<u64> = {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            (0..200).map(|_| rng.next_u64()).collect()
        };
        let run = |threads: usize| -> Vec<u64> {
            run_queries(Strategy::WorkQueue { threads }, jobs.len(), |i| {
                // A little real work with data-dependent cost.
                let rounds = (jobs[i] % 64) as u32;
                (0..rounds).fold(jobs[i], |acc, r| {
                    acc.rotate_left(r % 63).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                })
            })
        };
        let reference = run(1);
        for t in THREADS {
            assert_eq!(run(t), reference, "seed {seed:#x} diverges at t={t}");
        }
        // The fixed pool and adaptive executor agree with the queue too.
        for t in THREADS {
            let fixed = run_queries(Strategy::FixedPool { threads: t }, jobs.len(), |i| {
                let rounds = (jobs[i] % 64) as u32;
                (0..rounds).fold(jobs[i], |acc, r| {
                    acc.rotate_left(r % 63).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                })
            });
            assert_eq!(fixed, reference, "fixed pool diverges at t={t}");
        }
    }
}
