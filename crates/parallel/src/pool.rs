//! A persistent worker pool with a shared submission queue.
//!
//! Every executor in this crate so far ([`crate::run_fixed_pool`],
//! [`crate::run_work_queue`], …) spawns its threads per call — fine for
//! one-shot workload measurements, wasteful for a long-lived server that
//! answers micro-batches continuously. [`WorkerPool`] spawns its threads
//! once; work arrives through a [`SubmissionQueue`] and the threads stay
//! parked on a condvar between jobs.
//!
//! The queue is bounded and rejects instead of blocking when full
//! ([`PushError::Full`]) — that is the admission-control primitive the
//! serving layer's backpressure (`BUSY` replies) is built on. Shutdown
//! is explicit and *joining*: [`WorkerPool::shutdown`] (and `Drop`)
//! closes the queue, lets the workers drain what was already accepted,
//! and joins every thread — no detached threads survive the pool.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Why a [`SubmissionQueue::push`] was rejected; the job is handed back
/// so the caller can reply with backpressure instead of losing it.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<J> {
    /// The queue is at capacity (admission control: reply `BUSY`).
    Full(J),
    /// The queue has been closed (shutdown in progress).
    Closed(J),
}

impl<J> PushError<J> {
    /// Hands the rejected job back to the caller.
    pub fn into_inner(self) -> J {
        match self {
            PushError::Full(job) | PushError::Closed(job) => job,
        }
    }
}

struct QueueState<J> {
    jobs: VecDeque<J>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer job queue.
///
/// `push` never blocks: a full queue returns [`PushError::Full`]
/// immediately, which is precisely the explicit-backpressure behaviour
/// the serving layer needs (a client must see `BUSY`, not a hang).
/// `pop` blocks until a job arrives or the queue is closed *and*
/// drained, so consumers process everything that was admitted before
/// shutdown.
pub struct SubmissionQueue<J> {
    state: Mutex<QueueState<J>>,
    capacity: usize,
    available: Condvar,
    space: Condvar,
}

impl<J> SubmissionQueue<J> {
    /// Creates a queue admitting at most `capacity` queued jobs.
    ///
    /// # Panics
    /// Panics if `capacity == 0` — a queue that can never admit a job
    /// would make every consumer block forever.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "a submission queue needs capacity");
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            capacity,
            available: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// Admits a job, or rejects it immediately when the queue is full or
    /// closed. Never blocks.
    pub fn push(&self, job: J) -> Result<(), PushError<J>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed(job));
        }
        if state.jobs.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        state.jobs.push_back(job);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Admits a job, blocking while the queue is full. Returns the job
    /// back only when the queue is closed. This is how a *downstream*
    /// stage propagates backpressure upstream: the batch scheduler
    /// blocks here when the execution workers are saturated, the
    /// admission queue fills behind it, and new clients see `BUSY`.
    pub fn push_wait(&self, job: J) -> Result<(), PushError<J>> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if state.closed {
                return Err(PushError::Closed(job));
            }
            if state.jobs.len() < self.capacity {
                state.jobs.push_back(job);
                drop(state);
                self.available.notify_one();
                return Ok(());
            }
            state = self.space.wait(state).expect("queue poisoned");
        }
    }

    /// Blocks until a job is available and returns it; returns `None`
    /// once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<J> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                drop(state);
                self.space.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
    }

    /// Like [`SubmissionQueue::pop`], but gives up at `deadline` —
    /// `None` then means "nothing arrived in time *or* the queue is
    /// closed and drained"; callers that need to distinguish follow up
    /// with a blocking [`SubmissionQueue::pop`]. The batch scheduler
    /// uses this to flush a partial micro-batch when the max-delay
    /// timer expires before the batch fills.
    pub fn pop_deadline(&self, deadline: std::time::Instant) -> Option<J> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                drop(state);
                self.space.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            let now = std::time::Instant::now();
            let remaining = deadline.checked_duration_since(now)?;
            let (guard, timeout) = self
                .available
                .wait_timeout(state, remaining)
                .expect("queue poisoned");
            state = guard;
            if timeout.timed_out() && state.jobs.is_empty() {
                return None;
            }
        }
    }

    /// Number of jobs currently queued (the queue-depth gauge).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").jobs.len()
    }

    /// True when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: further pushes fail, consumers drain the
    /// remainder and then observe `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
        self.space.notify_all();
    }

    /// True once [`SubmissionQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }
}

/// A boxed unit of work for the [`WorkerPool`].
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of threads executing jobs from a shared
/// [`SubmissionQueue`] — spawn once, submit many, join on shutdown.
pub struct WorkerPool {
    queue: Arc<SubmissionQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers over a queue admitting at most
    /// `queue_capacity` pending jobs.
    ///
    /// # Panics
    /// Panics if `threads == 0` or `queue_capacity == 0`.
    pub fn new(threads: usize, queue_capacity: usize) -> Self {
        assert!(threads > 0, "a pool needs at least one thread");
        let queue: Arc<SubmissionQueue<Job>> =
            Arc::new(SubmissionQueue::bounded(queue_capacity));
        let workers = (0..threads)
            .map(|_| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    while let Some(job) = queue.pop() {
                        job();
                    }
                })
            })
            .collect();
        Self { queue, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job. Returns the job inside the error when the queue is
    /// full (backpressure) or the pool is shutting down.
    pub fn submit(
        &self,
        job: impl FnOnce() + Send + 'static,
    ) -> Result<(), PushError<Job>> {
        self.queue.push(Box::new(job))
    }

    /// Current submission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Closes the queue, waits for the workers to drain every admitted
    /// job, and joins all threads. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            handle.join().expect("pool worker panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_every_submitted_job() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new(4, 1024);
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let admitted = pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert!(admitted.is_ok());
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let queue: SubmissionQueue<u32> = SubmissionQueue::bounded(2);
        queue.push(1).unwrap();
        queue.push(2).unwrap();
        assert_eq!(queue.push(3), Err(PushError::Full(3)));
        assert_eq!(queue.len(), 2);
        // Draining one slot re-admits.
        assert_eq!(queue.pop(), Some(1));
        queue.push(3).unwrap();
    }

    #[test]
    fn closed_queue_rejects_and_drains() {
        let queue: SubmissionQueue<u32> = SubmissionQueue::bounded(8);
        queue.push(7).unwrap();
        queue.close();
        assert_eq!(queue.push(8), Err(PushError::Closed(8)));
        assert_eq!(queue.pop(), Some(7));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn shutdown_joins_every_worker_thread() {
        // Count live workers with a guard object: the satellite
        // requirement is that no detached threads survive shutdown.
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        struct Guard;
        impl Drop for Guard {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let mut pool = WorkerPool::new(6, 64);
        let (tx, rx) = mpsc::channel();
        for _ in 0..6 {
            let tx = tx.clone();
            let admitted = pool.submit(move || {
                LIVE.fetch_add(1, Ordering::SeqCst);
                let _guard = Guard;
                tx.send(std::thread::current().id()).unwrap();
                // Hold the worker briefly so all six are live at once.
                std::thread::sleep(Duration::from_millis(20));
            });
            assert!(admitted.is_ok());
        }
        drop(tx);
        let ids: std::collections::HashSet<_> = rx.iter().collect();
        assert_eq!(ids.len(), 6, "six workers should have run jobs");
        pool.shutdown();
        assert_eq!(
            LIVE.load(Ordering::SeqCst),
            0,
            "shutdown returned while worker jobs were still running"
        );
        assert_eq!(pool.threads(), 0, "all handles joined");
        // Idempotent.
        pool.shutdown();
    }

    #[test]
    fn drop_also_joins() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2, 16);
            for _ in 0..10 {
                let counter = Arc::clone(&counter);
                let admitted = pool.submit(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
                assert!(admitted.is_ok());
            }
        } // Drop runs shutdown: every admitted job completes.
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn pop_blocks_until_push() {
        let queue: Arc<SubmissionQueue<u32>> = Arc::new(SubmissionQueue::bounded(4));
        let q = Arc::clone(&queue);
        let consumer = std::thread::spawn(move || q.pop());
        std::thread::sleep(Duration::from_millis(10));
        queue.push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    #[test]
    fn push_wait_blocks_until_space_then_admits() {
        let queue: Arc<SubmissionQueue<u32>> = Arc::new(SubmissionQueue::bounded(1));
        queue.push(1).unwrap();
        let q = Arc::clone(&queue);
        let producer = std::thread::spawn(move || q.push_wait(2));
        std::thread::sleep(Duration::from_millis(10));
        // The producer is blocked; free a slot and it must complete.
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(producer.join().unwrap(), Ok(()));
        assert_eq!(queue.pop(), Some(2));
    }

    #[test]
    fn push_wait_unblocks_on_close() {
        let queue: Arc<SubmissionQueue<u32>> = Arc::new(SubmissionQueue::bounded(1));
        queue.push(1).unwrap();
        let q = Arc::clone(&queue);
        let producer = std::thread::spawn(move || q.push_wait(2));
        std::thread::sleep(Duration::from_millis(10));
        queue.close();
        assert_eq!(producer.join().unwrap(), Err(PushError::Closed(2)));
    }

    #[test]
    fn pop_deadline_times_out_on_empty_queue() {
        let queue: SubmissionQueue<u32> = SubmissionQueue::bounded(4);
        let start = std::time::Instant::now();
        let got = queue.pop_deadline(start + Duration::from_millis(20));
        assert_eq!(got, None);
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn pop_deadline_returns_queued_job_immediately() {
        let queue: SubmissionQueue<u32> = SubmissionQueue::bounded(4);
        queue.push(9).unwrap();
        let got = queue.pop_deadline(std::time::Instant::now() + Duration::from_secs(5));
        assert_eq!(got, Some(9));
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_panics() {
        let _ = SubmissionQueue::<u8>::bounded(0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = WorkerPool::new(0, 1);
    }
}
