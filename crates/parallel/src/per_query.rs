//! Strategy 1 (paper §3.6, rung 5): one thread per query.
//!
//! The paper implements this deliberately naive strategy and measures it
//! to be *slower* than the single-threaded rung 4 — thread creation and
//! teardown dominate short queries. It is kept as a runnable rung so
//! Tables III/VII reproduce that regression.

/// Executes `work(0..n)` with one freshly spawned thread per job,
/// returning results in job order.
pub fn run_thread_per_query<T, F>(n: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let work = &work;
    std::thread::scope(|scope| {
        // Spawn in batches to bound simultaneous threads: the paper notes
        // that opening "as many threads as possible" at once exhausts
        // resources; per-query threads are still created and destroyed
        // for every single job.
        const BATCH: usize = 256;
        let mut results = Vec::with_capacity(n);
        let mut start = 0;
        while start < n {
            let end = (start + BATCH).min(n);
            let handles: Vec<_> = (start..end)
                .map(|i| scope.spawn(move || work(i)))
                .collect();
            for h in handles {
                results.push(h.join().expect("query thread panicked"));
            }
            start = end;
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let out = run_thread_per_query(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_job_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_thread_per_query(300, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 300);
        assert_eq!(out.len(), 300);
    }

    #[test]
    fn zero_jobs() {
        let out: Vec<u32> = run_thread_per_query(0, |_| unreachable!());
        assert!(out.is_empty());
    }
}
