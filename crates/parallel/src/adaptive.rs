//! Strategy 3 (paper §3.6): intelligent management of threads by a
//! master, opening and closing workers only when needed.
//!
//! The paper sketches two rules — open a thread when average load exceeds
//! 70 %, close one when it falls below 30 % — and resolves the inherent
//! race ("thread t₁ wants to open while t₂ wants to close") with the
//! master/slave principle: a single master owns all open/close decisions.
//!
//! This implementation follows that design. Worker threads are created
//! once and *parked* when closed (the open/close decision is the master's;
//! parking stands in for destroy/recreate so the management logic, not
//! thread churn, is what gets measured). The load signal is queue
//! pressure: with `p` pending jobs and `a` active workers, the master
//! opens a worker when `p > 2a` (high load) and closes one when `p < a`
//! (low load), sampling every 200 µs.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::Duration;

/// Tuning knobs for the master's open/close rules.
///
/// The paper's sketch uses CPU-load watermarks (open above 70 %, close
/// below 30 %); this implementation's load signal is queue pressure
/// (pending jobs per active worker), with the same watermark structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Open a worker when `pending > open_factor × active`.
    pub open_factor: f64,
    /// Close a worker when `pending < close_factor × active`.
    pub close_factor: f64,
    /// Master sampling interval.
    pub sample_interval: Duration,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            open_factor: 2.0,
            close_factor: 1.0,
            sample_interval: Duration::from_micros(200),
        }
    }
}

/// What the master did during a run — exposed for tests and reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdaptiveReport {
    /// Number of open decisions taken by the master.
    pub opens: usize,
    /// Number of close decisions taken by the master.
    pub closes: usize,
    /// Highest number of simultaneously working threads observed.
    pub max_active: usize,
}

struct Shared {
    next: AtomicUsize,
    target: AtomicUsize,
    finished: AtomicBool,
    active_now: AtomicUsize,
    max_active: AtomicUsize,
    park: Mutex<()>,
    wake: Condvar,
}

/// Executes `work(0..n)` under master-managed workers (at most
/// `max_threads`), returning results in job order.
pub fn run_adaptive<T, F>(max_threads: usize, n: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_adaptive_with_report(max_threads, n, work).0
}

/// Like [`run_adaptive`], also returning the master's decision log.
///
/// # Panics
/// Panics if `max_threads == 0`.
pub fn run_adaptive_with_report<T, F>(
    max_threads: usize,
    n: usize,
    work: F,
) -> (Vec<T>, AdaptiveReport)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_adaptive_configured(max_threads, n, AdaptiveConfig::default(), work)
}

/// Like [`run_adaptive_with_report`] with explicit open/close rules.
///
/// # Panics
/// Panics if `max_threads == 0` or the config factors are inverted
/// (`open_factor < close_factor` would make the master oscillate).
pub fn run_adaptive_configured<T, F>(
    max_threads: usize,
    n: usize,
    config: AdaptiveConfig,
    work: F,
) -> (Vec<T>, AdaptiveReport)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(max_threads > 0, "need at least one worker");
    assert!(
        config.open_factor >= config.close_factor,
        "open watermark below close watermark"
    );
    if n == 0 {
        return (Vec::new(), AdaptiveReport::default());
    }
    let max_threads = max_threads.min(n);
    let work = &work;
    let shared = Shared {
        next: AtomicUsize::new(0),
        target: AtomicUsize::new(1), // start minimal; the master opens more
        finished: AtomicBool::new(false),
        active_now: AtomicUsize::new(0),
        max_active: AtomicUsize::new(0),
        park: Mutex::new(()),
        wake: Condvar::new(),
    };
    let shared = &shared;
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut report = AdaptiveReport::default();

    std::thread::scope(|scope| {
        // Workers (slaves).
        for id in 0..max_threads {
            let tx = tx.clone();
            scope.spawn(move || loop {
                if shared.finished.load(Ordering::Acquire) {
                    break;
                }
                if id >= shared.target.load(Ordering::Acquire) {
                    // Closed by the master: park until woken.
                    let guard = shared.park.lock().expect("park mutex poisoned");
                    if !shared.finished.load(Ordering::Acquire)
                        && id >= shared.target.load(Ordering::Acquire)
                    {
                        let _ = shared
                            .wake
                            .wait_timeout(guard, Duration::from_millis(1))
                            .expect("park mutex poisoned");
                    }
                    continue;
                }
                let i = shared.next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let now = shared.active_now.fetch_add(1, Ordering::Relaxed) + 1;
                shared.max_active.fetch_max(now, Ordering::Relaxed);
                let result = work(i);
                shared.active_now.fetch_sub(1, Ordering::Relaxed);
                tx.send((i, result)).expect("collector hung up");
            });
        }
        drop(tx);

        // Master: the only thread allowed to open or close workers.
        let master = scope.spawn(move || {
            let mut opens = 0;
            let mut closes = 0;
            loop {
                let issued = shared.next.load(Ordering::Relaxed).min(n);
                if issued >= n {
                    break;
                }
                let pending = n - issued;
                let active = shared.target.load(Ordering::Relaxed);
                if (pending as f64) > config.open_factor * active as f64 && active < max_threads
                {
                    shared.target.store(active + 1, Ordering::Release);
                    shared.wake.notify_all();
                    opens += 1;
                } else if (pending as f64) < config.close_factor * active as f64 && active > 1 {
                    shared.target.store(active - 1, Ordering::Release);
                    closes += 1;
                }
                std::thread::sleep(config.sample_interval);
            }
            shared.finished.store(true, Ordering::Release);
            shared.wake.notify_all();
            (opens, closes)
        });

        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, v) in rx {
            slots[i] = Some(v);
        }
        // All jobs are collected; make sure stragglers exit promptly.
        shared.finished.store(true, Ordering::Release);
        shared.wake.notify_all();
        let (opens, closes) = master.join().expect("master panicked");
        report.opens = opens;
        report.closes = closes;
        report.max_active = shared.max_active.load(Ordering::Relaxed);
        (
            slots
                .into_iter()
                .map(|s| s.expect("job skipped"))
                .collect(),
            report,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_completeness() {
        let (out, _) = run_adaptive_with_report(8, 500, |i| i * 7);
        assert_eq!(out, (0..500).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn master_opens_workers_under_load() {
        // Slow jobs keep the queue pressured; the master must scale up.
        let (out, report) = run_adaptive_with_report(4, 200, |i| {
            std::thread::sleep(Duration::from_micros(300));
            i
        });
        assert_eq!(out.len(), 200);
        assert!(report.opens >= 1, "master never opened a worker: {report:?}");
        assert!(report.max_active >= 2, "never ran concurrently: {report:?}");
    }

    #[test]
    fn concurrency_never_exceeds_max_threads() {
        let (_, report) = run_adaptive_with_report(3, 300, |i| {
            std::thread::sleep(Duration::from_micros(100));
            i
        });
        assert!(report.max_active <= 3, "{report:?}");
    }

    #[test]
    fn single_worker_cap_degenerates_to_sequential() {
        let (out, report) = run_adaptive_with_report(1, 50, |i| i);
        assert_eq!(out, (0..50).collect::<Vec<_>>());
        assert!(report.max_active <= 1);
        assert_eq!(report.opens, 0);
    }

    #[test]
    fn configured_rules_are_respected() {
        // A never-open configuration stays at one worker.
        let cfg = AdaptiveConfig {
            open_factor: f64::INFINITY,
            close_factor: 0.0,
            sample_interval: Duration::from_micros(100),
        };
        let (out, report) = run_adaptive_configured(8, 100, cfg, |i| {
            std::thread::sleep(Duration::from_micros(50));
            i
        });
        assert_eq!(out.len(), 100);
        assert_eq!(report.opens, 0);
        assert!(report.max_active <= 1, "{report:?}");
    }

    #[test]
    #[should_panic(expected = "open watermark below close watermark")]
    fn inverted_watermarks_panic() {
        let cfg = AdaptiveConfig {
            open_factor: 0.5,
            close_factor: 2.0,
            sample_interval: Duration::from_micros(100),
        };
        run_adaptive_configured(2, 1, cfg, |i| i);
    }

    #[test]
    fn zero_jobs() {
        let (out, report) = run_adaptive_with_report(4, 0, |_: usize| 0u32);
        assert!(out.is_empty());
        assert_eq!(report, AdaptiveReport::default());
    }
}
