//! Strategy 2 (paper §3.6, rung 6): a fixed number of threads with a
//! static partition of the queries.
//!
//! "Open exactly one thread per CPU core" generalized to `t` threads —
//! the paper sweeps `t ∈ {4, 8, 16, 32}` (Tables II/IV/VI/VIII). Queries
//! are split into `t` contiguous chunks; each thread owns one chunk, so
//! there is no synchronization after the spawn.

/// Executes `work(0..n)` on `threads` scoped threads with contiguous
/// partitioning, returning results in job order.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn run_fixed_pool<T, F>(threads: usize, n: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "a pool needs at least one thread");
    if n == 0 {
        return Vec::new();
    }
    let work = &work;
    // Chunk sizes differ by at most one (balanced partition).
    let ranges = crate::chunk_ranges(n, threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        for range in ranges {
            handles.push(scope.spawn(move || range.map(work).collect::<Vec<T>>()));
        }
        let mut results = Vec::with_capacity(n);
        for h in handles {
            results.extend(h.join().expect("pool thread panicked"));
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order_for_various_thread_counts() {
        for threads in [1, 2, 3, 4, 7, 8, 16, 32] {
            let out = run_fixed_pool(threads, 100, |i| i + 1);
            assert_eq!(out, (1..=100).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_jobs() {
        let out = run_fixed_pool(64, 3, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn uses_multiple_os_threads() {
        let ids = std::sync::Mutex::new(HashSet::new());
        run_fixed_pool(4, 64, |i| {
            ids.lock().unwrap().insert(std::thread::current().id());
            i
        });
        assert!(ids.into_inner().unwrap().len() > 1);
    }

    #[test]
    fn every_job_runs_once() {
        let counter = AtomicUsize::new(0);
        run_fixed_pool(8, 1000, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn zero_jobs() {
        let out: Vec<u8> = run_fixed_pool(8, 0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        run_fixed_pool(0, 1, |i| i);
    }
}
