//! # simsearch-parallel
//!
//! The paper's thread-management strategies (§3.5/§3.6) behind one
//! dispatch point. The paper evaluates three ways of closing/opening
//! threads:
//!
//! 1. **one thread per query** ([`per_query`]) — rung 5, measurably *bad*;
//! 2. **fixed pool, static partition** ([`fixed_pool`]) — rung 6, swept
//!    over 4/8/16/32 threads in Tables II, IV, VI and VIII;
//! 3. **master-managed adaptive pool** ([`adaptive`]) — the paper's
//!    master/slave design with load-based open/close rules.
//!
//! A fourth executor, the dynamic [`work_queue`], is the classical
//! load-balancing fix the paper's §3.6 hints at ("crucial … is a balanced
//! distribution of queries") and is used in ablation benchmarks.
//!
//! All of the above spawn threads per call, which suits one-shot workload
//! measurements. The serving layer instead keeps a persistent
//! [`pool::WorkerPool`] fed by a bounded [`pool::SubmissionQueue`] —
//! spawn once, submit continuously, reject (never block) when full, and
//! join every thread on shutdown.
//!
//! All executors run a read-only job function `Fn(usize) -> T` over job
//! indices `0..n` and return the results in job order, so callers observe
//! identical semantics regardless of strategy — the paper's correctness
//! methodology (every rung must produce the base implementation's
//! results) falls out for free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod fixed_pool;
pub mod per_query;
pub mod pool;
pub mod work_queue;

pub use adaptive::{
    run_adaptive, run_adaptive_configured, run_adaptive_with_report, AdaptiveConfig,
    AdaptiveReport,
};
pub use fixed_pool::run_fixed_pool;
pub use per_query::run_thread_per_query;
pub use pool::{PushError, SubmissionQueue, WorkerPool};
pub use work_queue::run_work_queue;

/// How a batch of independent query jobs is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// Single-threaded, in job order.
    #[default]
    Sequential,
    /// One thread per query (paper strategy 1 / scan rung 5).
    ThreadPerQuery,
    /// Fixed pool with static contiguous partitioning
    /// (paper strategy 2 / rung 6).
    FixedPool {
        /// Number of pool threads.
        threads: usize,
    },
    /// Fixed pool pulling from a shared queue (dynamic balancing).
    WorkQueue {
        /// Number of pool threads.
        threads: usize,
    },
    /// Master-managed adaptive pool (paper strategy 3).
    Adaptive {
        /// Upper bound on worker threads.
        max_threads: usize,
    },
}

impl Strategy {
    /// Short stable name for reports.
    pub fn name(self) -> String {
        match self {
            Strategy::Sequential => "sequential".into(),
            Strategy::ThreadPerQuery => "thread-per-query".into(),
            Strategy::FixedPool { threads } => format!("fixed-pool({threads})"),
            Strategy::WorkQueue { threads } => format!("work-queue({threads})"),
            Strategy::Adaptive { max_threads } => format!("adaptive(<={max_threads})"),
        }
    }
}

/// Splits `0..n` into at most `chunks` contiguous ranges whose lengths
/// differ by at most one — the static partition the fixed pool hands its
/// threads, exposed for callers that parallelize over *data* chunks
/// instead of queries (e.g. the V7 sorted-prefix scan, whose DP state
/// restarts at every chunk boundary).
///
/// Returns fewer than `chunks` ranges when `n < chunks`; never returns
/// an empty range.
///
/// # Panics
/// Panics if `chunks == 0` while `n > 0`.
///
/// # Examples
///
/// ```
/// use simsearch_parallel::chunk_ranges;
///
/// assert_eq!(chunk_ranges(10, 3), vec![0..4, 4..7, 7..10]);
/// assert_eq!(chunk_ranges(2, 8).len(), 2);
/// assert!(chunk_ranges(0, 4).is_empty());
/// ```
pub fn chunk_ranges(n: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    assert!(chunks > 0, "a partition needs at least one chunk");
    let chunks = chunks.min(n);
    let base = n / chunks;
    let extra = n % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Picks a sensible executor for `jobs` units of work on `threads`
/// worker threads: sequential when either is ≤ 1 or the job count is
/// too small to amortize pool startup, a fixed pool otherwise. This is
/// the default scheduling the planner's auto backend inherits.
///
/// # Examples
///
/// ```
/// use simsearch_parallel::{auto_strategy, Strategy};
///
/// assert_eq!(auto_strategy(1000, 1), Strategy::Sequential);
/// assert_eq!(auto_strategy(2, 8), Strategy::Sequential);
/// assert_eq!(auto_strategy(1000, 8), Strategy::FixedPool { threads: 8 });
/// ```
pub fn auto_strategy(jobs: usize, threads: usize) -> Strategy {
    if threads <= 1 || jobs < threads.max(4) {
        Strategy::Sequential
    } else {
        Strategy::FixedPool { threads }
    }
}

/// Executes `work(0..n)` under `strategy`, returning results in job order.
/// # Examples
///
/// ```
/// use simsearch_parallel::{run_queries, Strategy};
///
/// let squares = run_queries(Strategy::FixedPool { threads: 4 }, 10, |i| i * i);
/// assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
/// ```
pub fn run_queries<T, F>(strategy: Strategy, n: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match strategy {
        Strategy::Sequential => (0..n).map(work).collect(),
        Strategy::ThreadPerQuery => run_thread_per_query(n, work),
        Strategy::FixedPool { threads } => run_fixed_pool(threads, n, work),
        Strategy::WorkQueue { threads } => run_work_queue(threads, n, work),
        Strategy::Adaptive { max_threads } => run_adaptive(max_threads, n, work),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Strategy; 5] = [
        Strategy::Sequential,
        Strategy::ThreadPerQuery,
        Strategy::FixedPool { threads: 4 },
        Strategy::WorkQueue { threads: 4 },
        Strategy::Adaptive { max_threads: 4 },
    ];

    #[test]
    fn every_strategy_returns_identical_results() {
        let expected: Vec<usize> = (0..150).map(|i| i * i).collect();
        for s in ALL {
            assert_eq!(run_queries(s, 150, |i| i * i), expected, "{}", s.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<String> =
            ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), ALL.len());
    }

    #[test]
    fn zero_jobs_for_every_strategy() {
        for s in ALL {
            let out: Vec<u8> = run_queries(s, 0, |_| 0);
            assert!(out.is_empty(), "{}", s.name());
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly_once_and_balance() {
        for n in [0usize, 1, 2, 3, 7, 10, 100, 101] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(n, chunks);
                let covered: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} chunks={chunks}");
                assert!(ranges.iter().all(|r| !r.is_empty()));
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(ExactSizeIterator::len).min(),
                    ranges.iter().map(ExactSizeIterator::len).max(),
                ) {
                    assert!(max - min <= 1, "unbalanced: n={n} chunks={chunks}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn zero_chunks_panics_on_nonempty_input() {
        chunk_ranges(5, 0);
    }
}
