//! Work-queue pool: a fixed number of threads pulling jobs from a shared
//! atomic counter.
//!
//! The paper notes that strategy 2's success hinges on "a balanced
//! distribution of queries on the different cores"; with skewed query
//! costs (one chunk full of `k = 16` DNA queries) static partitioning
//! stalls. The work queue is the classical fix: dynamic load balancing at
//! the cost of one atomic per job. The `ablation_executors` benchmark
//! compares the two.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Executes `work(0..n)` on `threads` scoped threads pulling from a
/// shared queue, returning results in job order.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn run_work_queue<T, F>(threads: usize, n: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "a pool needs at least one thread");
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    let work = &work;
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                tx.send((i, work(i))).expect("collector hung up");
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (i, v) in rx {
            slots[i] = Some(v);
        }
        slots
            .into_iter()
            .map(|s| s.expect("job skipped by the queue"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        for threads in [1, 3, 8] {
            let out = run_work_queue(threads, 200, |i| i * 2);
            assert_eq!(out, (0..200).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn balances_skewed_work() {
        // Jobs with wildly different costs must all complete.
        let out = run_work_queue(4, 50, |i| {
            if i % 10 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i
        });
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn zero_jobs() {
        let out: Vec<()> = run_work_queue(4, 0, |_| unreachable!());
        assert!(out.is_empty());
    }
}
