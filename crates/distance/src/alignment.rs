//! Edit-script extraction (traceback).
//!
//! The paper only needs the *value* of the edit distance, but a library
//! user diagnosing why two strings are similar wants the witness: the
//! minimal sequence of insert/delete/substitute operations (§2.2's three
//! operations). [`edit_script`] recovers it from the full DP matrix.

use crate::full::levenshtein_full_with;
use crate::matrix::DpMatrix;

/// One step of an edit script transforming `x` into `y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditStep {
    /// `x[x_pos] == y[y_pos]`: keep the symbol (cost 0).
    Keep {
        /// Position in `x`.
        x_pos: usize,
        /// Position in `y`.
        y_pos: usize,
    },
    /// Replace `x[x_pos]` with `symbol` (= `y[y_pos]`).
    Substitute {
        /// Position in `x`.
        x_pos: usize,
        /// Replacement symbol.
        symbol: u8,
    },
    /// Delete `x[x_pos]`.
    Delete {
        /// Position in `x`.
        x_pos: usize,
    },
    /// Insert `symbol` before `x[x_pos]` (conceptually; positions refer
    /// to the original `x`).
    Insert {
        /// Position in `x` before which the symbol is inserted.
        x_pos: usize,
        /// Inserted symbol.
        symbol: u8,
    },
}

impl EditStep {
    /// Unit cost of the step (0 for [`EditStep::Keep`], 1 otherwise).
    pub fn cost(&self) -> u32 {
        match self {
            EditStep::Keep { .. } => 0,
            _ => 1,
        }
    }
}

/// Computes a minimal edit script transforming `x` into `y`, together
/// with its cost (= `ed(x, y)`).
/// # Examples
///
/// ```
/// use simsearch_distance::{apply_script, edit_script};
///
/// let (steps, cost) = edit_script(b"AGGCGT", b"AGAGT");
/// assert_eq!(cost, 2);
/// assert_eq!(apply_script(b"AGGCGT", &steps), b"AGAGT");
/// ```
///
/// Ties are broken preferring diagonal moves (keep/substitute), then
/// deletion, then insertion — the script is deterministic.
pub fn edit_script(x: &[u8], y: &[u8]) -> (Vec<EditStep>, u32) {
    let mut m = DpMatrix::new();
    let distance = levenshtein_full_with(&mut m, x, y);
    let mut steps = Vec::with_capacity(x.len().max(y.len()));
    let (mut i, mut j) = (x.len(), y.len());
    while i > 0 || j > 0 {
        let here = m.get(i, j);
        if i > 0 && j > 0 && x[i - 1] == y[j - 1] && m.get(i - 1, j - 1) == here {
            steps.push(EditStep::Keep {
                x_pos: i - 1,
                y_pos: j - 1,
            });
            i -= 1;
            j -= 1;
        } else if i > 0 && j > 0 && m.get(i - 1, j - 1) + 1 == here {
            steps.push(EditStep::Substitute {
                x_pos: i - 1,
                symbol: y[j - 1],
            });
            i -= 1;
            j -= 1;
        } else if i > 0 && m.get(i - 1, j) + 1 == here {
            steps.push(EditStep::Delete { x_pos: i - 1 });
            i -= 1;
        } else {
            debug_assert!(j > 0 && m.get(i, j - 1) + 1 == here, "broken traceback");
            steps.push(EditStep::Insert {
                x_pos: i,
                symbol: y[j - 1],
            });
            j -= 1;
        }
    }
    steps.reverse();
    (steps, distance)
}

/// Applies an edit script produced by [`edit_script`] to `x`.
///
/// Used by tests to validate the traceback; scripts from other sources
/// are applied on a best-effort basis (positions must refer to `x`).
pub fn apply_script(x: &[u8], steps: &[EditStep]) -> Vec<u8> {
    let mut out = Vec::with_capacity(x.len());
    for step in steps {
        match *step {
            EditStep::Keep { x_pos, .. } => out.push(x[x_pos]),
            EditStep::Substitute { symbol, .. } => out.push(symbol),
            EditStep::Delete { .. } => {}
            EditStep::Insert { symbol, .. } => out.push(symbol),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::levenshtein;

    fn check(x: &[u8], y: &[u8]) {
        let (steps, d) = edit_script(x, y);
        assert_eq!(d, levenshtein(x, y), "distance mismatch");
        let cost: u32 = steps.iter().map(EditStep::cost).sum();
        assert_eq!(cost, d, "script cost != distance");
        assert_eq!(apply_script(x, &steps), y, "script does not produce y");
    }

    #[test]
    fn paper_example_script() {
        let (steps, d) = edit_script(b"AGGCGT", b"AGAGT");
        assert_eq!(d, 2);
        let cost: u32 = steps.iter().map(EditStep::cost).sum();
        assert_eq!(cost, 2);
        assert_eq!(apply_script(b"AGGCGT", &steps), b"AGAGT");
    }

    #[test]
    fn scripts_reproduce_targets() {
        let words: &[&[u8]] = &[
            b"",
            b"a",
            b"kitten",
            b"sitting",
            b"Berlin",
            b"Bern",
            b"abcdef",
            b"fedcba",
        ];
        for &x in words {
            for &y in words {
                check(x, y);
            }
        }
    }

    #[test]
    fn identity_script_is_all_keeps() {
        let (steps, d) = edit_script(b"same", b"same");
        assert_eq!(d, 0);
        assert!(steps.iter().all(|s| matches!(s, EditStep::Keep { .. })));
        assert_eq!(steps.len(), 4);
    }

    #[test]
    fn pure_insertions_and_deletions() {
        let (steps, d) = edit_script(b"", b"abc");
        assert_eq!(d, 3);
        assert!(steps.iter().all(|s| matches!(s, EditStep::Insert { .. })));
        let (steps, d) = edit_script(b"abc", b"");
        assert_eq!(d, 3);
        assert!(steps.iter().all(|s| matches!(s, EditStep::Delete { .. })));
    }
}
