//! Resumable blocked bit-parallel edit distance for sorted-prefix
//! scans — [`crate::row_stack::RowStackKernel`]'s discipline applied to
//! Myers words instead of scalar rows.
//!
//! The row stack resumes a scalar DP at the LCP between adjacent sorted
//! candidates, recomputing only suffix *rows*. [`MyersStackKernel`] does
//! the same at 64-cell block granularity: the query's `Peq` match masks
//! are compiled once, and for every text position the kernel checkpoints
//! all ⌈m/64⌉ block states (`pv`/`mv`) plus the running score at the
//! last pattern row. Resuming at `shared_prefix` truncates the
//! checkpoint stack and re-advances only the candidate's unshared
//! suffix — one [`crate::myers_block::advance_block`] call per block per
//! byte, i.e. 64 DP cells per word operation, on top of the LCP reuse
//! that already skips the shared prefix entirely.
//!
//! Soundness of the resume is the same range-minimum argument as the
//! scalar stack: the checkpoint at depth `d` is a pure function of the
//! candidate's first `d` bytes, so any candidate sharing those bytes may
//! adopt it verbatim. Early aborts (score out of reach of `k`) leave a
//! shorter but still valid stack — future resumes are clamped to the
//! surviving depth, which only shrinks the reuse, never corrupts it.
//!
//! Like the scalar kernel, the words advanced and cells represented are
//! counted so diagnostics can compare word-level and cell-level work
//! across scan variants.

use crate::myers_block::{advance_block, score_is_dead, BlockState};

const W: usize = 64;

/// A resumable blocked bit-parallel DP for one `(query, k)` pair,
/// applied to a stream of candidates arriving with their shared-prefix
/// lengths (a lexicographically sorted arena's LCP array).
///
/// # Examples
///
/// ```
/// use simsearch_distance::MyersStackKernel;
///
/// let mut dp = MyersStackKernel::new(b"Berlin", 2);
/// // Sorted candidates: "Berlin", "Berlingen", "Bern" (lcp 6, then 3).
/// assert_eq!(dp.resume(b"Berlin", 0), Some(0));
/// assert_eq!(dp.resume(b"Berlingen", 6), None); // distance 3 > k
/// assert_eq!(dp.resume(b"Bern", 3), Some(2));
/// assert!(dp.words_reused() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct MyersStackKernel {
    /// `peq[c * blocks + b]`: match mask of block `b` for byte `c`,
    /// compiled once per query. Transposed relative to
    /// [`crate::myers_block::MyersBlock`]: the per-byte block loop reads
    /// one contiguous `blocks`-word row instead of striding 2 KiB apart.
    peq: Vec<u64>,
    /// Number of 64-bit blocks (0 only for the empty query).
    blocks: usize,
    /// Query length.
    m: usize,
    /// Mask of the last pattern position within the last block.
    last: u64,
    k: u32,
    /// Checkpoint stack: `states[d * blocks + b]` is block `b`'s
    /// vertical state after `d` candidate bytes; depth 0 (the empty
    /// prefix, `pv = !0`, `mv = 0`) occupies the first `blocks` slots.
    states: Vec<BlockState>,
    /// `scores[d]`: the DP score at the last pattern row after `d`
    /// candidate bytes; `scores[0] = m`.
    scores: Vec<i64>,
    /// One column of scratch state for the unstacked tail of a bounded
    /// resume ([`MyersStackKernel::resume_bounded`]).
    scratch: Vec<BlockState>,
    words: u64,
    cells: u64,
    reused: u64,
}

impl MyersStackKernel {
    /// Creates the kernel for `query` at threshold `k`, with the empty
    /// candidate prefix checkpointed.
    pub fn new(query: &[u8], k: u32) -> Self {
        let mut dp = Self {
            peq: Vec::new(),
            blocks: 0,
            m: 0,
            last: 0,
            k: 0,
            states: Vec::new(),
            scores: Vec::new(),
            scratch: Vec::new(),
            words: 0,
            cells: 0,
            reused: 0,
        };
        dp.reset(query, k);
        dp
    }

    /// Re-targets the kernel at a new `(query, k)` pair, reusing
    /// allocations; counters restart at zero.
    pub fn reset(&mut self, query: &[u8], k: u32) {
        self.m = query.len();
        self.k = k;
        self.blocks = query.len().div_ceil(W);
        self.peq.clear();
        self.peq.resize(self.blocks * 256, 0);
        for (i, &c) in query.iter().enumerate() {
            self.peq[c as usize * self.blocks + i / W] |= 1 << (i % W);
        }
        self.last = if self.m == 0 { 0 } else { 1 << ((self.m - 1) % W) };
        self.states.clear();
        self.states
            .resize(self.blocks, BlockState { pv: !0u64, mv: 0 });
        self.scores.clear();
        self.scores.push(self.m as i64);
        self.words = 0;
        self.cells = 0;
        self.reused = 0;
    }

    /// The compiled threshold.
    pub fn threshold(&self) -> u32 {
        self.k
    }

    /// The compiled query length.
    pub fn pattern_len(&self) -> usize {
        self.m
    }

    /// Number of 64-bit blocks per DP column (0 for the empty query).
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Current stack depth (number of candidate bytes whose block
    /// states are checkpointed).
    pub fn depth(&self) -> usize {
        self.scores.len() - 1
    }

    /// 64-bit words advanced since the last [`MyersStackKernel::reset`]
    /// (`blocks` per candidate byte actually processed).
    pub fn words_advanced(&self) -> u64 {
        self.words
    }

    /// DP cells represented by the advanced words (`m` per candidate
    /// byte) — the scalar-kernel-comparable work figure.
    pub fn cells_computed(&self) -> u64 {
        self.cells
    }

    /// Words adopted from the checkpoint stack instead of being
    /// re-advanced (`blocks` per shared-prefix byte reused).
    pub fn words_reused(&self) -> u64 {
        self.reused
    }

    /// Decides `ed(query, candidate) ≤ k`, adopting the checkpointed
    /// block states for the candidate's first `shared_prefix` bytes.
    ///
    /// `shared_prefix` must not exceed the true common prefix between
    /// `candidate` and the previous candidate this kernel processed
    /// (pass `0` to restart from scratch, e.g. at a chunk boundary).
    /// Aborts as soon as the score can no longer descend back to `k`
    /// within the remaining bytes; the surviving (shorter) stack stays
    /// valid for the next resume.
    pub fn resume(&mut self, candidate: &[u8], shared_prefix: usize) -> Option<u32> {
        self.resume_bounded(candidate, shared_prefix, usize::MAX)
    }

    /// [`MyersStackKernel::resume`] with a cap on how deep the new
    /// checkpoint stack needs to reach.
    ///
    /// A sorted-arena sweep knows the *next* candidate's LCP before it
    /// processes the current one, and no later resume can ever reuse
    /// more than that many bytes (the running LCP minimum only shrinks).
    /// Passing that lookahead as `keep_limit` lets the kernel checkpoint
    /// only the reusable prefix and advance the candidate's tail in a
    /// single scratch column — register-resident, no per-byte stores —
    /// which collapses the stack-maintenance cost on low-LCP data (DNA
    /// reads share a handful of bytes out of ~100). Correctness is
    /// unaffected: the surviving stack is a prefix of the full one, and
    /// the next resume clamps its shared prefix to the surviving depth.
    pub fn resume_bounded(
        &mut self,
        candidate: &[u8],
        shared_prefix: usize,
        keep_limit: usize,
    ) -> Option<u32> {
        if self.m == 0 {
            // No bit-parallel form: the distance is trivially |candidate|.
            let d = candidate.len() as u32;
            return (d <= self.k).then_some(d);
        }
        let keep = shared_prefix.min(self.depth()).min(candidate.len());
        self.truncate(keep);
        self.reused += (keep * self.blocks) as u64;
        let n = candidate.len();
        let mut score = self.scores[keep];
        // The checkpointed score alone may already put k out of reach of
        // the remaining bytes — the stack analog of a dead prefix.
        if score_is_dead(score, self.k, n - keep) {
            return None;
        }
        // Checkpointed phase: columns the next resume may adopt.
        let ckpt_end = keep_limit.min(n);
        let mut pos = keep;
        let mut alive = true;
        if pos < ckpt_end {
            self.states.reserve((ckpt_end - pos) * self.blocks);
            self.scores.reserve(ckpt_end - pos);
            while pos < ckpt_end {
                score = self.push(candidate[pos], score);
                pos += 1;
                if score_is_dead(score, self.k, n - pos) {
                    alive = false;
                    break;
                }
            }
        }
        let mut advanced = (pos - keep) as u64;
        // Unstacked tail: nothing past `keep_limit` is ever resumed, so
        // the remaining bytes advance one scratch column in place.
        if alive && pos < n {
            let base = self.states.len() - self.blocks;
            self.scratch.clear();
            self.scratch.extend_from_slice(&self.states[base..]);
            for (j, &c) in candidate[pos..].iter().enumerate() {
                score = self.advance_scratch(c, score);
                advanced += 1;
                if score_is_dead(score, self.k, n - pos - j - 1) {
                    alive = false;
                    break;
                }
            }
        }
        // One batched counter update per candidate, not per byte.
        self.words += advanced * self.blocks as u64;
        self.cells += advanced * self.m as u64;
        (alive && score <= self.k as i64).then_some(score as u32)
    }

    /// Backtracks to stack depth `depth` (a no-op when already there).
    fn truncate(&mut self, depth: usize) {
        debug_assert!(depth <= self.depth());
        self.scores.truncate(depth + 1);
        self.states.truncate((depth + 1) * self.blocks);
    }

    /// Advances every block by candidate byte `c`, checkpointing the new
    /// column; takes the caller's running score (kept in a register
    /// across the candidate instead of re-read from the stack) and
    /// returns the new score at the last pattern row.
    ///
    /// The last block is peeled out of the carry-chain loop so the score
    /// update runs once per byte, branch-free.
    #[inline]
    fn push(&mut self, c: u8, score: i64) -> i64 {
        let blocks = self.blocks;
        debug_assert!(blocks > 0, "push requires a non-empty query");
        let base = self.states.len() - blocks;
        let pbase = c as usize * blocks;
        // Horizontal input into block 0 is +1: D[0][j] = j.
        let mut hin: i32 = 1;
        for b in 0..blocks - 1 {
            let st = self.states[base + b];
            let adv = advance_block(st.pv, st.mv, self.peq[pbase + b], hin);
            self.states.push(BlockState {
                pv: adv.pv,
                mv: adv.mv,
            });
            hin = adv.hout;
        }
        let st = self.states[base + blocks - 1];
        let adv = advance_block(st.pv, st.mv, self.peq[pbase + blocks - 1], hin);
        self.states.push(BlockState {
            pv: adv.pv,
            mv: adv.mv,
        });
        let score = score + i64::from(adv.ph_pre & self.last != 0)
            - i64::from(adv.mh_pre & self.last != 0);
        self.scores.push(score);
        score
    }

    /// Advances the scratch column by candidate byte `c` in place (the
    /// unstacked tail of a bounded resume); returns the new score at the
    /// last pattern row.
    #[inline]
    fn advance_scratch(&mut self, c: u8, score: i64) -> i64 {
        let blocks = self.blocks;
        let pbase = c as usize * blocks;
        let mut hin: i32 = 1;
        for b in 0..blocks - 1 {
            let st = self.scratch[b];
            let adv = advance_block(st.pv, st.mv, self.peq[pbase + b], hin);
            self.scratch[b] = BlockState {
                pv: adv.pv,
                mv: adv.mv,
            };
            hin = adv.hout;
        }
        let st = self.scratch[blocks - 1];
        let adv = advance_block(st.pv, st.mv, self.peq[pbase + blocks - 1], hin);
        self.scratch[blocks - 1] = BlockState {
            pv: adv.pv,
            mv: adv.mv,
        };
        score + i64::from(adv.ph_pre & self.last != 0) - i64::from(adv.mh_pre & self.last != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::levenshtein;
    use crate::myers_block::MyersBlock;

    fn common_prefix(a: &[u8], b: &[u8]) -> usize {
        a.iter().zip(b).take_while(|(x, y)| x == y).count()
    }

    /// Feeding a sorted candidate list with true LCPs must reproduce the
    /// within-k oracle on every candidate.
    fn check_stream(query: &[u8], candidates: &[&[u8]], k: u32) {
        let mut sorted: Vec<&[u8]> = candidates.to_vec();
        sorted.sort();
        let mut dp = MyersStackKernel::new(query, k);
        for (i, &c) in sorted.iter().enumerate() {
            let lcp = if i == 0 {
                0
            } else {
                common_prefix(sorted[i - 1], c)
            };
            let truth = levenshtein(query, c);
            assert_eq!(
                dp.resume(c, lcp),
                (truth <= k).then_some(truth),
                "query {query:?} candidate {c:?} k {k}"
            );
        }
    }

    #[test]
    fn matches_oracle_on_sorted_word_streams() {
        let words: &[&[u8]] = &[
            b"",
            b"Berlin",
            b"Bern",
            b"Berlingen",
            b"Bayern",
            b"B",
            b"Ulm",
            b"Ulmen",
            b"AGGCGT",
            b"AGAGT",
            b"AGAGT",
        ];
        for &q in words {
            for k in 0..5 {
                check_stream(q, words, k);
            }
        }
    }

    #[test]
    fn matches_oracle_across_block_boundaries() {
        // Queries straddling the one-word limit force the multi-block
        // carry chain through truncate/push cycles.
        for qlen in [63usize, 64, 65, 100, 129] {
            let q: Vec<u8> = (0..qlen).map(|i| b"ACGT"[i % 4]).collect();
            let mut cands: Vec<Vec<u8>> = Vec::new();
            for edit in 0..6 {
                let mut c = q.clone();
                for e in 0..edit {
                    c[(e * 17) % qlen] = b'N';
                }
                cands.push(c);
            }
            cands.push(q[..qlen / 2].to_vec());
            cands.push(vec![b'T'; qlen]);
            let cand_refs: Vec<&[u8]> = cands.iter().map(Vec::as_slice).collect();
            for k in [0, 4, 8, 16] {
                check_stream(&q, &cand_refs, k);
            }
        }
    }

    #[test]
    fn zero_shared_prefix_restarts_cleanly() {
        let words: &[&[u8]] = &[b"Ulm", b"Berlin", b"Ulm", b"Bern"];
        let mut dp = MyersStackKernel::new(b"Bern", 2);
        for &c in words {
            let truth = levenshtein(b"Bern", c);
            assert_eq!(dp.resume(c, 0), (truth <= 2).then_some(truth), "{c:?}");
        }
        assert_eq!(dp.words_reused(), 0);
    }

    #[test]
    fn candidate_shorter_than_stack_depth() {
        // "Berlingen" then its own prefix "Berlin": resume must pop to
        // the candidate's full length and read the stacked score.
        let mut dp = MyersStackKernel::new(b"Berlin", 2);
        dp.resume(b"Berlingen", 0);
        let words_before = dp.words_advanced();
        assert_eq!(dp.resume(b"Berlin", 6), Some(0));
        assert_eq!(dp.depth(), 6);
        // The whole candidate came from the stack: no new words.
        assert_eq!(dp.words_advanced(), words_before);
    }

    #[test]
    fn aborted_stack_stays_valid_for_the_next_resume() {
        // The first candidate dies mid-push, leaving a shorter stack;
        // the next resume's shared prefix exceeds the surviving depth
        // and must be clamped, not trusted.
        let q = vec![b'A'; 40];
        let mut dp = MyersStackKernel::new(&q, 1);
        let dead = vec![b'T'; 40];
        assert_eq!(dp.resume(&dead, 0), None);
        assert!(dp.depth() < 40, "abort must have fired early");
        let mut near = vec![b'T'; 40];
        near[39] = b'A';
        let truth = levenshtein(&q, &near);
        assert_eq!(dp.resume(&near, 39), (truth <= 1).then_some(truth));
    }

    #[test]
    fn dead_prefix_skips_without_advancing_words() {
        let q = vec![b'A'; 8];
        let mut dp = MyersStackKernel::new(&q, 1);
        assert_eq!(dp.resume(b"TTTTTTTT", 0), None);
        let words_after_first = dp.words_advanced();
        // Shares the surviving dead prefix; same length, so the
        // checkpointed score is already out of reach.
        let depth = dp.depth();
        assert_eq!(dp.resume(&vec![b'T'; depth], depth), None);
        assert_eq!(dp.words_advanced(), words_after_first);
    }

    #[test]
    fn empty_query_and_empty_candidates() {
        let mut dp = MyersStackKernel::new(b"", 1);
        assert_eq!(dp.resume(b"", 0), Some(0));
        assert_eq!(dp.resume(b"a", 0), Some(1));
        assert_eq!(dp.resume(b"ab", 1), None);
        let mut dp = MyersStackKernel::new(b"ab", 2);
        assert_eq!(dp.resume(b"", 0), Some(2));
    }

    #[test]
    fn reset_clears_stack_and_counters() {
        let mut dp = MyersStackKernel::new(b"Berlin", 2);
        dp.resume(b"Bern", 0);
        assert!(dp.words_advanced() > 0);
        dp.reset(b"Ulm", 1);
        assert_eq!(dp.depth(), 0);
        assert_eq!(dp.words_advanced(), 0);
        assert_eq!(dp.words_reused(), 0);
        assert_eq!(dp.threshold(), 1);
        assert_eq!(dp.resume(b"Ulm", 0), Some(0));
    }

    #[test]
    fn resumed_equals_fresh_blocked_within() {
        // The kernel resumed at a true shared prefix must agree with a
        // fresh MyersBlock::within on every candidate.
        let q: Vec<u8> = (0..100).map(|i| b"ACGT"[(i * 7) % 4]).collect();
        let fresh = MyersBlock::new(&q).unwrap();
        let mut cands: Vec<Vec<u8>> = (0..20)
            .map(|s| {
                let mut c = q.clone();
                c[(s * 13) % 100] = b'N';
                c[(s * 31) % 100] = b'G';
                c
            })
            .collect();
        cands.sort();
        for k in [2, 8, 16] {
            let mut dp = MyersStackKernel::new(&q, k);
            for (i, c) in cands.iter().enumerate() {
                let lcp = if i == 0 {
                    0
                } else {
                    common_prefix(&cands[i - 1], c)
                };
                assert_eq!(dp.resume(c, lcp), fresh.within(c, k), "k={k} i={i}");
            }
        }
    }

    #[test]
    fn bounded_checkpointing_matches_the_oracle_and_caps_depth() {
        // A sorted stream fed with true next-record LCP bounds must be
        // byte-identical to the unbounded kernel, while never stacking
        // deeper than the bound it was given.
        let mut cands: Vec<Vec<u8>> = (0..30u8)
            .map(|s| {
                let mut c: Vec<u8> = (0..80).map(|i| b"ACGT"[(i * 11 + 3) % 4]).collect();
                c[(s as usize * 7) % 80] = b"ACGTN"[s as usize % 5];
                c[(s as usize * 23) % 80] = b'N';
                c
            })
            .collect();
        cands.sort();
        cands.dedup();
        let q: Vec<u8> = (0..80).map(|i| b"ACGT"[(i * 11 + 3) % 4]).collect();
        for k in [1, 4, 8] {
            let mut bounded = MyersStackKernel::new(&q, k);
            let mut full = MyersStackKernel::new(&q, k);
            for (i, c) in cands.iter().enumerate() {
                let lcp = if i == 0 {
                    0
                } else {
                    common_prefix(&cands[i - 1], c)
                };
                let limit = if i + 1 < cands.len() {
                    common_prefix(c, &cands[i + 1])
                } else {
                    0
                };
                assert_eq!(
                    bounded.resume_bounded(c, lcp, limit),
                    full.resume(c, lcp),
                    "k={k} i={i}"
                );
                // The stack never grows past the bound, but may stay
                // deeper when the *incoming* shared prefix already was
                // (those checkpoints remain valid — only growth is
                // capped).
                assert!(bounded.depth() <= limit.max(lcp), "k={k} i={i}");
            }
            // The tail runs unstacked but is still counted as work.
            assert_eq!(bounded.words_advanced(), full.words_advanced());
            assert!(bounded.words_reused() <= full.words_reused());
        }
    }

    #[test]
    fn reuse_advances_fewer_words_than_restarting() {
        let a = b"Brandenburg an der Havel";
        let b = b"Brandenburg an der Spree";
        let q = b"Brandenburg an der Hafel";
        let mut reuse = MyersStackKernel::new(q, 4);
        reuse.resume(a, 0);
        reuse.resume(b, common_prefix(a, b));
        let mut restart = MyersStackKernel::new(q, 4);
        restart.resume(a, 0);
        restart.resume(b, 0);
        assert!(
            reuse.words_advanced() < restart.words_advanced(),
            "{} vs {}",
            reuse.words_advanced(),
            restart.words_advanced()
        );
        assert_eq!(reuse.words_reused(), common_prefix(a, b) as u64);
    }
}
