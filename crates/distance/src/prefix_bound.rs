//! Length-based subtree bounds for trie search (paper §4.1).
//!
//! The paper's prefix tree stores, per node, the minimal and maximal
//! length of the strings reachable below it, and widens the prefix check
//! by a tolerance `d_m` (eqs. (9)/(10)) that accounts for how far the
//! completion lengths can drift from the query length. This module
//! provides the equivalent *sound* formulation as a lower bound: any
//! string `y` below a node with `|y| ∈ [min_len, max_len]` satisfies
//! `ed(q, y) ≥ |  |q| − |y|  | ≥ length_interval_bound(...)`, so a node
//! whose bound exceeds `k` prunes its subtree.

/// Lower bound on `ed(q, y)` over all `y` with
/// `|y| ∈ [min_len, max_len]`, i.e. the distance from `query_len` to the
/// interval.
///
/// # Panics
/// Panics (debug) if `min_len > max_len`.
pub fn length_interval_bound(query_len: usize, min_len: usize, max_len: usize) -> u32 {
    debug_assert!(min_len <= max_len, "inverted length interval");
    if query_len < min_len {
        (min_len - query_len) as u32
    } else if query_len > max_len {
        (query_len - max_len) as u32
    } else {
        0
    }
}

/// The paper's completion tolerance `d_m` (eq. (10)): the largest possible
/// length drift between the query and any completion below the node. The
/// base-implementation trie admits a node when the prefix distance does
/// not exceed `k + d_m`.
pub fn completion_tolerance(query_len: usize, min_len: usize, max_len: usize) -> u32 {
    debug_assert!(min_len <= max_len, "inverted length interval");
    query_len
        .abs_diff(min_len)
        .max(query_len.abs_diff(max_len)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_is_distance_to_interval() {
        assert_eq!(length_interval_bound(5, 3, 8), 0);
        assert_eq!(length_interval_bound(3, 3, 8), 0);
        assert_eq!(length_interval_bound(8, 3, 8), 0);
        assert_eq!(length_interval_bound(2, 3, 8), 1);
        assert_eq!(length_interval_bound(12, 3, 8), 4);
    }

    #[test]
    fn tolerance_is_max_drift() {
        assert_eq!(completion_tolerance(5, 3, 8), 3);
        assert_eq!(completion_tolerance(2, 3, 8), 6);
        assert_eq!(completion_tolerance(10, 3, 8), 7);
        assert_eq!(completion_tolerance(5, 5, 5), 0);
    }

    #[test]
    fn bound_never_exceeds_tolerance_plus_k_logic() {
        // Sanity relation: the sound bound prunes at most as aggressively
        // as admitting everything within k + d_m would allow.
        for q in 0..12usize {
            for lo in 0..8usize {
                for hi in lo..10usize {
                    let b = length_interval_bound(q, lo, hi);
                    let t = completion_tolerance(q, lo, hi);
                    assert!(b <= t);
                }
            }
        }
    }
}
