//! Bounded edit distance over dictionary-compressed DNA (paper §6
//! future work).
//!
//! Same banded recurrence as [`crate::banded`], but the candidate is read
//! straight out of its 3-bit packed form ([`simsearch_data::PackedSeq`])
//! and the query is pre-translated to symbol codes once per query. The
//! `ablation_packing` benchmark compares this against the byte-level
//! kernel to answer the paper's question of whether fewer bits in memory
//! accelerate the computation.

use simsearch_data::packed::{PackedSeq, CODES};

/// Translates an ASCII DNA query into symbol codes (0..=4).
/// Returns `None` if a byte outside `{A, C, G, N, T}` occurs.
pub fn query_codes(query: &[u8]) -> Option<Vec<u8>> {
    query
        .iter()
        .map(|&b| CODES.iter().position(|&c| c == b).map(|p| p as u8))
        .collect()
}

/// Computes whether `ed(query, seq) ≤ k` over packed data, returning the
/// distance when it is. `query` must already be in code form
/// (see [`query_codes`]); `buf` holds the two reusable DP rows.
pub fn ed_within_packed_with(
    buf: &mut Vec<u32>,
    query: &[u8],
    seq: &PackedSeq,
    k: u32,
) -> Option<u32> {
    if query.len().abs_diff(seq.len()) > k as usize {
        return None;
    }
    let cap = k + 1;
    let kk = k as usize;
    let cols = query.len() + 1;
    buf.clear();
    buf.resize(cols * 2, cap);
    let (prev, curr) = buf.split_at_mut(cols);
    for (j, p) in prev.iter_mut().enumerate().take(kk + 1) {
        *p = j as u32;
    }
    let mut prev: &mut [u32] = prev;
    let mut curr: &mut [u32] = curr;
    for i in 1..=seq.len() {
        let sc = seq.code(i - 1);
        let lo = i.saturating_sub(kk);
        let hi = (i + kk).min(query.len());
        let mut row_min = cap;
        if lo == 0 {
            curr[0] = i as u32;
            row_min = curr[0];
        } else {
            curr[lo - 1] = cap;
        }
        for j in lo.max(1)..=hi {
            let v = if sc == query[j - 1] {
                prev[j - 1]
            } else {
                1 + prev[j].min(curr[j - 1]).min(prev[j - 1])
            };
            let v = v.min(cap);
            curr[j] = v;
            row_min = row_min.min(v);
        }
        if hi + 1 < cols {
            curr[hi + 1] = cap;
        }
        if row_min > k {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let result = prev[cols - 1];
    (result <= k).then_some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banded::ed_within_banded;

    fn pack(s: &[u8]) -> PackedSeq {
        PackedSeq::pack(s).unwrap()
    }

    #[test]
    fn query_codes_translate_and_reject() {
        assert_eq!(query_codes(b"ACGNT"), Some(vec![0, 1, 2, 3, 4]));
        assert_eq!(query_codes(b""), Some(vec![]));
        assert_eq!(query_codes(b"ACGU"), None);
    }

    #[test]
    fn agrees_with_byte_level_banded() {
        let words: &[&[u8]] = &[
            b"",
            b"A",
            b"ACGT",
            b"AGGCGT",
            b"AGAGT",
            b"NNNN",
            b"ACGTACGTACGTACGTACGTACGTACG", // crosses a word boundary later
        ];
        let mut buf = Vec::new();
        for &q in words {
            let qc = query_codes(q).unwrap();
            for &s in words {
                let p = pack(s);
                for k in 0..8 {
                    assert_eq!(
                        ed_within_packed_with(&mut buf, &qc, &p, k),
                        ed_within_banded(q, s, k),
                        "q={q:?} s={s:?} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn long_sequences_across_word_boundaries() {
        let x: Vec<u8> = (0..150).map(|i| CODES[i % 5]).collect();
        let mut y = x.clone();
        y[30] = if y[30] == b'A' { b'T' } else { b'A' };
        y.remove(100);
        let qc = query_codes(&x).unwrap();
        let p = pack(&y);
        let mut buf = Vec::new();
        assert_eq!(
            ed_within_packed_with(&mut buf, &qc, &p, 16),
            ed_within_banded(&x, &y, 16)
        );
    }
}
