//! Bit-parallel edit distance (Myers 1999, global-distance form of
//! Hyyrö 2002) for patterns of at most 64 bytes.
//!
//! An extension beyond the paper: the entire DP column is packed into one
//! machine word, so each text byte costs O(1) word operations. The
//! pattern's match masks (`Peq`) are compiled once per query with
//! [`Myers64::new`] and then reused against every candidate — ideal for a
//! sequential scan, where one query meets hundreds of thousands of
//! candidates. Patterns longer than 64 bytes use the blocked variant in
//! [`crate::myers_block`].

use crate::myers_block::{score_is_dead, PatternError};

/// A query compiled for bit-parallel distance computation
/// (pattern length ≤ 64).
#[derive(Clone)]
pub struct Myers64 {
    /// `peq[c]` has bit `i` set iff `pattern[i] == c`.
    peq: [u64; 256],
    /// Pattern length.
    m: u32,
    /// Bit mask of the last pattern position.
    last: u64,
}

impl Myers64 {
    /// Compiles `pattern`, reporting a structured reason on refusal:
    /// [`PatternError::Empty`], or [`PatternError::TooLong`] beyond
    /// 64 bytes (use [`crate::myers_block::MyersBlock`] instead).
    pub fn compile(pattern: &[u8]) -> Result<Self, PatternError> {
        if pattern.is_empty() {
            return Err(PatternError::Empty);
        }
        if pattern.len() > 64 {
            return Err(PatternError::TooLong {
                len: pattern.len(),
                max: 64,
            });
        }
        let mut peq = [0u64; 256];
        for (i, &c) in pattern.iter().enumerate() {
            peq[c as usize] |= 1 << i;
        }
        Ok(Self {
            peq,
            m: pattern.len() as u32,
            last: 1 << (pattern.len() - 1),
        })
    }

    /// Compiles `pattern`. Returns `None` if it is empty or longer than
    /// 64 bytes ([`Myers64::compile`] reports the reason).
    pub fn new(pattern: &[u8]) -> Option<Self> {
        Self::compile(pattern).ok()
    }

    /// Pattern length.
    pub fn pattern_len(&self) -> usize {
        self.m as usize
    }

    /// Match mask of byte `c` (bit `i` set iff `pattern[i] == c`).
    pub(crate) fn peq(&self, c: u8) -> u64 {
        self.peq[c as usize]
    }

    /// Computes `ed(pattern, text)` exactly.
    pub fn distance(&self, text: &[u8]) -> u32 {
        let mut pv = !0u64;
        let mut mv = 0u64;
        let mut score = self.m;
        for &c in text {
            let eq = self.peq[c as usize];
            let xv = eq | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let ph = mv | !(xh | pv);
            let mh = pv & xh;
            if ph & self.last != 0 {
                score += 1;
            }
            if mh & self.last != 0 {
                score -= 1;
            }
            // Horizontal input at the top boundary is +1 (D[0][j] = j).
            let ph = (ph << 1) | 1;
            let mh = mh << 1;
            pv = mh | !(xv | ph);
            mv = ph & xv;
        }
        score
    }

    /// Computes whether `ed(pattern, text) ≤ k`, returning the distance
    /// when it is. Aborts as soon as the score can no longer descend back
    /// to `k` within the remaining text (the score changes by at most one
    /// per text byte).
    pub fn within(&self, text: &[u8], k: u32) -> Option<u32> {
        if self.m.abs_diff(text.len() as u32) > k {
            return None;
        }
        let mut pv = !0u64;
        let mut mv = 0u64;
        let mut score = self.m;
        let n = text.len();
        for (j, &c) in text.iter().enumerate() {
            let eq = self.peq[c as usize];
            let xv = eq | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let ph = mv | !(xh | pv);
            let mh = pv & xh;
            if ph & self.last != 0 {
                score += 1;
            }
            if mh & self.last != 0 {
                score -= 1;
            }
            let ph = (ph << 1) | 1;
            let mh = mh << 1;
            pv = mh | !(xv | ph);
            mv = ph & xv;
            if score_is_dead(score as i64, k, n - 1 - j) {
                return None;
            }
        }
        (score <= k).then_some(score)
    }
}

impl std::fmt::Debug for Myers64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Myers64(m={})", self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::levenshtein;

    #[test]
    fn rejects_empty_and_oversized_patterns() {
        assert!(Myers64::new(b"").is_none());
        assert!(Myers64::new(&[b'a'; 65]).is_none());
        assert!(Myers64::new(&[b'a'; 64]).is_some());
    }

    #[test]
    fn matches_full_matrix_on_word_pairs() {
        let words: &[&[u8]] = &[
            b"a", b"ab", b"ba", b"abc", b"Berlin", b"Bern", b"Bayern", b"Ulm",
            b"AGGCGT", b"AGAGT", b"kitten", b"sitting",
        ];
        for &x in words {
            let m = Myers64::new(x).unwrap();
            for &y in words {
                assert_eq!(m.distance(y), levenshtein(x, y), "{x:?} vs {y:?}");
            }
            // Against empty text: distance is |x|.
            assert_eq!(m.distance(b""), x.len() as u32);
        }
    }

    #[test]
    fn within_agrees_with_distance() {
        let words: &[&[u8]] = &[b"Berlin", b"Bern", b"AGGCGT", b"AGAGT", b"a"];
        for &x in words {
            let m = Myers64::new(x).unwrap();
            for &y in words {
                let truth = levenshtein(x, y);
                for k in 0..8 {
                    let want = (truth <= k).then_some(truth);
                    assert_eq!(m.within(y, k), want, "{x:?} vs {y:?}, k={k}");
                }
            }
        }
    }

    #[test]
    fn full_64_byte_pattern_boundary() {
        let x = [b'A'; 64];
        let mut y = x;
        y[0] = b'T';
        y[63] = b'G';
        let m = Myers64::new(&x).unwrap();
        assert_eq!(m.distance(&y), 2);
        assert_eq!(m.within(&y, 2), Some(2));
        assert_eq!(m.within(&y, 1), None);
    }
}
