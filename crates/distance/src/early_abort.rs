//! The paper's "faster edit distance calculation" (§3.2): the length
//! filter plus the decisive-diagonal early abort, conditions (5)–(7).
//!
//! Two observations power the rung-2 speedup:
//!
//! 1. **Length filter** (eq. (5)): with `d = | |x| − |y| |`, the distance
//!    is at least `d`, so if `d > k` no matrix needs to be computed.
//! 2. **Decisive-diagonal abort** (eqs. (6)/(7)): values along any matrix
//!    diagonal never decrease as the computation proceeds
//!    (`M[i][j] ≥ M[i−1][j−1]`), and the result cell `M[|x|][|y|]` lies on
//!    the diagonal `{ (i, j) : i − j = |x| − |y| }`. Hence as soon as the
//!    entry of that diagonal in the current row exceeds `k`, the final
//!    value must exceed `k` and the computation can stop — the paper's
//!    worked example (Figure 2) aborts after `M[4][3]` for
//!    "AGGCGT" vs "AGAGT" with `k = 1`.
//!
//! The rows themselves are computed at full width, exactly as the paper's
//! rung 2 does (banding the row is a *further* optimization, provided by
//! [`crate::banded`] as an extension).

/// Computes whether `ed(x, y) ≤ k`, returning the distance when it is and
/// `None` otherwise (possibly after aborting early). Uses `buf` as the
/// reusable two-row DP state.
pub fn ed_within_early_abort_with(
    buf: &mut Vec<u32>,
    x: &[u8],
    y: &[u8],
    k: u32,
) -> Option<u32> {
    // (5): length filter.
    let d = x.len().abs_diff(y.len());
    if d > k as usize {
        return None;
    }
    let cols = y.len() + 1;
    buf.clear();
    buf.resize(cols * 2, 0);
    let (prev, curr) = buf.split_at_mut(cols);
    for (j, p) in prev.iter_mut().enumerate() {
        *p = j as u32;
    }
    let mut prev: &mut [u32] = prev;
    let mut curr: &mut [u32] = curr;
    let x_longer = x.len() >= y.len();
    for (i0, &xc) in x.iter().enumerate() {
        let i = i0 + 1;
        curr[0] = i as u32;
        for j in 1..cols {
            curr[j] = if xc == y[j - 1] {
                prev[j - 1]
            } else {
                1 + prev[j].min(curr[j - 1]).min(prev[j - 1])
            };
        }
        // (6)/(7): check the decisive diagonal through (|x|, |y|).
        let decisive_j = if x_longer {
            // i − d = j; only defined once the diagonal enters this row.
            i.checked_sub(d)
        } else {
            // i = j − d, i.e. j = i + d; always within this row since
            // i + d ≤ |x| + (|y| − |x|) = |y|.
            Some(i + d)
        };
        if let Some(j) = decisive_j {
            if j < cols && curr[j] > k {
                return None;
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let result = prev[cols - 1];
    (result <= k).then_some(result)
}

/// Convenience wrapper with a throwaway buffer.
pub fn ed_within_early_abort(x: &[u8], y: &[u8], k: u32) -> Option<u32> {
    let mut buf = Vec::new();
    ed_within_early_abort_with(&mut buf, x, y, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::levenshtein;

    #[test]
    fn paper_figure_2_abort() {
        // "AGGCGT" vs "AGAGT" has distance 2, so with k = 1 the kernel
        // must reject (the paper shows the abort firing at M[4][3]).
        assert_eq!(ed_within_early_abort(b"AGGCGT", b"AGAGT", 1), None);
        assert_eq!(ed_within_early_abort(b"AGGCGT", b"AGAGT", 2), Some(2));
    }

    #[test]
    fn length_filter_rejects_without_computing() {
        assert_eq!(ed_within_early_abort(b"ab", b"abcdef", 3), None);
        assert_eq!(ed_within_early_abort(b"abcdef", b"ab", 3), None);
        // Boundary: d == k is allowed.
        assert_eq!(ed_within_early_abort(b"ab", b"abcd", 2), Some(2));
    }

    #[test]
    fn agrees_with_full_matrix_on_word_pairs() {
        let words: &[&[u8]] = &[
            b"", b"a", b"ab", b"ba", b"abc", b"Berlin", b"Bern", b"Bayern", b"Ulm",
            b"AGGCGT", b"AGAGT", b"kitten", b"sitting",
        ];
        let mut buf = Vec::new();
        for &x in words {
            for &y in words {
                let truth = levenshtein(x, y);
                for k in 0..6 {
                    let got = ed_within_early_abort_with(&mut buf, x, y, k);
                    let want = (truth <= k).then_some(truth);
                    assert_eq!(got, want, "x={x:?} y={y:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn exact_match_at_k_zero() {
        assert_eq!(ed_within_early_abort(b"Berlin", b"Berlin", 0), Some(0));
        assert_eq!(ed_within_early_abort(b"Berlin", b"Bern", 0), None);
    }

    #[test]
    fn empty_strings() {
        assert_eq!(ed_within_early_abort(b"", b"", 0), Some(0));
        assert_eq!(ed_within_early_abort(b"", b"ab", 2), Some(2));
        assert_eq!(ed_within_early_abort(b"", b"ab", 1), None);
    }
}
