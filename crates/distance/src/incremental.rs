//! Incremental (row-stack) edit distance for trie descent.
//!
//! The index-based solution (paper §4.1) walks a prefix tree and maintains
//! the DP table row by row: descending one tree edge appends the row for
//! the extended prefix, backtracking pops it. [`IncrementalDp`] is that
//! row stack, with the diagonal band `|i − j| ≤ k` applied (out-of-band
//! cells are capped at `k + 1`, which is exact for within-`k` decisions).
//!
//! Pruning uses the standard trie lemma: every cell of row `i + 1` is
//! derived from cells of rows `i`/`i + 1` by non-decreasing operations, so
//! once *every* cell of the current row exceeds `k`, every cell of every
//! deeper row does too and the whole subtree can be skipped. This is the
//! sound, band-compatible form of the paper's prefix condition
//! `ed(x_0..i, y_0..i) ≤ k + d_m`; the length-interval part of that
//! condition (the `d_m` tolerance fed by the per-node min/max lengths) is
//! provided by [`crate::prefix_bound`].

/// Row-stack DP state for one query, reusable across trie descents.
#[derive(Debug, Clone)]
pub struct IncrementalDp {
    query: Vec<u8>,
    k: u32,
    /// Diagonal band half-width (columns outside `|i − j| ≤ band` are
    /// not computed).
    band: usize,
    cap: u32,
    /// Row width = query length + 1.
    width: usize,
    /// Stacked rows, `width` cells each; row `i` corresponds to a prefix
    /// of length `i`.
    rows: Vec<u32>,
    /// Minimum cell value per stacked row.
    mins: Vec<u32>,
}

impl IncrementalDp {
    /// Creates the state for `query` at threshold `k`, with row 0
    /// (the empty prefix) already on the stack. Cells are banded and
    /// capped at `k + 1` — exact for within-`k` decisions, the fast mode.
    pub fn new(query: &[u8], k: u32) -> Self {
        let mut dp = Self {
            query: Vec::new(),
            k: 0,
            band: 0,
            cap: 0,
            width: 0,
            rows: Vec::new(),
            mins: Vec::new(),
        };
        dp.reset(query, k);
        dp
    }

    /// Creates the state with *full-width, uncapped* rows — the exact
    /// cell values the paper's base index computes, as required by its
    /// prefix condition `ed(x_0..i, y_0..i) ≤ k + d_m` whose right-hand
    /// side exceeds `k` (see [`IncrementalDp::prefix_distance`]).
    pub fn new_unbounded(query: &[u8], k: u32) -> Self {
        let mut dp = Self::new(query, k);
        dp.reset_unbounded(query, k);
        dp
    }

    /// Re-initializes for a new query/threshold, reusing allocations
    /// (banded/capped mode).
    pub fn reset(&mut self, query: &[u8], k: u32) {
        self.reset_with(query, k, k as usize, k + 1);
    }

    /// Re-initializes in full-width uncapped mode, reusing allocations.
    pub fn reset_unbounded(&mut self, query: &[u8], k: u32) {
        // The band never excludes a column and the cap is unreachable
        // (cell values are bounded by max(depth, |query|)).
        self.reset_with(query, k, usize::MAX / 4, u32::MAX / 4);
    }

    fn reset_with(&mut self, query: &[u8], k: u32, band: usize, cap: u32) {
        self.query.clear();
        self.query.extend_from_slice(query);
        self.k = k;
        self.band = band;
        self.cap = cap;
        self.width = query.len() + 1;
        self.rows.clear();
        self.mins.clear();
        // Row 0: M[0][j] = j, capped outside the band.
        for j in 0..self.width {
            self.rows.push((j as u32).min(self.cap));
        }
        self.mins.push(0);
    }

    /// Threshold `k`.
    pub fn threshold(&self) -> u32 {
        self.k
    }

    /// Current prefix length (number of pushed symbols).
    pub fn depth(&self) -> usize {
        self.mins.len() - 1
    }

    /// Minimum cell value of the current row. A subtree can be pruned as
    /// soon as this exceeds `k` — see [`IncrementalDp::can_extend`].
    pub fn row_min(&self) -> u32 {
        *self.mins.last().expect("row 0 always present")
    }

    /// Whether any extension of the current prefix could still reach a
    /// distance ≤ `k` (the trie-pruning lemma).
    pub fn can_extend(&self) -> bool {
        self.row_min() <= self.k
    }

    /// Edit distance between the query and the current prefix, if ≤ `k`.
    pub fn distance(&self) -> Option<u32> {
        let last = self.rows[self.rows.len() - 1];
        (last <= self.k).then_some(last)
    }

    /// The paper's prefix distance `ed(x_0..i, y_0..i)` (§4.1, eq. (9)):
    /// the distance between the pushed prefix and the equally long query
    /// prefix (the whole query when the prefix is longer). Exact only in
    /// unbounded mode; in banded mode the value saturates at `k + 1`.
    pub fn prefix_distance(&self) -> u32 {
        let i = self.depth();
        let col = i.min(self.width - 1);
        self.rows[i * self.width + col]
    }

    /// Appends the row for the prefix extended by `c`; returns the new
    /// row's minimum.
    pub fn push(&mut self, c: u8) -> u32 {
        let i = self.depth() + 1;
        let kk = self.band;
        let cap = self.cap;
        let w = self.width;
        let prev_start = self.rows.len() - w;
        self.rows.resize(self.rows.len() + w, cap);
        let (prev_rows, curr) = self.rows.split_at_mut(prev_start + w);
        let prev = &prev_rows[prev_start..];
        let lo = i.saturating_sub(kk);
        let hi = i.saturating_add(kk).min(w - 1);
        let mut row_min = cap;
        if lo == 0 {
            curr[0] = (i as u32).min(cap);
            row_min = curr[0];
        }
        for j in lo.max(1)..=hi {
            let v = if c == self.query[j - 1] {
                prev[j - 1]
            } else {
                1 + prev[j].min(curr[j - 1]).min(prev[j - 1])
            };
            let v = v.min(cap);
            curr[j] = v;
            row_min = row_min.min(v);
        }
        self.mins.push(row_min);
        row_min
    }

    /// Removes the top row (backtracks one symbol).
    ///
    /// # Panics
    /// Panics if only row 0 remains.
    pub fn pop(&mut self) {
        assert!(self.depth() > 0, "cannot pop the empty-prefix row");
        self.mins.pop();
        self.rows.truncate(self.rows.len() - self.width);
    }

    /// Backtracks to prefix length `depth` (pops any number of rows).
    ///
    /// # Panics
    /// Panics if `depth` exceeds the current depth.
    pub fn truncate(&mut self, depth: usize) {
        assert!(depth <= self.depth(), "cannot truncate upwards");
        let rows_to_keep = depth + 1;
        self.mins.truncate(rows_to_keep);
        self.rows.truncate(rows_to_keep * self.width);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::levenshtein;

    /// Pushing a whole string must yield its true distance to the query.
    fn check_pair(q: &[u8], s: &[u8], k: u32) {
        let mut dp = IncrementalDp::new(q, k);
        for &c in s {
            dp.push(c);
        }
        let truth = levenshtein(q, s);
        assert_eq!(
            dp.distance(),
            (truth <= k).then_some(truth),
            "q={q:?} s={s:?} k={k}"
        );
    }

    #[test]
    fn matches_full_matrix_when_fully_pushed() {
        let words: &[&[u8]] = &[
            b"", b"a", b"ab", b"Berlin", b"Bern", b"Bayern", b"AGGCGT", b"AGAGT",
        ];
        for &q in words {
            for &s in words {
                for k in 0..5 {
                    check_pair(q, s, k);
                }
            }
        }
    }

    #[test]
    fn push_pop_restores_state() {
        let mut dp = IncrementalDp::new(b"Berlin", 2);
        dp.push(b'B');
        dp.push(b'e');
        let min_at_2 = dp.row_min();
        let dist_at_2 = dp.distance();
        dp.push(b'x');
        dp.push(b'y');
        dp.truncate(2);
        assert_eq!(dp.depth(), 2);
        assert_eq!(dp.row_min(), min_at_2);
        assert_eq!(dp.distance(), dist_at_2);
        dp.pop();
        assert_eq!(dp.depth(), 1);
    }

    #[test]
    fn prune_lemma_holds_on_divergent_prefix() {
        // Query "AAAA", prefix "TTTTT" with k = 2: after 3+ pushes every
        // cell exceeds 2 and the subtree is dead.
        let mut dp = IncrementalDp::new(b"AAAA", 2);
        let mut became_dead = false;
        for _ in 0..5 {
            dp.push(b'T');
            if !dp.can_extend() {
                became_dead = true;
                break;
            }
        }
        assert!(became_dead);
        // Once dead, pushing anything keeps it dead (monotonicity).
        dp.push(b'A');
        assert!(!dp.can_extend());
    }

    #[test]
    fn distance_is_none_outside_band() {
        let mut dp = IncrementalDp::new(b"abc", 1);
        for c in *b"abcxyz" {
            dp.push(c);
        }
        // ed("abc", "abcxyz") = 3 > 1.
        assert_eq!(dp.distance(), None);
    }

    #[test]
    fn reset_reuses_allocations() {
        let mut dp = IncrementalDp::new(b"hello", 1);
        dp.push(b'h');
        dp.reset(b"ab", 3);
        assert_eq!(dp.depth(), 0);
        assert_eq!(dp.threshold(), 3);
        dp.push(b'a');
        dp.push(b'b');
        assert_eq!(dp.distance(), Some(0));
    }

    #[test]
    fn empty_query_counts_insertions() {
        let mut dp = IncrementalDp::new(b"", 2);
        assert_eq!(dp.distance(), Some(0));
        dp.push(b'x');
        assert_eq!(dp.distance(), Some(1));
        dp.push(b'y');
        assert_eq!(dp.distance(), Some(2));
        dp.push(b'z');
        assert_eq!(dp.distance(), None);
        assert!(!dp.can_extend());
    }

    #[test]
    #[should_panic(expected = "cannot pop")]
    fn pop_on_empty_stack_panics() {
        IncrementalDp::new(b"a", 1).pop();
    }

    #[test]
    fn unbounded_mode_has_exact_cells() {
        // In unbounded mode the final cell is the exact distance even far
        // beyond k, and the prefix distance is exact at every depth.
        let q = b"AGGCGT";
        let s = b"TTTTTTTTTT";
        let mut dp = IncrementalDp::new_unbounded(q, 1);
        for (i, &c) in s.iter().enumerate() {
            dp.push(c);
            let prefix = &s[..=i];
            let expect = levenshtein(&q[..q.len().min(i + 1)], prefix);
            assert_eq!(dp.prefix_distance(), expect, "depth {}", i + 1);
        }
        assert_eq!(dp.distance(), None); // 8 > k = 1
        assert_eq!(dp.prefix_distance(), levenshtein(q, s));
    }

    #[test]
    fn banded_prefix_distance_saturates() {
        let mut dp = IncrementalDp::new(b"AAAA", 1);
        for c in *b"TTTT" {
            dp.push(c);
        }
        // True prefix distance is 4; banded mode caps at k + 1 = 2.
        assert_eq!(dp.prefix_distance(), 2);
    }
}
