//! Resumable row-stack edit distance for sorted-prefix scans.
//!
//! [`crate::incremental::IncrementalDp`] amortizes DP rows across shared
//! prefixes during *trie descent*. [`RowStackKernel`] generalizes the
//! same row stack to any sequence of candidates presented with their
//! shared-prefix lengths — in particular a lexicographically sorted flat
//! arena, where `lcp[i]` between adjacent records plays the role the
//! trie's edges play. For candidate *i + 1* the kernel pops the stack to
//! `lcp[i + 1]` and recomputes only the suffix rows, which hands the
//! sequential scan the trie's only structural advantage (paper eqs.
//! (9)/(10)) while keeping strictly sequential memory access.
//!
//! Two row shapes are provided, mirroring the scan ladder's kernels:
//!
//! * [`RowStackMode::FullWidth`] — full-width rows like the paper's
//!   rung-2 kernel, aborted via the row-minimum lemma;
//! * [`RowStackMode::Banded`] — Ukkonen band `|i − j| ≤ k`, the modern
//!   variant (cells outside the band are capped at `k + 1`, exact for
//!   within-`k` decisions).
//!
//! Like [`crate::counted`], the kernel counts the DP cells it actually
//! computes and the rows it reuses, so diagnostics can report how much
//! work LCP reuse saves versus a from-scratch kernel.

/// Row shape of a [`RowStackKernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RowStackMode {
    /// Full-width rows (rung-2 style), row-minimum abort only.
    FullWidth,
    /// Banded rows `|i − j| ≤ k` (modern variant), far fewer cells per
    /// row at small thresholds.
    #[default]
    Banded,
}

impl RowStackMode {
    /// Both modes, for ablation sweeps.
    pub const ALL: [RowStackMode; 2] = [RowStackMode::FullWidth, RowStackMode::Banded];

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            RowStackMode::FullWidth => "full-width",
            RowStackMode::Banded => "banded",
        }
    }
}

/// A resumable row-stack DP for one `(query, k)` pair, applied to a
/// stream of candidates that arrive with their shared-prefix lengths.
///
/// # Examples
///
/// ```
/// use simsearch_distance::{RowStackKernel, RowStackMode};
///
/// let mut dp = RowStackKernel::new(RowStackMode::Banded, b"Berlin", 2);
/// // Sorted candidates: "Berlin", "Berlingen", "Bern" (lcp 6, then 3).
/// assert_eq!(dp.resume(b"Berlin", 0), Some(0));
/// assert_eq!(dp.resume(b"Berlingen", 6), None); // distance 3 > k
/// assert_eq!(dp.resume(b"Bern", 3), Some(2));
/// assert!(dp.rows_reused() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct RowStackKernel {
    query: Vec<u8>,
    k: u32,
    /// Band half-width: `k` in banded mode, effectively unbounded in
    /// full-width mode.
    band: usize,
    /// Cell cap `k + 1` — exact for within-`k` decisions in both modes.
    cap: u32,
    /// Row width = query length + 1.
    width: usize,
    /// Stacked rows, `width` cells each; row `i` belongs to the current
    /// candidate's prefix of length `i`.
    rows: Vec<u32>,
    /// Minimum cell value per stacked row.
    mins: Vec<u32>,
    mode: RowStackMode,
    cells: u64,
    reused: u64,
}

impl RowStackKernel {
    /// Creates the kernel for `query` at threshold `k`, with row 0 (the
    /// empty prefix) on the stack.
    pub fn new(mode: RowStackMode, query: &[u8], k: u32) -> Self {
        let mut dp = Self {
            query: Vec::new(),
            k: 0,
            band: 0,
            cap: 0,
            width: 0,
            rows: Vec::new(),
            mins: Vec::new(),
            mode,
            cells: 0,
            reused: 0,
        };
        dp.reset(query, k);
        dp
    }

    /// Re-targets the kernel at a new `(query, k)` pair, reusing
    /// allocations and keeping the mode; counters restart at zero.
    pub fn reset(&mut self, query: &[u8], k: u32) {
        self.query.clear();
        self.query.extend_from_slice(query);
        self.k = k;
        self.band = match self.mode {
            RowStackMode::FullWidth => usize::MAX / 4,
            RowStackMode::Banded => k as usize,
        };
        self.cap = k + 1;
        self.width = query.len() + 1;
        self.rows.clear();
        self.mins.clear();
        for j in 0..self.width {
            self.rows.push((j as u32).min(self.cap));
        }
        self.mins.push(0);
        self.cells = 0;
        self.reused = 0;
    }

    /// The row shape this kernel was built with.
    pub fn mode(&self) -> RowStackMode {
        self.mode
    }

    /// The compiled threshold.
    pub fn threshold(&self) -> u32 {
        self.k
    }

    /// Current stack depth (number of candidate symbols whose rows are
    /// materialized).
    pub fn depth(&self) -> usize {
        self.mins.len() - 1
    }

    /// DP cells computed since the last [`RowStackKernel::reset`] — the
    /// quantity every optimization in the paper targets.
    pub fn cells_computed(&self) -> u64 {
        self.cells
    }

    /// Rows reused from the stack instead of being recomputed (each one
    /// saves up to a full row of cells versus a from-scratch kernel).
    pub fn rows_reused(&self) -> u64 {
        self.reused
    }

    /// Decides `ed(query, candidate) ≤ k`, reusing the stacked rows for
    /// the candidate's first `shared_prefix` symbols.
    ///
    /// `shared_prefix` must not exceed the true common prefix between
    /// `candidate` and the previous candidate this kernel processed
    /// (pass `0` to restart from scratch, e.g. at a partition boundary).
    /// Aborts early — possibly leaving a dead row on top of the stack —
    /// as soon as the row minimum exceeds `k`; the lemma that makes this
    /// sound is the same one that prunes trie subtrees.
    pub fn resume(&mut self, candidate: &[u8], shared_prefix: usize) -> Option<u32> {
        let keep = shared_prefix.min(self.depth()).min(candidate.len());
        self.truncate(keep);
        self.reused += keep as u64;
        if self.mins[keep] > self.k {
            // The kept prefix alone already exceeds k everywhere; every
            // extension (this whole candidate) is dead.
            return None;
        }
        for &c in &candidate[keep..] {
            if self.push(c) > self.k {
                return None;
            }
        }
        let last = self.rows[self.rows.len() - 1];
        (last <= self.k).then_some(last)
    }

    /// Backtracks to stack depth `depth` (a no-op when already there).
    fn truncate(&mut self, depth: usize) {
        debug_assert!(depth <= self.depth());
        self.mins.truncate(depth + 1);
        self.rows.truncate((depth + 1) * self.width);
    }

    /// Appends the row for the prefix extended by `c`; returns the new
    /// row's minimum. Identical recurrence to
    /// [`crate::incremental::IncrementalDp::push`], plus cell counting.
    fn push(&mut self, c: u8) -> u32 {
        let i = self.depth() + 1;
        let kk = self.band;
        let cap = self.cap;
        let w = self.width;
        let prev_start = self.rows.len() - w;
        self.rows.resize(self.rows.len() + w, cap);
        let (prev_rows, curr) = self.rows.split_at_mut(prev_start + w);
        let prev = &prev_rows[prev_start..];
        let lo = i.saturating_sub(kk);
        let hi = i.saturating_add(kk).min(w - 1);
        let mut row_min = cap;
        if lo == 0 {
            curr[0] = (i as u32).min(cap);
            row_min = curr[0];
            self.cells += 1;
        }
        for j in lo.max(1)..=hi {
            let v = if c == self.query[j - 1] {
                prev[j - 1]
            } else {
                1 + prev[j].min(curr[j - 1]).min(prev[j - 1])
            };
            let v = v.min(cap);
            curr[j] = v;
            row_min = row_min.min(v);
        }
        self.cells += (hi + 1).saturating_sub(lo.max(1)) as u64;
        self.mins.push(row_min);
        row_min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::levenshtein;

    fn common_prefix(a: &[u8], b: &[u8]) -> usize {
        a.iter().zip(b).take_while(|(x, y)| x == y).count()
    }

    /// Feeding a sorted candidate list with true LCPs must reproduce the
    /// within-k oracle on every candidate, in both modes.
    fn check_stream(query: &[u8], candidates: &[&[u8]], k: u32) {
        let mut sorted: Vec<&[u8]> = candidates.to_vec();
        sorted.sort();
        for mode in RowStackMode::ALL {
            let mut dp = RowStackKernel::new(mode, query, k);
            for (i, &c) in sorted.iter().enumerate() {
                let lcp = if i == 0 {
                    0
                } else {
                    common_prefix(sorted[i - 1], c)
                };
                let truth = levenshtein(query, c);
                assert_eq!(
                    dp.resume(c, lcp),
                    (truth <= k).then_some(truth),
                    "mode {} query {:?} candidate {:?} k {}",
                    mode.name(),
                    query,
                    c,
                    k
                );
            }
        }
    }

    #[test]
    fn matches_oracle_on_sorted_word_streams() {
        let words: &[&[u8]] = &[
            b"",
            b"Berlin",
            b"Bern",
            b"Berlingen",
            b"Bayern",
            b"B",
            b"Ulm",
            b"Ulmen",
            b"AGGCGT",
            b"AGAGT",
            b"AGAGT",
        ];
        for &q in words {
            for k in 0..5 {
                check_stream(q, words, k);
            }
        }
    }

    #[test]
    fn zero_shared_prefix_restarts_cleanly() {
        // Unsorted stream with shared_prefix = 0 everywhere must behave
        // like a from-scratch kernel (partition-boundary semantics).
        let words: &[&[u8]] = &[b"Ulm", b"Berlin", b"Ulm", b"Bern"];
        let mut dp = RowStackKernel::new(RowStackMode::Banded, b"Bern", 2);
        for &c in words {
            let truth = levenshtein(b"Bern", c);
            assert_eq!(dp.resume(c, 0), (truth <= 2).then_some(truth), "{c:?}");
        }
        assert_eq!(dp.rows_reused(), 0);
    }

    #[test]
    fn dead_prefix_skips_without_computing() {
        let mut dp = RowStackKernel::new(RowStackMode::Banded, b"AAAA", 1);
        assert_eq!(dp.resume(b"TTTT", 0), None);
        let cells_after_first = dp.cells_computed();
        // The next candidate shares the dead "TTT" prefix: the kernel
        // must answer from the stack without new rows.
        assert_eq!(dp.resume(b"TTTA", 3), None);
        assert_eq!(dp.cells_computed(), cells_after_first);
    }

    #[test]
    fn lcp_reuse_computes_fewer_cells_than_restarting() {
        let a = b"Brandenburg an der Havel";
        let b = b"Brandenburg an der Spree";
        let q = b"Brandenburg an der Hafel";
        let mut reuse = RowStackKernel::new(RowStackMode::Banded, q, 2);
        reuse.resume(a, 0);
        reuse.resume(b, common_prefix(a, b));
        let mut restart = RowStackKernel::new(RowStackMode::Banded, q, 2);
        restart.resume(a, 0);
        restart.resume(b, 0);
        assert!(
            reuse.cells_computed() < restart.cells_computed(),
            "{} vs {}",
            reuse.cells_computed(),
            restart.cells_computed()
        );
        assert_eq!(reuse.rows_reused(), common_prefix(a, b) as u64);
    }

    #[test]
    fn banded_computes_fewer_cells_than_full_width() {
        let q = vec![b'A'; 60];
        let mut c = q.clone();
        c[30] = b'T';
        let mut full = RowStackKernel::new(RowStackMode::FullWidth, &q, 2);
        let mut banded = RowStackKernel::new(RowStackMode::Banded, &q, 2);
        assert_eq!(full.resume(&c, 0), banded.resume(&c, 0));
        assert!(banded.cells_computed() < full.cells_computed());
    }

    #[test]
    fn reset_clears_stack_and_counters() {
        let mut dp = RowStackKernel::new(RowStackMode::Banded, b"Berlin", 2);
        dp.resume(b"Bern", 0);
        assert!(dp.cells_computed() > 0);
        dp.reset(b"Ulm", 1);
        assert_eq!(dp.depth(), 0);
        assert_eq!(dp.cells_computed(), 0);
        assert_eq!(dp.rows_reused(), 0);
        assert_eq!(dp.threshold(), 1);
        assert_eq!(dp.resume(b"Ulm", 0), Some(0));
    }

    #[test]
    fn empty_query_and_empty_candidates() {
        let mut dp = RowStackKernel::new(RowStackMode::Banded, b"", 1);
        assert_eq!(dp.resume(b"", 0), Some(0));
        assert_eq!(dp.resume(b"a", 0), Some(1));
        assert_eq!(dp.resume(b"ab", 1), None);
        let mut dp = RowStackKernel::new(RowStackMode::FullWidth, b"ab", 2);
        assert_eq!(dp.resume(b"", 0), Some(2));
    }

    #[test]
    fn candidate_shorter_than_stack_depth() {
        // "Berlingen" then its own prefix "Berlin": resume must pop to
        // the candidate's full length and read the stacked answer.
        let mut dp = RowStackKernel::new(RowStackMode::Banded, b"Berlin", 2);
        dp.resume(b"Berlingen", 0);
        assert_eq!(dp.resume(b"Berlin", 6), Some(0));
        assert_eq!(dp.depth(), 6);
    }
}
