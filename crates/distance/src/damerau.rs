//! Damerau–Levenshtein distance in its optimal-string-alignment (OSA)
//! form: the three Levenshtein operations plus transposition of two
//! adjacent symbols, with the restriction that no substring is edited
//! twice.
//!
//! An extension beyond the paper — adjacent transpositions are the most
//! common typing error in the natural-language workload the paper's
//! introduction motivates, so the library exposes the measure alongside
//! the plain edit distance.

/// Computes the OSA Damerau–Levenshtein distance.
pub fn damerau_osa(x: &[u8], y: &[u8]) -> u32 {
    let rows = x.len() + 1;
    let cols = y.len() + 1;
    // Three rolling rows (the transposition term reaches back two rows).
    let mut r2 = vec![0u32; cols]; // row i-2
    let mut r1: Vec<u32> = (0..cols as u32).collect(); // row i-1
    let mut r0 = vec![0u32; cols]; // row i
    for i in 1..rows {
        r0[0] = i as u32;
        for j in 1..cols {
            let cost = u32::from(x[i - 1] != y[j - 1]);
            let mut v = (r1[j] + 1).min(r0[j - 1] + 1).min(r1[j - 1] + cost);
            if i > 1 && j > 1 && x[i - 1] == y[j - 2] && x[i - 2] == y[j - 1] {
                v = v.min(r2[j - 2] + 1);
            }
            r0[j] = v;
        }
        std::mem::swap(&mut r2, &mut r1);
        std::mem::swap(&mut r1, &mut r0);
    }
    r1[cols - 1]
}

/// Computes whether the OSA distance is ≤ `k`, returning it when it is.
pub fn damerau_osa_within(x: &[u8], y: &[u8], k: u32) -> Option<u32> {
    if x.len().abs_diff(y.len()) > k as usize {
        return None;
    }
    let d = damerau_osa(x, y);
    (d <= k).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::levenshtein;

    #[test]
    fn transposition_costs_one() {
        assert_eq!(damerau_osa(b"ab", b"ba"), 1);
        assert_eq!(levenshtein(b"ab", b"ba"), 2);
        assert_eq!(damerau_osa(b"Berlni", b"Berlin"), 1);
    }

    #[test]
    fn equals_levenshtein_without_transpositions() {
        let pairs: &[(&[u8], &[u8])] = &[
            (b"", b""),
            (b"", b"abc"),
            (b"kitten", b"sitting"),
            (b"AGGCGT", b"AGAGT"),
        ];
        for &(x, y) in pairs {
            assert_eq!(damerau_osa(x, y), levenshtein(x, y));
        }
    }

    #[test]
    fn never_exceeds_levenshtein() {
        let words: &[&[u8]] = &[b"abcd", b"acbd", b"badc", b"dcba", b"abdc"];
        for &x in words {
            for &y in words {
                assert!(damerau_osa(x, y) <= levenshtein(x, y));
            }
        }
    }

    #[test]
    fn osa_classic_ca_abc() {
        // The classic case separating OSA from unrestricted Damerau:
        // OSA("CA", "ABC") = 3 (unrestricted would be 2).
        assert_eq!(damerau_osa(b"CA", b"ABC"), 3);
    }

    #[test]
    fn within_respects_threshold() {
        assert_eq!(damerau_osa_within(b"ab", b"ba", 1), Some(1));
        assert_eq!(damerau_osa_within(b"ab", b"ba", 0), None);
        assert_eq!(damerau_osa_within(b"a", b"abcd", 2), None);
    }
}
