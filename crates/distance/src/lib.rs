//! # simsearch-distance
//!
//! Edit-distance kernels for the `simsearch` workspace — the reproduction
//! of *"Trying to outperform a well-known index with a sequential scan"*
//! (EDBT/ICDT 2013).
//!
//! The paper's scan ladder is, at its core, a sequence of increasingly
//! careful implementations of one recurrence (§2.2, eqs. (2)–(4)). This
//! crate provides every rung's kernel plus the extensions:
//!
//! | module | kernel | role |
//! |---|---|---|
//! | [`full`] | full matrix (fresh allocation / reusable buffer) | paper rung 1, test oracle, Figure 1 |
//! | [`two_row`] | rolling two-row | stepping stone to rung 4 |
//! | [`early_abort`] | length filter + decisive-diagonal abort | paper rung 2 (§3.2, Figure 2) |
//! | [`banded`] | Ukkonen band + per-row abort | extension; kernel ablation |
//! | [`myers`], [`myers_block`] | bit-parallel (≤64 / blocked) | extension; kernel ablation |
//! | [`incremental`] | row-stack DP with band | trie descent (§4.1) |
//! | [`row_stack`] | resumable row-stack (LCP reuse, counting) | sorted-prefix scan (rung V7) |
//! | [`myers_stack`] | resumable blocked bit-parallel (LCP reuse at word granularity) | bit-parallel sweep (rung V8) |
//! | [`prefix_bound`] | length-interval bounds | trie pruning (§4.1, eqs. (9)/(10)) |
//! | [`hamming`], [`damerau`] | alternative measures | PETER parity / typo modelling |
//! | [`alignment`] | edit-script traceback | library feature |
//! | [`counted`] | cost-counting kernel variants | diagnostics |
//! | [`semi_global`] | substring (Sellers / Myers search) | read-mapping extension |
//! | [`packed`] | banded DP over 3-bit DNA | paper §6 dictionary compression |
//!
//! [`BoundedKernel`] packages the three scan-grade bounded kernels behind
//! one per-query-compiled interface so higher layers can switch kernels by
//! configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alignment;
pub mod banded;
pub mod counted;
pub mod damerau;
pub mod early_abort;
pub mod full;
pub mod hamming;
pub mod incremental;
pub mod matrix;
pub mod myers;
pub mod myers_block;
pub mod myers_stack;
pub mod packed;
pub mod prefix_bound;
pub mod row_stack;
pub mod semi_global;
pub mod two_row;

pub use alignment::{apply_script, edit_script, EditStep};
pub use banded::{ed_within_banded, ed_within_banded_with};
pub use early_abort::{ed_within_early_abort, ed_within_early_abort_with};
pub use full::{levenshtein, levenshtein_full_with, levenshtein_naive_alloc};
pub use incremental::IncrementalDp;
pub use matrix::DpMatrix;
pub use myers::Myers64;
pub use myers_block::{MyersAny, MyersBlock, PatternError};
pub use myers_stack::MyersStackKernel;
pub use row_stack::{RowStackKernel, RowStackMode};
pub use semi_global::{substring_distance, substring_within, SubstringMatch};

/// Selects which bounded-distance kernel a scan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelKind {
    /// The paper's rung-2 kernel: full-width rows, length filter,
    /// decisive-diagonal abort.
    #[default]
    EarlyAbort,
    /// Banded (Ukkonen) kernel with per-row abort.
    Banded,
    /// Bit-parallel Myers kernel (single-word or blocked by pattern size).
    Myers,
}

impl KernelKind {
    /// All kernels, for ablation sweeps.
    pub const ALL: [KernelKind; 3] =
        [KernelKind::EarlyAbort, KernelKind::Banded, KernelKind::Myers];

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::EarlyAbort => "early-abort",
            KernelKind::Banded => "banded",
            KernelKind::Myers => "myers",
        }
    }
}

/// A bounded-distance kernel compiled for one `(query, k)` pair and then
/// applied to many candidates — the shape of work a sequential scan does.
/// # Examples
///
/// ```
/// use simsearch_distance::{BoundedKernel, KernelKind};
///
/// let mut kernel = BoundedKernel::compile(KernelKind::Myers, b"Berlin", 2);
/// assert_eq!(kernel.within(b"Bern"), Some(2));
/// assert_eq!(kernel.within(b"Bonn"), None);
/// ```
pub struct BoundedKernel {
    kind: KernelKind,
    query: Vec<u8>,
    k: u32,
    row_buf: Vec<u32>,
    myers: Option<MyersAny>,
}

impl BoundedKernel {
    /// Compiles a kernel of the requested kind.
    pub fn compile(kind: KernelKind, query: &[u8], k: u32) -> Self {
        let myers = match kind {
            // An empty query has no bit-parallel form; the generic kernels
            // handle it (distance = candidate length).
            KernelKind::Myers => MyersAny::new(query),
            _ => None,
        };
        Self {
            kind,
            query: query.to_vec(),
            k,
            row_buf: Vec::new(),
            myers,
        }
    }

    /// Re-targets the kernel at a new `(query, k)` pair, reusing buffers.
    pub fn retarget(&mut self, query: &[u8], k: u32) {
        self.query.clear();
        self.query.extend_from_slice(query);
        self.k = k;
        if self.kind == KernelKind::Myers {
            self.myers = MyersAny::new(query);
        }
    }

    /// The compiled query.
    pub fn query(&self) -> &[u8] {
        &self.query
    }

    /// The compiled threshold.
    pub fn threshold(&self) -> u32 {
        self.k
    }

    /// Whether `ed(query, candidate) ≤ k`; returns the distance when so.
    pub fn within(&mut self, candidate: &[u8]) -> Option<u32> {
        match (self.kind, &self.myers) {
            (KernelKind::EarlyAbort, _) => {
                ed_within_early_abort_with(&mut self.row_buf, &self.query, candidate, self.k)
            }
            (KernelKind::Banded, _) => {
                ed_within_banded_with(&mut self.row_buf, &self.query, candidate, self.k)
            }
            (KernelKind::Myers, Some(m)) => m.within(candidate, self.k),
            // Empty query: distance is the candidate length.
            (KernelKind::Myers, None) => {
                let d = candidate.len() as u32;
                (d <= self.k).then_some(d)
            }
        }
    }
}

impl std::fmt::Debug for BoundedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BoundedKernel({}, |q|={}, k={})",
            self.kind.name(),
            self.query.len(),
            self.k
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_agree() {
        let words: &[&[u8]] = &[b"", b"a", b"Berlin", b"Bern", b"AGGCGT", b"AGAGT"];
        for &q in words {
            for k in 0..4 {
                let mut kernels: Vec<BoundedKernel> = KernelKind::ALL
                    .iter()
                    .map(|&kind| BoundedKernel::compile(kind, q, k))
                    .collect();
                for &c in words {
                    let expected = {
                        let d = levenshtein(q, c);
                        (d <= k).then_some(d)
                    };
                    for kernel in &mut kernels {
                        assert_eq!(kernel.within(c), expected, "{kernel:?} on {c:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn retarget_reuses_kernel() {
        let mut kernel = BoundedKernel::compile(KernelKind::Banded, b"Berlin", 1);
        assert_eq!(kernel.within(b"Bern"), None);
        kernel.retarget(b"Bern", 0);
        assert_eq!(kernel.within(b"Bern"), Some(0));
        assert_eq!(kernel.threshold(), 0);
        assert_eq!(kernel.query(), b"Bern");
    }

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(KernelKind::EarlyAbort.name(), "early-abort");
        assert_eq!(KernelKind::Banded.name(), "banded");
        assert_eq!(KernelKind::Myers.name(), "myers");
    }
}
