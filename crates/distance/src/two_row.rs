//! Two-row (rolling) Levenshtein: same recurrence as the full matrix but
//! keeping only the previous and current row. O(|y|) memory, and the
//! first step of the paper's "simple data types" rung — the DP state
//! becomes two flat integer arrays.

/// Computes `ed(x, y)` using two rolling rows stored in `buf`
/// (`buf` is resized as needed and may be reused across calls).
pub fn levenshtein_two_row_with(buf: &mut Vec<u32>, x: &[u8], y: &[u8]) -> u32 {
    let cols = y.len() + 1;
    buf.clear();
    buf.resize(cols * 2, 0);
    let (prev, curr) = buf.split_at_mut(cols);
    for (j, p) in prev.iter_mut().enumerate() {
        *p = j as u32;
    }
    let mut prev: &mut [u32] = prev;
    let mut curr: &mut [u32] = curr;
    for (i, &xc) in x.iter().enumerate() {
        curr[0] = i as u32 + 1;
        for j in 1..cols {
            curr[j] = if xc == y[j - 1] {
                prev[j - 1]
            } else {
                1 + prev[j].min(curr[j - 1]).min(prev[j - 1])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[cols - 1]
}

/// Convenience wrapper with a throwaway buffer.
pub fn levenshtein_two_row(x: &[u8], y: &[u8]) -> u32 {
    let mut buf = Vec::new();
    levenshtein_two_row_with(&mut buf, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::levenshtein;

    #[test]
    fn matches_full_matrix_on_known_cases() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"", b""),
            (b"", b"abc"),
            (b"abc", b""),
            (b"AGGCGT", b"AGAGT"),
            (b"kitten", b"sitting"),
            (b"Berlin", b"Bern"),
        ];
        for &(x, y) in cases {
            assert_eq!(levenshtein_two_row(x, y), levenshtein(x, y));
        }
    }

    #[test]
    fn buffer_reuse_is_safe() {
        let mut buf = Vec::new();
        assert_eq!(levenshtein_two_row_with(&mut buf, b"abc", b"abd"), 1);
        // Second call with longer strings after a shorter one.
        assert_eq!(
            levenshtein_two_row_with(&mut buf, b"longerstring", b"longerstrong"),
            1
        );
        // And shorter again.
        assert_eq!(levenshtein_two_row_with(&mut buf, b"a", b""), 1);
    }
}
