//! The dynamic-programming matrix underlying the edit distance.
//!
//! [`DpMatrix`] is a reusable, row-major `u32` buffer. The full-matrix
//! kernels write into it, and its [`std::fmt::Display`] impl renders the
//! worked example of the paper's Figure 1.

/// A reusable `(rows × cols)` matrix of `u32` cells.
#[derive(Debug, Clone, Default)]
pub struct DpMatrix {
    cells: Vec<u32>,
    rows: usize,
    cols: usize,
}

impl DpMatrix {
    /// Creates an empty matrix; call [`DpMatrix::reset`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes to `rows × cols` and zeroes the contents. The allocation is
    /// reused when possible (the "workhorse buffer" pattern).
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.cells.clear();
        self.cells.resize(rows * cols, 0);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads cell `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.cells[i * self.cols + j]
    }

    /// Writes cell `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: u32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.cells[i * self.cols + j] = v;
    }

    /// Borrows row `i`.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.cells[i * self.cols..(i + 1) * self.cols]
    }
}

impl std::fmt::Display for DpMatrix {
    /// Renders the matrix like the paper's Figure 1 (rows = first string
    /// positions, columns = second string positions).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>2}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes_and_resizes() {
        let mut m = DpMatrix::new();
        m.reset(2, 3);
        m.set(1, 2, 7);
        assert_eq!(m.get(1, 2), 7);
        m.reset(3, 2);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(m.get(i, j), 0);
            }
        }
    }

    #[test]
    fn row_view_matches_cells() {
        let mut m = DpMatrix::new();
        m.reset(2, 2);
        m.set(1, 0, 5);
        m.set(1, 1, 6);
        assert_eq!(m.row(1), &[5, 6]);
    }

    #[test]
    fn display_renders_grid() {
        let mut m = DpMatrix::new();
        m.reset(2, 2);
        m.set(0, 1, 1);
        m.set(1, 0, 1);
        let s = m.to_string();
        assert_eq!(s, " 0  1\n 1  0\n");
    }
}
