//! Semi-global (substring) edit distance: the best alignment of a whole
//! pattern against *any substring* of a text.
//!
//! The paper's DNA motivation — "applications which search for similar
//! human genome reads" — in practice also needs read-to-sequence
//! mapping, where the read may match anywhere inside a longer sequence.
//! The classical algorithm (Sellers 1980) is the Levenshtein recurrence
//! with a free top row (`D[0][j] = 0`: a match may start at any text
//! position); the distance is the minimum of the bottom row, and the
//! bit-parallel variant is exactly Myers' original approximate search
//! automaton.

use crate::myers_block::MyersAny;

/// A best match of a pattern inside a text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubstringMatch {
    /// Edit distance of the best alignment.
    pub distance: u32,
    /// Exclusive end position of the match in the text (the alignment
    /// ends just before this text offset).
    pub end: usize,
}

/// Computes the minimal edit distance between `pattern` and any
/// substring of `text` (Sellers' algorithm), with the end position of
/// the leftmost-ending best match.
///
/// An empty pattern matches the empty substring at position 0 with
/// distance 0.
pub fn substring_distance(pattern: &[u8], text: &[u8]) -> SubstringMatch {
    let m = pattern.len();
    // prev[i] = D[i][j] for the current text column j.
    let mut prev: Vec<u32> = (0..=m as u32).collect();
    let mut curr = vec![0u32; m + 1];
    let mut best = SubstringMatch {
        distance: m as u32, // empty substring: delete the whole pattern
        end: 0,
    };
    for (j, &tc) in text.iter().enumerate() {
        curr[0] = 0; // free start anywhere in the text
        for i in 1..=m {
            curr[i] = if pattern[i - 1] == tc {
                prev[i - 1]
            } else {
                1 + prev[i].min(curr[i - 1]).min(prev[i - 1])
            };
        }
        if curr[m] < best.distance {
            best = SubstringMatch {
                distance: curr[m],
                end: j + 1,
            };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    best
}

/// Whether `pattern` occurs in `text` within edit distance `k`; returns
/// the best match when it does.
pub fn substring_within(pattern: &[u8], text: &[u8], k: u32) -> Option<SubstringMatch> {
    let best = substring_distance(pattern, text);
    (best.distance <= k).then_some(best)
}

/// Bit-parallel semi-global search (Myers' approximate search automaton):
/// like [`substring_distance`] but O(⌈m/64⌉) per text byte. Returns the
/// same distance; end positions agree on the leftmost-ending best match.
pub fn substring_distance_myers(pattern: &[u8], text: &[u8]) -> SubstringMatch {
    let Some(engine) = MyersAny::new(pattern) else {
        // Empty pattern matches the empty substring immediately.
        return SubstringMatch {
            distance: 0,
            end: 0,
        };
    };
    match engine {
        MyersAny::Word(w) => w.substring_distance(text),
        MyersAny::Block(_) => {
            // The blocked automaton is not wired for semi-global scoring;
            // fall back to the DP (correctness first — the ablation bench
            // only uses ≤64-byte patterns for this kernel).
            substring_distance(pattern, text)
        }
    }
}

impl crate::myers::Myers64 {
    /// Semi-global (substring) search: minimal distance of the pattern
    /// against any substring of `text`, with the leftmost end position —
    /// Myers' original approximate-search scoring (no horizontal +1 at
    /// the top boundary).
    pub fn substring_distance(&self, text: &[u8]) -> SubstringMatch {
        let (mut pv, mut mv) = (!0u64, 0u64);
        let m = self.pattern_len() as u32;
        let last = 1u64 << (self.pattern_len() - 1);
        let mut score = m;
        let mut best = SubstringMatch {
            distance: m,
            end: 0,
        };
        for (j, &c) in text.iter().enumerate() {
            let eq = self.peq(c);
            let xv = eq | mv;
            let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
            let ph = mv | !(xh | pv);
            let mh = pv & xh;
            if ph & last != 0 {
                score += 1;
            }
            if mh & last != 0 {
                score -= 1;
            }
            // Free start: no +1 carried into the top row.
            let ph = ph << 1;
            let mh = mh << 1;
            pv = mh | !(xv | ph);
            mv = ph & xv;
            if score < best.distance {
                best = SubstringMatch {
                    distance: score,
                    end: j + 1,
                };
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::levenshtein;

    /// Oracle: try every substring.
    fn oracle(pattern: &[u8], text: &[u8]) -> u32 {
        let mut best = pattern.len() as u32;
        for start in 0..=text.len() {
            for end in start..=text.len() {
                best = best.min(levenshtein(pattern, &text[start..end]));
            }
        }
        best
    }

    #[test]
    fn exact_occurrence_scores_zero() {
        let m = substring_distance(b"AGAGT", b"TTAGAGTCC");
        assert_eq!(m.distance, 0);
        assert_eq!(m.end, 7);
    }

    #[test]
    fn single_error_occurrence() {
        let m = substring_distance(b"AGAGT", b"TTAGCGTCC");
        assert_eq!(m.distance, 1);
        assert!(substring_within(b"AGAGT", b"TTAGCGTCC", 1).is_some());
        assert!(substring_within(b"AGAGT", b"TTAGCGTCC", 0).is_none());
    }

    #[test]
    fn matches_oracle_on_small_cases() {
        let patterns: &[&[u8]] = &[b"", b"a", b"ab", b"abc", b"AGAG", b"zzz"];
        let texts: &[&[u8]] = &[b"", b"a", b"ba", b"xxabcxx", b"AGAGAGAG", b"qqq"];
        for &p in patterns {
            for &t in texts {
                let want = oracle(p, t);
                assert_eq!(substring_distance(p, t).distance, want, "{p:?} in {t:?}");
                assert_eq!(
                    substring_distance_myers(p, t).distance,
                    want,
                    "myers {p:?} in {t:?}"
                );
            }
        }
    }

    #[test]
    fn myers_and_dp_agree_on_positions() {
        let p = b"GATTACA";
        let t = b"CCGATTTACAGGGATTACAtt";
        let a = substring_distance(p, t);
        let b = substring_distance_myers(p, t);
        assert_eq!(a, b);
        assert_eq!(a.distance, 0); // exact "GATTACA" occurs
    }

    #[test]
    fn empty_pattern_matches_everywhere() {
        let m = substring_distance(b"", b"anything");
        assert_eq!(m.distance, 0);
        assert_eq!(m.end, 0);
        assert_eq!(substring_distance_myers(b"", b"anything").distance, 0);
    }

    #[test]
    fn pattern_longer_than_text() {
        // Best substring of "ab" for pattern "abcde" is "ab": 3 deletions.
        assert_eq!(substring_distance(b"abcde", b"ab").distance, 3);
    }
}
