//! Banded (Ukkonen-style) bounded edit distance.
//!
//! An extension beyond the paper's rung 2: any alignment path of cost
//! ≤ `k` stays within the diagonal band `|i − j| ≤ k` (a cell at diagonal
//! offset `d` costs at least `d`), so only `2k + 1` cells per row need to
//! be computed and everything outside the band can be treated as `k + 1`.
//! Combined with a per-row minimum early abort this gives
//! `O((2k + 1) · |x|)` time — the asymptotically right kernel for the DNA
//! workload, where `|x| ≈ 100` and `k ≤ 16`.
//!
//! The ablation benchmark `ablation_kernels` quantifies the gain over the
//! paper's full-width early-abort kernel.

/// Computes whether `ed(x, y) ≤ k`, returning the distance when it is.
/// Only the diagonal band `|i − j| ≤ k` is computed; `buf` holds the two
/// reusable full-width rows.
pub fn ed_within_banded_with(buf: &mut Vec<u32>, x: &[u8], y: &[u8], k: u32) -> Option<u32> {
    if x.len().abs_diff(y.len()) > k as usize {
        return None;
    }
    let cap = k + 1;
    let kk = k as usize;
    let cols = y.len() + 1;
    buf.clear();
    buf.resize(cols * 2, cap);
    let (prev, curr) = buf.split_at_mut(cols);
    // Row 0: M[0][j] = j inside the band, capped outside.
    for (j, p) in prev.iter_mut().enumerate().take(kk + 1) {
        *p = j as u32;
    }
    let mut prev: &mut [u32] = prev;
    let mut curr: &mut [u32] = curr;
    for (i0, &xc) in x.iter().enumerate() {
        let i = i0 + 1;
        let lo = i.saturating_sub(kk);
        let hi = (i + kk).min(y.len());
        let mut row_min = cap;
        if lo == 0 {
            curr[0] = i as u32;
            row_min = curr[0];
        } else {
            // The cell left of the band boundary must read as "out of band".
            curr[lo - 1] = cap;
        }
        for j in lo.max(1)..=hi {
            // prev[j] may be the out-of-band cell at the band's right edge
            // from the previous row; it was initialized/overwritten to cap.
            let v = if xc == y[j - 1] {
                prev[j - 1]
            } else {
                1 + prev[j].min(curr[j - 1]).min(prev[j - 1])
            };
            let v = v.min(cap);
            curr[j] = v;
            row_min = row_min.min(v);
        }
        // The cell right of the band (if any) must read as cap when the
        // next row peeks at prev[j] for j = i+1+kk ... it reads index hi+1.
        if hi + 1 < cols {
            curr[hi + 1] = cap;
        }
        if row_min > k {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let result = prev[cols - 1];
    (result <= k).then_some(result)
}

/// Convenience wrapper with a throwaway buffer.
pub fn ed_within_banded(x: &[u8], y: &[u8], k: u32) -> Option<u32> {
    let mut buf = Vec::new();
    ed_within_banded_with(&mut buf, x, y, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::levenshtein;

    #[test]
    fn agrees_with_full_matrix_on_word_pairs() {
        let words: &[&[u8]] = &[
            b"", b"a", b"ab", b"ba", b"abc", b"Berlin", b"Bern", b"Bayern", b"Ulm",
            b"AGGCGT", b"AGAGT", b"kitten", b"sitting", b"AAAAAAAAAA", b"TTTTTTTTTT",
        ];
        let mut buf = Vec::new();
        for &x in words {
            for &y in words {
                let truth = levenshtein(x, y);
                for k in 0..12 {
                    let got = ed_within_banded_with(&mut buf, x, y, k);
                    let want = (truth <= k).then_some(truth);
                    assert_eq!(got, want, "x={x:?} y={y:?} k={k}");
                }
            }
        }
    }

    #[test]
    fn k_zero_is_equality_test() {
        assert_eq!(ed_within_banded(b"AGGT", b"AGGT", 0), Some(0));
        assert_eq!(ed_within_banded(b"AGGT", b"AGCT", 0), None);
    }

    #[test]
    fn distance_exactly_k_is_accepted() {
        assert_eq!(ed_within_banded(b"kitten", b"sitting", 3), Some(3));
        assert_eq!(ed_within_banded(b"kitten", b"sitting", 2), None);
    }

    #[test]
    fn long_divergent_strings_abort() {
        let x = vec![b'A'; 500];
        let y = vec![b'T'; 500];
        assert_eq!(ed_within_banded(&x, &y, 16), None);
    }

    #[test]
    fn long_similar_strings_match() {
        let x = vec![b'A'; 500];
        let mut y = x.clone();
        y[100] = b'T';
        y.insert(300, b'G');
        assert_eq!(ed_within_banded(&x, &y, 16), Some(2));
    }
}
