//! Blocked bit-parallel edit distance (Myers 1999 as extended by
//! Hyyrö 2003) for patterns of arbitrary length.
//!
//! The pattern's DP column is split across ⌈m/64⌉ words ("blocks"); each
//! text byte advances every block, with the horizontal delta at each
//! block's top bit carried into the next block. The score is tracked at
//! the last pattern position. Used for DNA reads (≈100 bytes), where
//! [`crate::myers::Myers64`] does not fit.

const W: usize = 64;

/// Why a pattern cannot be compiled into a bit-parallel engine.
///
/// The structured counterpart of the `Option`-returning constructors:
/// callers that want to report *why* compilation was refused (or pick a
/// fallback per reason) use the `compile` constructors instead of `new`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternError {
    /// The pattern is empty — `ed(pattern, text)` degenerates to
    /// `|text|`, which needs no DP at all; callers special-case it.
    Empty,
    /// The pattern exceeds the engine's capacity (single-word
    /// [`crate::myers::Myers64`] only; the blocked engine is unbounded).
    TooLong {
        /// Actual pattern length in bytes.
        len: usize,
        /// The engine's capacity in bytes.
        max: usize,
    },
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternError::Empty => write!(f, "empty pattern has no bit-parallel form"),
            PatternError::TooLong { len, max } => {
                write!(f, "pattern of {len} bytes exceeds the {max}-byte engine")
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// The early-exit bound shared by every bit-parallel engine (single-word
/// `within`, blocked `run`, and the resumable stack kernel): the score at
/// the last pattern row changes by at most one per text byte, so once it
/// exceeds `k` by more than the number of unread bytes it can never
/// descend back to `k`.
#[inline]
pub(crate) fn score_is_dead(score: i64, k: u32, remaining: usize) -> bool {
    score > k as i64 + remaining as i64
}

/// A query compiled for blocked bit-parallel distance computation.
#[derive(Clone)]
pub struct MyersBlock {
    /// `peq[b * 256 + c]`: match mask of block `b` for byte `c`.
    peq: Vec<u64>,
    /// Number of blocks.
    blocks: usize,
    /// Pattern length.
    m: usize,
    /// Mask of the last pattern position within the last block.
    last: u64,
}

/// Per-block vertical state.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BlockState {
    pub(crate) pv: u64,
    pub(crate) mv: u64,
}

impl MyersBlock {
    /// Compiles `pattern`, reporting a structured reason on refusal
    /// (only [`PatternError::Empty`] — the blocked engine has no upper
    /// length limit).
    pub fn compile(pattern: &[u8]) -> Result<Self, PatternError> {
        if pattern.is_empty() {
            return Err(PatternError::Empty);
        }
        let m = pattern.len();
        let blocks = m.div_ceil(W);
        let mut peq = vec![0u64; blocks * 256];
        for (i, &c) in pattern.iter().enumerate() {
            peq[(i / W) * 256 + c as usize] |= 1 << (i % W);
        }
        Ok(Self {
            peq,
            blocks,
            m,
            last: 1 << ((m - 1) % W),
        })
    }

    /// Compiles `pattern`. Returns `None` if it is empty
    /// ([`MyersBlock::compile`] reports the reason).
    pub fn new(pattern: &[u8]) -> Option<Self> {
        Self::compile(pattern).ok()
    }

    /// Pattern length.
    pub fn pattern_len(&self) -> usize {
        self.m
    }

    /// Computes `ed(pattern, text)` exactly.
    pub fn distance(&self, text: &[u8]) -> u32 {
        self.run(text, None).expect("unbounded run always yields")
    }

    /// Computes whether `ed(pattern, text) ≤ k`, returning the distance
    /// when it is.
    pub fn within(&self, text: &[u8], k: u32) -> Option<u32> {
        if self.m.abs_diff(text.len()) > k as usize {
            return None;
        }
        self.run(text, Some(k))
    }

    fn run(&self, text: &[u8], k: Option<u32>) -> Option<u32> {
        let mut state = vec![BlockState { pv: !0u64, mv: 0 }; self.blocks];
        let mut score = self.m as i64;
        let n = text.len();
        for (j, &c) in text.iter().enumerate() {
            // Horizontal input into block 0 is +1: D[0][j] = j.
            let mut hin: i32 = 1;
            for (b, st) in state.iter_mut().enumerate() {
                let eq = self.peq[b * 256 + c as usize];
                let adv = advance_block(st.pv, st.mv, eq, hin);
                if b == self.blocks - 1 {
                    // Track the score at the pattern's last position
                    // (pre-shift horizontal deltas, as in the single-word
                    // algorithm); `hout` would watch bit 63 instead.
                    if adv.ph_pre & self.last != 0 {
                        score += 1;
                    } else if adv.mh_pre & self.last != 0 {
                        score -= 1;
                    }
                }
                st.pv = adv.pv;
                st.mv = adv.mv;
                hin = adv.hout;
            }
            if let Some(k) = k {
                if score_is_dead(score, k, n - 1 - j) {
                    return None;
                }
            }
        }
        let score = score as u32;
        match k {
            Some(k) if score > k => None,
            _ => Some(score),
        }
    }
}

/// Result of advancing one block by one text character.
pub(crate) struct Advance {
    /// Horizontal delta leaving the block's last row (carried into the
    /// next block's `hin`).
    pub(crate) hout: i32,
    /// New vertical-positive state.
    pub(crate) pv: u64,
    /// New vertical-negative state.
    pub(crate) mv: u64,
    /// Horizontal-positive deltas *before* the shift (bit `i` = column
    /// delta at pattern row `i`); used for score tracking.
    pub(crate) ph_pre: u64,
    /// Horizontal-negative deltas before the shift.
    pub(crate) mh_pre: u64,
}

/// Advances one 64-bit block by one text character.
///
/// `hin`/`hout` are the horizontal deltas (−1, 0, +1) entering at the
/// block's first row and leaving at its last row. Formulation follows
/// Hyyrö 2003 (as used by edlib).
#[inline]
pub(crate) fn advance_block(pv: u64, mv: u64, mut eq: u64, hin: i32) -> Advance {
    // Branchless throughout: `hin` is −1, 0 or +1, so its sign bit and
    // positivity become the carried-in bits directly, and `hout` is the
    // difference of the two top delta bits. The data-dependent branches
    // this replaces are unpredictable (they follow the DP values), which
    // makes them expensive in the per-byte hot loop.
    let hin_neg = (hin >> 31) as u64 & 1;
    let xv = eq | mv;
    eq |= hin_neg;
    let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
    let ph_pre = mv | !(xh | pv);
    let mh_pre = pv & xh;
    let hout = (ph_pre >> (W - 1)) as i32 - (mh_pre >> (W - 1)) as i32;
    let ph = (ph_pre << 1) | u64::from(hin > 0);
    let mh = (mh_pre << 1) | hin_neg;
    Advance {
        hout,
        pv: mh | !(xv | ph),
        mv: ph & xv,
        ph_pre,
        mh_pre,
    }
}

impl std::fmt::Debug for MyersBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MyersBlock(m={}, blocks={})", self.m, self.blocks)
    }
}

/// Wrapper selecting [`crate::myers::Myers64`] when the pattern fits one
/// word and [`MyersBlock`] otherwise.
// The Word variant holds its 2 KiB Peq table inline on purpose: MyersAny
// is created once per query and never moved afterwards, and the inline
// table saves an indirection in the per-candidate hot loop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum MyersAny {
    /// Single-word engine (pattern ≤ 64 bytes).
    Word(crate::myers::Myers64),
    /// Blocked engine (longer patterns).
    Block(MyersBlock),
}

impl MyersAny {
    /// Compiles `pattern`, reporting a structured reason on refusal.
    /// Only [`PatternError::Empty`] can occur: the word engine's length
    /// limit routes to the blocked engine instead of failing.
    pub fn compile(pattern: &[u8]) -> Result<Self, PatternError> {
        if pattern.len() <= 64 {
            crate::myers::Myers64::compile(pattern).map(MyersAny::Word)
        } else {
            MyersBlock::compile(pattern).map(MyersAny::Block)
        }
    }

    /// Compiles `pattern`. Returns `None` only for an empty pattern
    /// (for which the distance is trivially `|text|`;
    /// [`MyersAny::compile`] reports the reason).
    pub fn new(pattern: &[u8]) -> Option<Self> {
        Self::compile(pattern).ok()
    }

    /// Computes `ed(pattern, text)` exactly.
    pub fn distance(&self, text: &[u8]) -> u32 {
        match self {
            MyersAny::Word(m) => m.distance(text),
            MyersAny::Block(m) => m.distance(text),
        }
    }

    /// Computes whether `ed(pattern, text) ≤ k`.
    pub fn within(&self, text: &[u8], k: u32) -> Option<u32> {
        match self {
            MyersAny::Word(m) => m.within(text, k),
            MyersAny::Block(m) => m.within(text, k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::levenshtein;

    #[test]
    fn matches_full_matrix_on_short_pairs() {
        let words: &[&[u8]] = &[b"a", b"Berlin", b"Bern", b"AGGCGT", b"AGAGT", b"kitten"];
        for &x in words {
            let m = MyersBlock::new(x).unwrap();
            for &y in words {
                assert_eq!(m.distance(y), levenshtein(x, y), "{x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn matches_full_matrix_across_block_boundaries() {
        // Patterns of lengths straddling 64 and 128.
        for len in [63usize, 64, 65, 100, 127, 128, 129] {
            let x: Vec<u8> = (0..len).map(|i| b"ACGT"[i % 4]).collect();
            let mut y = x.clone();
            y[len / 2] = b'N';
            y.insert(len / 3, b'G');
            y.remove(2 * len / 3);
            let m = MyersBlock::new(&x).unwrap();
            let truth = levenshtein(&x, &y);
            assert_eq!(m.distance(&y), truth, "len={len}");
            assert_eq!(m.within(&y, truth), Some(truth));
            if truth > 0 {
                assert_eq!(m.within(&y, truth - 1), None);
            }
        }
    }

    #[test]
    fn within_respects_threshold() {
        let x = vec![b'A'; 150];
        let mut y = x.clone();
        for i in 0..10 {
            y[i * 13] = b'T';
        }
        let m = MyersBlock::new(&x).unwrap();
        assert_eq!(m.distance(&y), 10);
        assert_eq!(m.within(&y, 10), Some(10));
        assert_eq!(m.within(&y, 9), None);
    }

    #[test]
    fn any_selects_correct_engine() {
        assert!(matches!(MyersAny::new(b"short"), Some(MyersAny::Word(_))));
        assert!(matches!(
            MyersAny::new(&[b'A'; 65]),
            Some(MyersAny::Block(_))
        ));
        assert!(MyersAny::new(b"").is_none());
    }

    #[test]
    fn length_filter_fires() {
        let m = MyersBlock::new(&[b'A'; 100]).unwrap();
        assert_eq!(m.within(&[b'A'; 80], 10), None);
    }

    #[test]
    fn compile_reports_structured_reasons() {
        assert_eq!(MyersBlock::compile(b"").unwrap_err(), PatternError::Empty);
        assert_eq!(MyersAny::compile(b"").unwrap_err(), PatternError::Empty);
        assert!(MyersBlock::compile(&[b'A'; 10_000]).is_ok());
        // The word engine's capacity surfaces as TooLong when used
        // directly, but MyersAny hides it by falling back to blocks.
        assert_eq!(
            crate::myers::Myers64::compile(&[b'A'; 65]).unwrap_err(),
            PatternError::TooLong { len: 65, max: 64 }
        );
        assert!(MyersAny::compile(&[b'A'; 65]).is_ok());
        let msg = PatternError::TooLong { len: 65, max: 64 }.to_string();
        assert!(msg.contains("65") && msg.contains("64"), "{msg}");
    }
}
