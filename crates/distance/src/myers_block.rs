//! Blocked bit-parallel edit distance (Myers 1999 as extended by
//! Hyyrö 2003) for patterns of arbitrary length.
//!
//! The pattern's DP column is split across ⌈m/64⌉ words ("blocks"); each
//! text byte advances every block, with the horizontal delta at each
//! block's top bit carried into the next block. The score is tracked at
//! the last pattern position. Used for DNA reads (≈100 bytes), where
//! [`crate::myers::Myers64`] does not fit.

const W: usize = 64;

/// A query compiled for blocked bit-parallel distance computation.
#[derive(Clone)]
pub struct MyersBlock {
    /// `peq[b * 256 + c]`: match mask of block `b` for byte `c`.
    peq: Vec<u64>,
    /// Number of blocks.
    blocks: usize,
    /// Pattern length.
    m: usize,
    /// Mask of the last pattern position within the last block.
    last: u64,
}

/// Per-block vertical state.
#[derive(Clone, Copy)]
struct BlockState {
    pv: u64,
    mv: u64,
}

impl MyersBlock {
    /// Compiles `pattern`. Returns `None` if it is empty.
    pub fn new(pattern: &[u8]) -> Option<Self> {
        if pattern.is_empty() {
            return None;
        }
        let m = pattern.len();
        let blocks = m.div_ceil(W);
        let mut peq = vec![0u64; blocks * 256];
        for (i, &c) in pattern.iter().enumerate() {
            peq[(i / W) * 256 + c as usize] |= 1 << (i % W);
        }
        Some(Self {
            peq,
            blocks,
            m,
            last: 1 << ((m - 1) % W),
        })
    }

    /// Pattern length.
    pub fn pattern_len(&self) -> usize {
        self.m
    }

    /// Computes `ed(pattern, text)` exactly.
    pub fn distance(&self, text: &[u8]) -> u32 {
        self.run(text, None).expect("unbounded run always yields")
    }

    /// Computes whether `ed(pattern, text) ≤ k`, returning the distance
    /// when it is.
    pub fn within(&self, text: &[u8], k: u32) -> Option<u32> {
        if self.m.abs_diff(text.len()) > k as usize {
            return None;
        }
        self.run(text, Some(k))
    }

    fn run(&self, text: &[u8], k: Option<u32>) -> Option<u32> {
        let mut state = vec![BlockState { pv: !0u64, mv: 0 }; self.blocks];
        let mut score = self.m as i64;
        let n = text.len();
        for (j, &c) in text.iter().enumerate() {
            // Horizontal input into block 0 is +1: D[0][j] = j.
            let mut hin: i32 = 1;
            for (b, st) in state.iter_mut().enumerate() {
                let eq = self.peq[b * 256 + c as usize];
                let adv = advance_block(st.pv, st.mv, eq, hin);
                if b == self.blocks - 1 {
                    // Track the score at the pattern's last position
                    // (pre-shift horizontal deltas, as in the single-word
                    // algorithm); `hout` would watch bit 63 instead.
                    if adv.ph_pre & self.last != 0 {
                        score += 1;
                    } else if adv.mh_pre & self.last != 0 {
                        score -= 1;
                    }
                }
                st.pv = adv.pv;
                st.mv = adv.mv;
                hin = adv.hout;
            }
            if let Some(k) = k {
                let remaining = (n - 1 - j) as i64;
                if score > k as i64 + remaining {
                    return None;
                }
            }
        }
        let score = score as u32;
        match k {
            Some(k) if score > k => None,
            _ => Some(score),
        }
    }
}

/// Result of advancing one block by one text character.
struct Advance {
    /// Horizontal delta leaving the block's last row (carried into the
    /// next block's `hin`).
    hout: i32,
    /// New vertical-positive state.
    pv: u64,
    /// New vertical-negative state.
    mv: u64,
    /// Horizontal-positive deltas *before* the shift (bit `i` = column
    /// delta at pattern row `i`); used for score tracking.
    ph_pre: u64,
    /// Horizontal-negative deltas before the shift.
    mh_pre: u64,
}

/// Advances one 64-bit block by one text character.
///
/// `hin`/`hout` are the horizontal deltas (−1, 0, +1) entering at the
/// block's first row and leaving at its last row. Formulation follows
/// Hyyrö 2003 (as used by edlib).
#[inline]
fn advance_block(pv: u64, mv: u64, mut eq: u64, hin: i32) -> Advance {
    let xv = eq | mv;
    if hin < 0 {
        eq |= 1;
    }
    let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
    let ph_pre = mv | !(xh | pv);
    let mh_pre = pv & xh;
    let mut hout: i32 = 0;
    if ph_pre & (1 << (W - 1)) != 0 {
        hout = 1;
    } else if mh_pre & (1 << (W - 1)) != 0 {
        hout = -1;
    }
    let mut ph = ph_pre << 1;
    let mut mh = mh_pre << 1;
    if hin > 0 {
        ph |= 1;
    } else if hin < 0 {
        mh |= 1;
    }
    Advance {
        hout,
        pv: mh | !(xv | ph),
        mv: ph & xv,
        ph_pre,
        mh_pre,
    }
}

impl std::fmt::Debug for MyersBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MyersBlock(m={}, blocks={})", self.m, self.blocks)
    }
}

/// Wrapper selecting [`crate::myers::Myers64`] when the pattern fits one
/// word and [`MyersBlock`] otherwise.
// The Word variant holds its 2 KiB Peq table inline on purpose: MyersAny
// is created once per query and never moved afterwards, and the inline
// table saves an indirection in the per-candidate hot loop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum MyersAny {
    /// Single-word engine (pattern ≤ 64 bytes).
    Word(crate::myers::Myers64),
    /// Blocked engine (longer patterns).
    Block(MyersBlock),
}

impl MyersAny {
    /// Compiles `pattern`. Returns `None` only for an empty pattern
    /// (for which the distance is trivially `|text|`).
    pub fn new(pattern: &[u8]) -> Option<Self> {
        if pattern.len() <= 64 {
            crate::myers::Myers64::new(pattern).map(MyersAny::Word)
        } else {
            MyersBlock::new(pattern).map(MyersAny::Block)
        }
    }

    /// Computes `ed(pattern, text)` exactly.
    pub fn distance(&self, text: &[u8]) -> u32 {
        match self {
            MyersAny::Word(m) => m.distance(text),
            MyersAny::Block(m) => m.distance(text),
        }
    }

    /// Computes whether `ed(pattern, text) ≤ k`.
    pub fn within(&self, text: &[u8], k: u32) -> Option<u32> {
        match self {
            MyersAny::Word(m) => m.within(text, k),
            MyersAny::Block(m) => m.within(text, k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::levenshtein;

    #[test]
    fn matches_full_matrix_on_short_pairs() {
        let words: &[&[u8]] = &[b"a", b"Berlin", b"Bern", b"AGGCGT", b"AGAGT", b"kitten"];
        for &x in words {
            let m = MyersBlock::new(x).unwrap();
            for &y in words {
                assert_eq!(m.distance(y), levenshtein(x, y), "{x:?} vs {y:?}");
            }
        }
    }

    #[test]
    fn matches_full_matrix_across_block_boundaries() {
        // Patterns of lengths straddling 64 and 128.
        for len in [63usize, 64, 65, 100, 127, 128, 129] {
            let x: Vec<u8> = (0..len).map(|i| b"ACGT"[i % 4]).collect();
            let mut y = x.clone();
            y[len / 2] = b'N';
            y.insert(len / 3, b'G');
            y.remove(2 * len / 3);
            let m = MyersBlock::new(&x).unwrap();
            let truth = levenshtein(&x, &y);
            assert_eq!(m.distance(&y), truth, "len={len}");
            assert_eq!(m.within(&y, truth), Some(truth));
            if truth > 0 {
                assert_eq!(m.within(&y, truth - 1), None);
            }
        }
    }

    #[test]
    fn within_respects_threshold() {
        let x = vec![b'A'; 150];
        let mut y = x.clone();
        for i in 0..10 {
            y[i * 13] = b'T';
        }
        let m = MyersBlock::new(&x).unwrap();
        assert_eq!(m.distance(&y), 10);
        assert_eq!(m.within(&y, 10), Some(10));
        assert_eq!(m.within(&y, 9), None);
    }

    #[test]
    fn any_selects_correct_engine() {
        assert!(matches!(MyersAny::new(b"short"), Some(MyersAny::Word(_))));
        assert!(matches!(
            MyersAny::new(&[b'A'; 65]),
            Some(MyersAny::Block(_))
        ));
        assert!(MyersAny::new(b"").is_none());
    }

    #[test]
    fn length_filter_fires() {
        let m = MyersBlock::new(&[b'A'; 100]).unwrap();
        assert_eq!(m.within(&[b'A'; 80], 10), None);
    }
}
