//! Hamming distance (substitutions only, equal lengths).
//!
//! PETER — the related-work system the paper builds its trie pruning on —
//! supports Hamming as well as edit distance, so the reproduction carries
//! it too. It is also an upper bound on the Levenshtein distance for
//! equal-length strings, which the property tests exploit.

/// Computes the Hamming distance, or `None` when the lengths differ
/// (the distance is undefined then).
pub fn hamming(x: &[u8], y: &[u8]) -> Option<u32> {
    (x.len() == y.len()).then(|| {
        x.iter()
            .zip(y.iter())
            .filter(|(a, b)| a != b)
            .count() as u32
    })
}

/// Computes whether the Hamming distance is ≤ `k`, returning it when it
/// is. Aborts the scan at the `k + 1`-th mismatch.
pub fn hamming_within(x: &[u8], y: &[u8], k: u32) -> Option<u32> {
    if x.len() != y.len() {
        return None;
    }
    let mut d = 0u32;
    for (a, b) in x.iter().zip(y.iter()) {
        if a != b {
            d += 1;
            if d > k {
                return None;
            }
        }
    }
    Some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::levenshtein;

    #[test]
    fn basic_cases() {
        assert_eq!(hamming(b"", b""), Some(0));
        assert_eq!(hamming(b"AGGT", b"AGGT"), Some(0));
        assert_eq!(hamming(b"AGGT", b"ACGT"), Some(1));
        assert_eq!(hamming(b"AAAA", b"TTTT"), Some(4));
        assert_eq!(hamming(b"AB", b"ABC"), None);
    }

    #[test]
    fn within_aborts_and_agrees() {
        assert_eq!(hamming_within(b"AAAA", b"TTTT", 3), None);
        assert_eq!(hamming_within(b"AAAA", b"TTTT", 4), Some(4));
        assert_eq!(hamming_within(b"AB", b"ABC", 10), None);
    }

    #[test]
    fn upper_bounds_levenshtein_for_equal_lengths() {
        let pairs: &[(&[u8], &[u8])] = &[
            (b"AGGCGT", b"AGACGT"),
            (b"Berlin", b"Barlin"),
            (b"abcdef", b"fedcba"),
        ];
        for &(x, y) in pairs {
            assert!(levenshtein(x, y) <= hamming(x, y).unwrap());
        }
    }
}
