//! Cost-counting variants of the bounded kernels.
//!
//! Wall-clock comparisons say *which* approach wins; these variants say
//! *why*, by reporting the number of DP cells actually computed — the
//! quantity every optimization in the paper (early abort, banding,
//! pruning) is trying to reduce. Results are bit-identical to the
//! uncounted kernels (enforced by property tests).

/// Like [`crate::early_abort::ed_within_early_abort_with`], additionally
/// returning the number of DP cells computed.
pub fn ed_within_early_abort_counted(
    buf: &mut Vec<u32>,
    x: &[u8],
    y: &[u8],
    k: u32,
) -> (Option<u32>, u64) {
    let d = x.len().abs_diff(y.len());
    if d > k as usize {
        return (None, 0);
    }
    let cols = y.len() + 1;
    buf.clear();
    buf.resize(cols * 2, 0);
    let (prev, curr) = buf.split_at_mut(cols);
    for (j, p) in prev.iter_mut().enumerate() {
        *p = j as u32;
    }
    let mut prev: &mut [u32] = prev;
    let mut curr: &mut [u32] = curr;
    let x_longer = x.len() >= y.len();
    let mut cells: u64 = 0;
    for (i0, &xc) in x.iter().enumerate() {
        let i = i0 + 1;
        curr[0] = i as u32;
        for j in 1..cols {
            curr[j] = if xc == y[j - 1] {
                prev[j - 1]
            } else {
                1 + prev[j].min(curr[j - 1]).min(prev[j - 1])
            };
        }
        cells += cols as u64;
        let decisive_j = if x_longer { i.checked_sub(d) } else { Some(i + d) };
        if let Some(j) = decisive_j {
            if j < cols && curr[j] > k {
                return (None, cells);
            }
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let result = prev[cols - 1];
    ((result <= k).then_some(result), cells)
}

/// Like [`crate::banded::ed_within_banded_with`], additionally returning
/// the number of DP cells computed.
pub fn ed_within_banded_counted(
    buf: &mut Vec<u32>,
    x: &[u8],
    y: &[u8],
    k: u32,
) -> (Option<u32>, u64) {
    if x.len().abs_diff(y.len()) > k as usize {
        return (None, 0);
    }
    let cap = k + 1;
    let kk = k as usize;
    let cols = y.len() + 1;
    buf.clear();
    buf.resize(cols * 2, cap);
    let (prev, curr) = buf.split_at_mut(cols);
    for (j, p) in prev.iter_mut().enumerate().take(kk + 1) {
        *p = j as u32;
    }
    let mut prev: &mut [u32] = prev;
    let mut curr: &mut [u32] = curr;
    let mut cells: u64 = 0;
    for (i0, &xc) in x.iter().enumerate() {
        let i = i0 + 1;
        let lo = i.saturating_sub(kk);
        let hi = (i + kk).min(y.len());
        let mut row_min = cap;
        if lo == 0 {
            curr[0] = i as u32;
            row_min = curr[0];
            cells += 1;
        } else {
            curr[lo - 1] = cap;
        }
        for j in lo.max(1)..=hi {
            let v = if xc == y[j - 1] {
                prev[j - 1]
            } else {
                1 + prev[j].min(curr[j - 1]).min(prev[j - 1])
            };
            let v = v.min(cap);
            curr[j] = v;
            row_min = row_min.min(v);
        }
        cells += (hi + 1 - lo.max(1)) as u64;
        if hi + 1 < cols {
            curr[hi + 1] = cap;
        }
        if row_min > k {
            return (None, cells);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let result = prev[cols - 1];
    ((result <= k).then_some(result), cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banded::ed_within_banded;
    use crate::early_abort::ed_within_early_abort;

    #[test]
    fn counted_early_abort_matches_uncounted() {
        let words: &[&[u8]] = &[b"", b"a", b"Berlin", b"Bern", b"AGGCGT", b"AGAGT", b"kitten"];
        let mut buf = Vec::new();
        for &x in words {
            for &y in words {
                for k in 0..5 {
                    let (r, cells) = ed_within_early_abort_counted(&mut buf, x, y, k);
                    assert_eq!(r, ed_within_early_abort(x, y, k));
                    if x.len().abs_diff(y.len()) > k as usize {
                        assert_eq!(cells, 0, "length filter must not compute cells");
                    }
                }
            }
        }
    }

    #[test]
    fn counted_banded_matches_uncounted() {
        let words: &[&[u8]] = &[b"", b"a", b"Berlin", b"Bern", b"AGGCGT", b"AGAGT"];
        let mut buf = Vec::new();
        for &x in words {
            for &y in words {
                for k in 0..5 {
                    let (r, _) = ed_within_banded_counted(&mut buf, x, y, k);
                    assert_eq!(r, ed_within_banded(x, y, k));
                }
            }
        }
    }

    #[test]
    fn banding_computes_fewer_cells() {
        let x = vec![b'A'; 100];
        let mut y = x.clone();
        y[50] = b'T';
        let mut buf = Vec::new();
        let (_, full) = ed_within_early_abort_counted(&mut buf, &x, &y, 4);
        let (_, banded) = ed_within_banded_counted(&mut buf, &x, &y, 4);
        assert!(
            banded * 2 < full,
            "band should compute far fewer cells ({banded} vs {full})"
        );
    }

    #[test]
    fn early_abort_counts_reflect_the_abort() {
        // Dissimilar strings: the abort fires early, so far fewer cells
        // than the full |x|·|y| table.
        let x = vec![b'A'; 100];
        let y = vec![b'T'; 100];
        let mut buf = Vec::new();
        let (r, cells) = ed_within_early_abort_counted(&mut buf, &x, &y, 4);
        assert_eq!(r, None);
        assert!(cells < 101 * 20, "abort did not fire early: {cells}");
    }
}
