//! Full-matrix Levenshtein distance — the paper's reference computation
//! (§2.2, equations (2)–(4)) and the oracle every faster kernel is tested
//! against.
//!
//! Two entry points are provided on purpose:
//!
//! * [`levenshtein_naive_alloc`] allocates a fresh nested `Vec<Vec<u32>>`
//!   per call — this is what the paper's *base implementation* (rung V1 of
//!   the scan ladder) does, and its cost is part of what the later rungs
//!   eliminate;
//! * [`levenshtein_full_with`] fills a caller-provided reusable
//!   [`DpMatrix`] — same algorithm, no allocation churn.

use crate::matrix::DpMatrix;

/// Computes `ed(x, y)` with a freshly allocated nested-vector matrix.
///
/// Deliberately uses the heaviest reasonable implementation strategy
/// (per-call allocation of `|x|+1` row vectors), mirroring the paper's
/// unoptimized base implementation.
pub fn levenshtein_naive_alloc(x: &[u8], y: &[u8]) -> u32 {
    let rows = x.len() + 1;
    let cols = y.len() + 1;
    let mut m: Vec<Vec<u32>> = vec![vec![0; cols]; rows];
    #[allow(clippy::needless_range_loop)]
    for i in 0..rows {
        m[i][0] = i as u32;
    }
    for (j, cell) in m[0].iter_mut().enumerate() {
        *cell = j as u32;
    }
    for i in 1..rows {
        for j in 1..cols {
            m[i][j] = if x[i - 1] == y[j - 1] {
                m[i - 1][j - 1]
            } else {
                1 + m[i - 1][j].min(m[i][j - 1]).min(m[i - 1][j - 1])
            };
        }
    }
    m[rows - 1][cols - 1]
}

/// Computes `ed(x, y)` into the reusable matrix `buf`, leaving the full
/// table available for inspection (Figure 1 reproduction).
pub fn levenshtein_full_with(buf: &mut DpMatrix, x: &[u8], y: &[u8]) -> u32 {
    let rows = x.len() + 1;
    let cols = y.len() + 1;
    buf.reset(rows, cols);
    for i in 0..rows {
        buf.set(i, 0, i as u32);
    }
    for j in 0..cols {
        buf.set(0, j, j as u32);
    }
    for i in 1..rows {
        for j in 1..cols {
            let v = if x[i - 1] == y[j - 1] {
                buf.get(i - 1, j - 1)
            } else {
                1 + buf
                    .get(i - 1, j)
                    .min(buf.get(i, j - 1))
                    .min(buf.get(i - 1, j - 1))
            };
            buf.set(i, j, v);
        }
    }
    buf.get(rows - 1, cols - 1)
}

/// Convenience wrapper around [`levenshtein_full_with`] with a throwaway
/// buffer. Use in tests and examples, not in hot paths.
/// # Examples
///
/// ```
/// use simsearch_distance::levenshtein;
///
/// assert_eq!(levenshtein(b"AGGCGT", b"AGAGT"), 2); // the paper's Figure 1
/// assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
/// ```
pub fn levenshtein(x: &[u8], y: &[u8]) -> u32 {
    let mut buf = DpMatrix::new();
    levenshtein_full_with(&mut buf, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure_1_example() {
        // §2.2: ed("AGGCGT", "AGAGT") = 2.
        assert_eq!(levenshtein(b"AGGCGT", b"AGAGT"), 2);
        assert_eq!(levenshtein_naive_alloc(b"AGGCGT", b"AGAGT"), 2);
    }

    #[test]
    fn paper_figure_1_matrix_contents() {
        let mut m = DpMatrix::new();
        levenshtein_full_with(&mut m, b"AGGCGT", b"AGAGT");
        // Boundary rows/columns are 0..len.
        assert_eq!(m.row(0), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(m.get(6, 0), 6);
        // Final cell via M[5][4] per the paper's walkthrough.
        assert_eq!(m.get(5, 4), 2);
        assert_eq!(m.get(6, 5), 2);
    }

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein(b"", b""), 0);
        assert_eq!(levenshtein(b"", b"abc"), 3);
        assert_eq!(levenshtein(b"abc", b""), 3);
        assert_eq!(levenshtein(b"abc", b"abc"), 0);
        assert_eq!(levenshtein(b"kitten", b"sitting"), 3);
        assert_eq!(levenshtein(b"flaw", b"lawn"), 2);
        assert_eq!(levenshtein(b"Berlin", b"Bern"), 2);
    }

    #[test]
    fn both_implementations_agree() {
        let words: &[&[u8]] = &[b"", b"a", b"ab", b"ba", b"Berlin", b"Bern", b"Ulm", b"AGGCGT"];
        let mut buf = DpMatrix::new();
        for &x in words {
            for &y in words {
                assert_eq!(
                    levenshtein_naive_alloc(x, y),
                    levenshtein_full_with(&mut buf, x, y),
                    "mismatch on {x:?} vs {y:?}"
                );
            }
        }
    }
}
