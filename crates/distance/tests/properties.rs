//! Property-based tests for every distance kernel: agreement with the
//! full-matrix oracle, the metric axioms of the edit distance, and the
//! 1,000-triple cross-kernel oracle over both alphabets.

use simsearch_distance::{
    banded::ed_within_banded,
    damerau::damerau_osa,
    early_abort::ed_within_early_abort,
    full::{levenshtein, levenshtein_naive_alloc},
    hamming::hamming,
    incremental::IncrementalDp,
    myers_block::{MyersAny, MyersBlock},
    myers_stack::MyersStackKernel,
    packed::{ed_within_packed_with, query_codes},
    two_row::levenshtein_two_row,
    BoundedKernel, KernelKind,
};
use simsearch_testkit::{
    assert_all_kernels_agree, check, gen, prop_assert, prop_assert_eq, Config, Gen,
};

/// Short strings over a small alphabet: maximizes collision-rich cases.
fn small_string() -> Gen<Vec<u8>> {
    gen::bytes_from(b"abAB", 0..12)
}

/// Arbitrary-byte strings of moderate length.
fn byte_string() -> Gen<Vec<u8>> {
    gen::bytes_any(0..40)
}

/// DNA strings long enough to cross the 64-byte Myers block boundary.
fn dna_string() -> Gen<Vec<u8>> {
    gen::dna_string(0..150)
}

#[test]
fn two_row_equals_full() {
    check(
        "two_row_equals_full",
        Config::default(),
        &gen::zip(byte_string(), byte_string()),
        |(x, y)| {
            prop_assert_eq!(levenshtein_two_row(x, y), levenshtein(x, y));
            Ok(())
        },
    );
}

#[test]
fn naive_alloc_equals_full() {
    check(
        "naive_alloc_equals_full",
        Config::default(),
        &gen::zip(small_string(), small_string()),
        |(x, y)| {
            prop_assert_eq!(levenshtein_naive_alloc(x, y), levenshtein(x, y));
            Ok(())
        },
    );
}

#[test]
fn early_abort_equals_full() {
    check(
        "early_abort_equals_full",
        Config::default(),
        &gen::zip3(small_string(), small_string(), gen::u32_in(0..6)),
        |(x, y, k)| {
            let truth = levenshtein(x, y);
            let want = (truth <= *k).then_some(truth);
            prop_assert_eq!(ed_within_early_abort(x, y, *k), want);
            Ok(())
        },
    );
}

#[test]
fn banded_equals_full() {
    check(
        "banded_equals_full",
        Config::default(),
        &gen::zip3(byte_string(), byte_string(), gen::u32_in(0..10)),
        |(x, y, k)| {
            let truth = levenshtein(x, y);
            let want = (truth <= *k).then_some(truth);
            prop_assert_eq!(ed_within_banded(x, y, *k), want);
            Ok(())
        },
    );
}

#[test]
fn myers_equals_full() {
    check(
        "myers_equals_full",
        Config::default(),
        &gen::zip(dna_string(), dna_string()),
        |(x, y)| {
            if let Some(m) = MyersAny::new(x) {
                prop_assert_eq!(m.distance(y), levenshtein(x, y));
            } else {
                prop_assert!(x.is_empty());
            }
            Ok(())
        },
    );
}

#[test]
fn myers_within_equals_full() {
    check(
        "myers_within_equals_full",
        Config::default(),
        &gen::zip3(dna_string(), dna_string(), gen::u32_in(0..20)),
        |(x, y, k)| {
            if let Some(m) = MyersAny::new(x) {
                let truth = levenshtein(x, y);
                let want = (truth <= *k).then_some(truth);
                prop_assert_eq!(m.within(y, *k), want);
            }
            Ok(())
        },
    );
}

#[test]
fn all_bounded_kernels_agree() {
    check(
        "all_bounded_kernels_agree",
        Config::default(),
        &gen::zip3(small_string(), small_string(), gen::u32_in(0..6)),
        |(x, y, k)| {
            let truth = levenshtein(x, y);
            let want = (truth <= *k).then_some(truth);
            for kind in KernelKind::ALL {
                let mut kernel = BoundedKernel::compile(kind, x, *k);
                prop_assert_eq!(kernel.within(y), want, "kernel {}", kind.name());
            }
            Ok(())
        },
    );
}

// ---- cross-kernel oracle (satellite 1) ----
//
// Every kernel in the workspace — full, two_row, banded, early_abort,
// myers, myers_block, packed — must agree on 1,000 seeded random
// (query, candidate, k) triples per alphabet. Bounded variants are held
// to their ≤k contract against the full-matrix truth.

#[test]
fn cross_kernel_oracle_city() {
    check(
        "cross_kernel_oracle_city",
        Config::cases(1_000).seed(0xC17E_0AC1),
        &gen::zip3(
            gen::city_string(0..40),
            gen::city_string(0..40),
            gen::u32_in(0..8),
        ),
        |(q, c, k)| assert_all_kernels_agree(q, c, *k),
    );
}

#[test]
fn cross_kernel_oracle_dna() {
    // Lengths up to 150 exercise MyersBlock's multi-word path, and the
    // DNA alphabet makes the packed 3-bit kernel participate.
    check(
        "cross_kernel_oracle_dna",
        Config::cases(1_000).seed(0xD2A_0AC1),
        &gen::zip3(dna_string(), dna_string(), gen::u32_in(0..20)),
        |(q, c, k)| assert_all_kernels_agree(q, c, *k),
    );
}

#[test]
fn cross_kernel_oracle_mutated_pairs() {
    // Near-miss pairs: the candidate is the query perturbed by at most
    // `budget` edits, so the k decision boundary is hit constantly.
    check(
        "cross_kernel_oracle_mutated_pairs",
        Config::cases(1_000).seed(0x0E17_0AC1),
        &gen::zip(
            gen::mutated(gen::dna_string(1..100), 0..6, gen::DNA),
            gen::u32_in(0..6),
        ),
        |((q, c, _budget), k)| assert_all_kernels_agree(q, c, *k),
    );
}

// ---- block-resume correctness (rung V8) ----
//
// The resumable bit-parallel stack kernel, resumed at the LCP floor
// between candidates that share a random prefix, must answer exactly
// like a fresh `MyersBlock::within` — on both workload alphabets.

fn myers_stack_resume_oracle(
    query: &[u8],
    prefix: &[u8],
    s1: &[u8],
    s2: &[u8],
    k: u32,
) -> simsearch_testkit::TestResult {
    let mut c1 = prefix.to_vec();
    c1.extend_from_slice(s1);
    let mut c2 = prefix.to_vec();
    c2.extend_from_slice(s2);
    let shared = c1.iter().zip(&c2).take_while(|(a, b)| a == b).count();
    let mut dp = MyersStackKernel::new(query, k);
    if query.is_empty() {
        // No bit-parallel form to compare against; hold the kernel to
        // the degenerate truth (distance = candidate length) instead.
        for c in [&c1, &c2] {
            let truth = c.len() as u32;
            prop_assert_eq!(dp.resume(c, 0), (truth <= k).then_some(truth));
        }
        return Ok(());
    }
    let fresh = MyersBlock::new(query).expect("non-empty");
    prop_assert_eq!(dp.resume(&c1, 0), fresh.within(&c1, k), "first candidate");
    prop_assert_eq!(
        dp.resume(&c2, shared),
        fresh.within(&c2, k),
        "resumed at the LCP floor"
    );
    // A third pass over c1 resumed at the same floor (the stack now
    // holds c2's column) must still agree.
    prop_assert_eq!(dp.resume(&c1, shared), fresh.within(&c1, k), "back to c1");
    Ok(())
}

#[test]
fn myers_stack_resume_equals_fresh_within_city() {
    check(
        "myers_stack_resume_equals_fresh_within_city",
        Config::cases(400).seed(0xC17E_57AC),
        &gen::zip3(
            gen::zip(gen::city_string(0..30), gen::city_string(0..20)),
            gen::zip(gen::city_string(0..15), gen::city_string(0..15)),
            gen::u32_in(0..8),
        ),
        |((q, prefix), (s1, s2), k)| myers_stack_resume_oracle(q, prefix, s1, s2, *k),
    );
}

#[test]
fn myers_stack_resume_equals_fresh_within_dna() {
    // Queries and shared prefixes long enough to cross the 64-byte
    // block boundary, so the resume truncates multi-word checkpoints.
    check(
        "myers_stack_resume_equals_fresh_within_dna",
        Config::cases(400).seed(0xD7A_57AC),
        &gen::zip3(
            gen::zip(gen::dna_string(0..150), gen::dna_string(0..100)),
            gen::zip(gen::dna_string(0..60), gen::dna_string(0..60)),
            gen::u32_in(0..20),
        ),
        |((q, prefix), (s1, s2), k)| myers_stack_resume_oracle(q, prefix, s1, s2, *k),
    );
}

#[test]
fn incremental_fully_pushed_equals_full() {
    check(
        "incremental_fully_pushed_equals_full",
        Config::default(),
        &gen::zip3(small_string(), small_string(), gen::u32_in(0..6)),
        |(x, y, k)| {
            let mut dp = IncrementalDp::new(x, *k);
            for &c in y {
                dp.push(c);
            }
            let truth = levenshtein(x, y);
            let want = (truth <= *k).then_some(truth);
            prop_assert_eq!(dp.distance(), want);
            Ok(())
        },
    );
}

#[test]
fn incremental_prune_is_sound() {
    check(
        "incremental_prune_is_sound",
        Config::default(),
        &gen::zip3(small_string(), small_string(), gen::u32_in(0..4)),
        |(x, y, k)| {
            // If the prune fires at any prefix of y, then no extension of
            // that prefix — in particular y itself — may be within k.
            let mut dp = IncrementalDp::new(x, *k);
            let mut pruned = false;
            for &c in y {
                dp.push(c);
                if !dp.can_extend() {
                    pruned = true;
                    break;
                }
            }
            if pruned {
                prop_assert!(levenshtein(x, y) > *k);
            }
            Ok(())
        },
    );
}

#[test]
fn packed_equals_banded() {
    check(
        "packed_equals_banded",
        Config::default(),
        &gen::zip3(dna_string(), dna_string(), gen::u32_in(0..20)),
        |(x, y, k)| {
            let qc = query_codes(x).unwrap();
            let p = simsearch_data::PackedSeq::pack(y).unwrap();
            let mut buf = Vec::new();
            prop_assert_eq!(
                ed_within_packed_with(&mut buf, &qc, &p, *k),
                ed_within_banded(x, y, *k)
            );
            Ok(())
        },
    );
}

// ---- metric axioms ----

#[test]
fn symmetry() {
    check(
        "symmetry",
        Config::default(),
        &gen::zip(byte_string(), byte_string()),
        |(x, y)| {
            prop_assert_eq!(levenshtein(x, y), levenshtein(y, x));
            Ok(())
        },
    );
}

#[test]
fn identity() {
    check("identity", Config::default(), &byte_string(), |x| {
        prop_assert_eq!(levenshtein(x, x), 0);
        Ok(())
    });
}

#[test]
fn positivity() {
    check(
        "positivity",
        Config::default(),
        &gen::zip(byte_string(), byte_string()),
        |(x, y)| {
            if x != y {
                prop_assert!(levenshtein(x, y) > 0);
            }
            Ok(())
        },
    );
}

#[test]
fn triangle_inequality() {
    check(
        "triangle_inequality",
        Config::default(),
        &gen::zip3(small_string(), small_string(), small_string()),
        |(x, y, z)| {
            prop_assert!(levenshtein(x, z) <= levenshtein(x, y) + levenshtein(y, z));
            Ok(())
        },
    );
}

#[test]
fn length_difference_is_lower_bound() {
    check(
        "length_difference_is_lower_bound",
        Config::default(),
        &gen::zip(byte_string(), byte_string()),
        |(x, y)| {
            prop_assert!(levenshtein(x, y) >= x.len().abs_diff(y.len()) as u32);
            Ok(())
        },
    );
}

#[test]
fn max_length_is_upper_bound() {
    check(
        "max_length_is_upper_bound",
        Config::default(),
        &gen::zip(byte_string(), byte_string()),
        |(x, y)| {
            prop_assert!(levenshtein(x, y) <= x.len().max(y.len()) as u32);
            Ok(())
        },
    );
}

#[test]
fn hamming_upper_bounds_levenshtein() {
    check(
        "hamming_upper_bounds_levenshtein",
        Config::default(),
        &byte_string(),
        |x| {
            // Build an equal-length y by mutating x.
            let y: Vec<u8> = x.iter().map(|&b| b.wrapping_add(1)).collect();
            if let Some(h) = hamming(x, &y) {
                prop_assert!(levenshtein(x, &y) <= h);
            }
            Ok(())
        },
    );
}

#[test]
fn damerau_never_exceeds_levenshtein() {
    check(
        "damerau_never_exceeds_levenshtein",
        Config::default(),
        &gen::zip(small_string(), small_string()),
        |(x, y)| {
            prop_assert!(damerau_osa(x, y) <= levenshtein(x, y));
            Ok(())
        },
    );
}

#[test]
fn single_edit_distance_is_at_most_one() {
    check(
        "single_edit_distance_is_at_most_one",
        Config::default(),
        &gen::zip3(byte_string(), gen::u64_any(), gen::byte_any()),
        |(x, pos, b)| {
            let mut y = x.clone();
            if y.is_empty() {
                y.push(*b);
            } else {
                let p = (*pos as usize) % y.len();
                y[p] = *b;
            }
            prop_assert!(levenshtein(x, &y) <= 1);
            Ok(())
        },
    );
}

#[test]
fn edit_scripts_are_minimal_and_correct() {
    check(
        "edit_scripts_are_minimal_and_correct",
        Config::default(),
        &gen::zip(byte_string(), byte_string()),
        |(x, y)| {
            let (steps, d) = simsearch_distance::edit_script(x, y);
            prop_assert_eq!(d, levenshtein(x, y));
            let cost: u32 = steps.iter().map(simsearch_distance::EditStep::cost).sum();
            prop_assert_eq!(cost, d);
            prop_assert_eq!(&simsearch_distance::apply_script(x, &steps), y);
            Ok(())
        },
    );
}

#[test]
fn substring_distance_never_exceeds_global() {
    check(
        "substring_distance_never_exceeds_global",
        Config::default(),
        &gen::zip(dna_string(), dna_string()),
        |(x, y)| {
            let sub = simsearch_distance::substring_distance(x, y).distance;
            prop_assert!(sub <= levenshtein(x, y));
            // And never exceeds the pattern length (aligning to the empty
            // substring).
            prop_assert!(sub <= x.len() as u32);
            Ok(())
        },
    );
}

#[test]
fn substring_myers_agrees_with_dp() {
    check(
        "substring_myers_agrees_with_dp",
        Config::default(),
        &gen::zip(gen::dna_string(0..60), dna_string()),
        |(x, y)| {
            prop_assert_eq!(
                simsearch_distance::semi_global::substring_distance_myers(x, y),
                simsearch_distance::substring_distance(x, y)
            );
            Ok(())
        },
    );
}

#[test]
fn planted_occurrence_is_found() {
    check(
        "planted_occurrence_is_found",
        Config::default(),
        &gen::zip3(gen::bytes_from(b"ACGT", 1..20), dna_string(), dna_string()),
        |(needle, prefix, suffix)| {
            let mut text = prefix.clone();
            text.extend_from_slice(needle);
            text.extend_from_slice(suffix);
            prop_assert_eq!(
                simsearch_distance::substring_distance(needle, &text).distance,
                0
            );
            Ok(())
        },
    );
}
