//! Property-based tests for every distance kernel: agreement with the
//! full-matrix oracle, plus the metric axioms of the edit distance.

use proptest::prelude::*;
use simsearch_distance::{
    banded::ed_within_banded,
    damerau::damerau_osa,
    early_abort::ed_within_early_abort,
    full::{levenshtein, levenshtein_naive_alloc},
    hamming::hamming,
    incremental::IncrementalDp,
    myers_block::MyersAny,
    packed::{ed_within_packed_with, query_codes},
    two_row::levenshtein_two_row,
    BoundedKernel, KernelKind,
};

/// Short strings over a small alphabet: maximizes collision-rich cases.
fn small_string() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"abAB".to_vec()), 0..12)
}

/// Arbitrary-byte strings of moderate length.
fn byte_string() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..40)
}

/// DNA strings long enough to cross the 64-byte Myers block boundary.
fn dna_string() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"ACGNT".to_vec()), 0..150)
}

proptest! {
    #[test]
    fn two_row_equals_full(x in byte_string(), y in byte_string()) {
        prop_assert_eq!(levenshtein_two_row(&x, &y), levenshtein(&x, &y));
    }

    #[test]
    fn naive_alloc_equals_full(x in small_string(), y in small_string()) {
        prop_assert_eq!(levenshtein_naive_alloc(&x, &y), levenshtein(&x, &y));
    }

    #[test]
    fn early_abort_equals_full(x in small_string(), y in small_string(), k in 0u32..6) {
        let truth = levenshtein(&x, &y);
        let want = (truth <= k).then_some(truth);
        prop_assert_eq!(ed_within_early_abort(&x, &y, k), want);
    }

    #[test]
    fn banded_equals_full(x in byte_string(), y in byte_string(), k in 0u32..10) {
        let truth = levenshtein(&x, &y);
        let want = (truth <= k).then_some(truth);
        prop_assert_eq!(ed_within_banded(&x, &y, k), want);
    }

    #[test]
    fn myers_equals_full(x in dna_string(), y in dna_string()) {
        if let Some(m) = MyersAny::new(&x) {
            prop_assert_eq!(m.distance(&y), levenshtein(&x, &y));
        } else {
            prop_assert!(x.is_empty());
        }
    }

    #[test]
    fn myers_within_equals_full(x in dna_string(), y in dna_string(), k in 0u32..20) {
        if let Some(m) = MyersAny::new(&x) {
            let truth = levenshtein(&x, &y);
            let want = (truth <= k).then_some(truth);
            prop_assert_eq!(m.within(&y, k), want);
        }
    }

    #[test]
    fn all_bounded_kernels_agree(x in small_string(), y in small_string(), k in 0u32..6) {
        let truth = levenshtein(&x, &y);
        let want = (truth <= k).then_some(truth);
        for kind in KernelKind::ALL {
            let mut kernel = BoundedKernel::compile(kind, &x, k);
            prop_assert_eq!(kernel.within(&y), want, "kernel {}", kind.name());
        }
    }

    #[test]
    fn incremental_fully_pushed_equals_full(x in small_string(), y in small_string(), k in 0u32..6) {
        let mut dp = IncrementalDp::new(&x, k);
        for &c in &y {
            dp.push(c);
        }
        let truth = levenshtein(&x, &y);
        let want = (truth <= k).then_some(truth);
        prop_assert_eq!(dp.distance(), want);
    }

    #[test]
    fn incremental_prune_is_sound(x in small_string(), y in small_string(), k in 0u32..4) {
        // If the prune fires at any prefix of y, then no extension of that
        // prefix — in particular y itself — may be within k.
        let mut dp = IncrementalDp::new(&x, k);
        let mut pruned = false;
        for &c in &y {
            dp.push(c);
            if !dp.can_extend() {
                pruned = true;
                break;
            }
        }
        if pruned {
            prop_assert!(levenshtein(&x, &y) > k);
        }
    }

    #[test]
    fn packed_equals_banded(x in dna_string(), y in dna_string(), k in 0u32..20) {
        let qc = query_codes(&x).unwrap();
        let p = simsearch_data::PackedSeq::pack(&y).unwrap();
        let mut buf = Vec::new();
        prop_assert_eq!(
            ed_within_packed_with(&mut buf, &qc, &p, k),
            ed_within_banded(&x, &y, k)
        );
    }

    // ---- metric axioms ----

    #[test]
    fn symmetry(x in byte_string(), y in byte_string()) {
        prop_assert_eq!(levenshtein(&x, &y), levenshtein(&y, &x));
    }

    #[test]
    fn identity(x in byte_string()) {
        prop_assert_eq!(levenshtein(&x, &x), 0);
    }

    #[test]
    fn positivity(x in byte_string(), y in byte_string()) {
        if x != y {
            prop_assert!(levenshtein(&x, &y) > 0);
        }
    }

    #[test]
    fn triangle_inequality(x in small_string(), y in small_string(), z in small_string()) {
        prop_assert!(levenshtein(&x, &z) <= levenshtein(&x, &y) + levenshtein(&y, &z));
    }

    #[test]
    fn length_difference_is_lower_bound(x in byte_string(), y in byte_string()) {
        prop_assert!(levenshtein(&x, &y) >= x.len().abs_diff(y.len()) as u32);
    }

    #[test]
    fn max_length_is_upper_bound(x in byte_string(), y in byte_string()) {
        prop_assert!(levenshtein(&x, &y) <= x.len().max(y.len()) as u32);
    }

    #[test]
    fn hamming_upper_bounds_levenshtein(x in byte_string()) {
        // Build an equal-length y by mutating x.
        let y: Vec<u8> = x.iter().map(|&b| b.wrapping_add(1)).collect();
        if let Some(h) = hamming(&x, &y) {
            prop_assert!(levenshtein(&x, &y) <= h);
        }
    }

    #[test]
    fn damerau_never_exceeds_levenshtein(x in small_string(), y in small_string()) {
        prop_assert!(damerau_osa(&x, &y) <= levenshtein(&x, &y));
    }

    #[test]
    fn single_edit_distance_is_at_most_one(x in byte_string(), pos in any::<usize>(), b in any::<u8>()) {
        let mut y = x.clone();
        if y.is_empty() {
            y.push(b);
        } else {
            let p = pos % y.len();
            y[p] = b;
        }
        prop_assert!(levenshtein(&x, &y) <= 1);
    }
}

proptest! {
    #[test]
    fn edit_scripts_are_minimal_and_correct(x in byte_string(), y in byte_string()) {
        let (steps, d) = simsearch_distance::edit_script(&x, &y);
        prop_assert_eq!(d, levenshtein(&x, &y));
        let cost: u32 = steps.iter().map(simsearch_distance::EditStep::cost).sum();
        prop_assert_eq!(cost, d);
        prop_assert_eq!(simsearch_distance::apply_script(&x, &steps), y);
    }
}

proptest! {
    #[test]
    fn substring_distance_never_exceeds_global(x in dna_string(), y in dna_string()) {
        let sub = simsearch_distance::substring_distance(&x, &y).distance;
        prop_assert!(sub <= levenshtein(&x, &y));
        // And never exceeds the pattern length (aligning to the empty substring).
        prop_assert!(sub <= x.len() as u32);
    }

    #[test]
    fn substring_myers_agrees_with_dp(x in proptest::collection::vec(proptest::sample::select(b"ACGNT".to_vec()), 0..60), y in dna_string()) {
        prop_assert_eq!(
            simsearch_distance::semi_global::substring_distance_myers(&x, &y),
            simsearch_distance::substring_distance(&x, &y)
        );
    }

    #[test]
    fn planted_occurrence_is_found(needle in proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 1..20), prefix in dna_string(), suffix in dna_string()) {
        let mut text = prefix.clone();
        text.extend_from_slice(&needle);
        text.extend_from_slice(&suffix);
        prop_assert_eq!(simsearch_distance::substring_distance(&needle, &text).distance, 0);
    }
}
