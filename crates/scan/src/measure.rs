//! Alternative similarity measures under the sequential scan.
//!
//! PETER — the related-work system the paper's index design follows —
//! supports the Hamming distance alongside the edit distance (§2.3);
//! the OSA Damerau–Levenshtein distance covers the adjacent-transposition
//! typo class of the paper's motivating application. Both reuse the flat
//! scan machinery, so the measure is one more configuration axis.

use simsearch_data::{Dataset, Match, MatchSet};
use simsearch_distance::damerau::damerau_osa_within;
use simsearch_distance::ed_within_early_abort_with;
use simsearch_distance::hamming::hamming_within;

/// The similarity measure of a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Measure {
    /// Unweighted Levenshtein distance (the paper's measure).
    #[default]
    Levenshtein,
    /// Hamming distance: substitutions only, equal lengths (PETER's
    /// second measure).
    Hamming,
    /// OSA Damerau–Levenshtein: Levenshtein plus adjacent
    /// transpositions.
    DamerauOsa,
}

impl Measure {
    /// Stable short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Measure::Levenshtein => "levenshtein",
            Measure::Hamming => "hamming",
            Measure::DamerauOsa => "damerau-osa",
        }
    }
}

/// Scans `dataset` for all records within `k` of `query` under the given
/// measure.
pub fn measure_scan(dataset: &Dataset, query: &[u8], k: u32, measure: Measure) -> MatchSet {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (id, record) in dataset.iter() {
        let d = match measure {
            Measure::Levenshtein => {
                if record.len().abs_diff(query.len()) > k as usize {
                    None
                } else {
                    ed_within_early_abort_with(&mut rows, query, record, k)
                }
            }
            Measure::Hamming => hamming_within(query, record, k),
            Measure::DamerauOsa => damerau_osa_within(query, record, k),
        };
        if let Some(d) = d {
            out.push(Match::new(id, d));
        }
    }
    MatchSet::from_unsorted(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_records(["Berlin", "Barlin", "Berlni", "Bern", "nilreB"])
    }

    #[test]
    fn hamming_requires_equal_lengths() {
        let ds = sample();
        let res = measure_scan(&ds, b"Berlin", 2, Measure::Hamming);
        // "Bern" has different length -> excluded under Hamming.
        assert!(res.contains(0)); // Berlin itself, d = 0
        assert!(res.contains(1)); // Barlin, 1 substitution
        assert!(res.contains(2)); // Berlni, 2 substitutions
        assert!(!res.contains(3)); // Bern
        assert!(!res.contains(4)); // nilreB: 6 substitutions? no, > 2
    }

    #[test]
    fn damerau_catches_transpositions_cheaper() {
        let ds = sample();
        let lev = measure_scan(&ds, b"Berlin", 1, Measure::Levenshtein);
        let dam = measure_scan(&ds, b"Berlin", 1, Measure::DamerauOsa);
        // "Berlni" is a transposition: distance 2 under Levenshtein but
        // 1 under Damerau.
        assert!(!lev.contains(2));
        assert!(dam.contains(2));
        // Damerau never misses a Levenshtein match.
        for m in lev.iter() {
            assert!(dam.contains(m.id));
        }
    }

    #[test]
    fn levenshtein_measure_matches_the_regular_scan() {
        let ds = sample();
        for k in 0..4 {
            let via_measure = measure_scan(&ds, b"Bern", k, Measure::Levenshtein);
            let via_scanner = crate::SequentialScan::new(&ds)
                .search_one(crate::SeqVariant::V4Flat, b"Bern", k);
            assert_eq!(via_measure, via_scanner);
        }
    }

    #[test]
    fn measure_names() {
        assert_eq!(Measure::Levenshtein.name(), "levenshtein");
        assert_eq!(Measure::Hamming.name(), "hamming");
        assert_eq!(Measure::DamerauOsa.name(), "damerau-osa");
    }
}
