//! Approximate substring scan: find the records *containing* an
//! approximate occurrence of a pattern — read-mapping style search over
//! the DNA workload (the whole-string search's semi-global sibling).

use simsearch_data::{Dataset, RecordId};
use simsearch_distance::semi_global::{substring_distance, substring_distance_myers, SubstringMatch};

/// One record containing an approximate occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubstringHit {
    /// The containing record.
    pub id: RecordId,
    /// The best occurrence within it.
    pub best: SubstringMatch,
}

/// Scans `dataset` for records containing `pattern` within edit distance
/// `k`, using the Sellers DP kernel. Results are ascending by record id.
pub fn substring_scan(dataset: &Dataset, pattern: &[u8], k: u32) -> Vec<SubstringHit> {
    scan_with(dataset, pattern, k, substring_distance)
}

/// Like [`substring_scan`] with the bit-parallel kernel (patterns of at
/// most 64 bytes run in O(1) words per text byte).
pub fn substring_scan_myers(dataset: &Dataset, pattern: &[u8], k: u32) -> Vec<SubstringHit> {
    scan_with(dataset, pattern, k, substring_distance_myers)
}

fn scan_with(
    dataset: &Dataset,
    pattern: &[u8],
    k: u32,
    kernel: fn(&[u8], &[u8]) -> SubstringMatch,
) -> Vec<SubstringHit> {
    let mut out = Vec::new();
    for (id, record) in dataset.iter() {
        // A record shorter than |pattern| − k cannot host a within-k
        // occurrence (at least |pattern| − k pattern symbols must align).
        if record.len() + (k as usize) < pattern.len() {
            continue;
        }
        let best = kernel(pattern, record);
        if best.distance <= k {
            out.push(SubstringHit { id, best });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads() -> Dataset {
        Dataset::from_records([
            "TTTTGATTACATTTT",  // exact occurrence
            "TTTTGATCACATTTT",  // one substitution
            "CCCCCCCCCCCCCCC",  // no occurrence
            "GATTACA",          // the read *is* the pattern
            "GAT",              // too short
        ])
    }

    #[test]
    fn finds_containing_records() {
        let hits = substring_scan(&reads(), b"GATTACA", 0);
        let ids: Vec<u32> = hits.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![0, 3]);
        assert_eq!(hits[0].best.distance, 0);
        assert_eq!(hits[0].best.end, 11);
    }

    #[test]
    fn threshold_loosens_the_match() {
        let hits = substring_scan(&reads(), b"GATTACA", 1);
        let ids: Vec<u32> = hits.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![0, 1, 3]);
    }

    #[test]
    fn myers_kernel_agrees() {
        let ds = reads();
        for k in 0..4 {
            assert_eq!(
                substring_scan(&ds, b"GATTACA", k),
                substring_scan_myers(&ds, b"GATTACA", k),
                "k={k}"
            );
        }
    }

    #[test]
    fn short_record_filter_is_sound() {
        // "GAT" (len 3) can host "GATTA" (len 5) only at distance ≥ 2.
        let ds = reads();
        let hits = substring_scan(&ds, b"GATTA", 2);
        assert!(hits.iter().any(|h| h.id == 4));
        let hits = substring_scan(&ds, b"GATTA", 1);
        assert!(!hits.iter().any(|h| h.id == 4));
    }
}
