//! The sequential scanner: one type, every rung of the ladder.
//!
//! [`SequentialScan`] borrows a dataset and can execute a workload under
//! any [`SeqVariant`] — each rung implemented exactly as the paper
//! describes it, including the deliberately wasteful aspects of the early
//! rungs (fresh allocations, value-semantics copies), so that the
//! rung-over-rung speedups of Tables III/VII are reproducible.

use crate::variant::SeqVariant;
use simsearch_data::{Dataset, Match, MatchSet, Workload};
use simsearch_distance::{
    ed_within_banded_with, ed_within_early_abort, ed_within_early_abort_with,
    levenshtein_naive_alloc, BoundedKernel, KernelKind,
};
use simsearch_parallel::{run_queries, Strategy};

/// A sequential-scan engine over one dataset.
pub struct SequentialScan<'a> {
    dataset: &'a Dataset,
    /// Owned per-record copies, as the paper's base implementation holds
    /// (a container of string objects). Used by rungs V1–V3.
    owned: Vec<Vec<u8>>,
}

impl<'a> SequentialScan<'a> {
    /// Prepares a scanner (materializes the owned-record container the
    /// early rungs operate on).
    pub fn new(dataset: &'a Dataset) -> Self {
        Self {
            dataset,
            owned: dataset.to_owned_records(),
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        self.dataset
    }

    /// Answers one query under the given rung.
    pub fn search_one(&self, variant: SeqVariant, query: &[u8], k: u32) -> MatchSet {
        match variant {
            SeqVariant::V1Base => self.v1_base(query, k),
            SeqVariant::V2FastEd => self.v2_fast_ed(query, k),
            SeqVariant::V3Borrowed => self.v3_borrowed(query, k),
            // Rungs 4–6 share the flat kernel; 5 and 6 differ only in how
            // whole workloads are scheduled.
            SeqVariant::V4Flat | SeqVariant::V5ThreadPerQuery | SeqVariant::V6Pool { .. } => {
                self.flat_search(query, k)
            }
        }
    }

    /// Executes a workload under the given rung, one result set per query.
    pub fn run(&self, variant: SeqVariant, workload: &Workload) -> Vec<MatchSet> {
        let strategy = match variant {
            SeqVariant::V5ThreadPerQuery => Strategy::ThreadPerQuery,
            SeqVariant::V6Pool { threads } => Strategy::FixedPool { threads },
            _ => Strategy::Sequential,
        };
        run_queries(strategy, workload.len(), |i| {
            let q = &workload.queries[i];
            self.search_one(variant, &q.text, q.threshold)
        })
    }

    /// Extension beyond the paper's ladder: executes a workload with an
    /// arbitrary kernel/executor combination (used by the ablation
    /// benchmarks).
    pub fn run_with(
        &self,
        kernel: KernelKind,
        strategy: Strategy,
        workload: &Workload,
    ) -> Vec<MatchSet> {
        run_queries(strategy, workload.len(), |i| {
            let q = &workload.queries[i];
            self.kernel_search(kernel, &q.text, q.threshold)
        })
    }

    /// Rung 1: owned copies of query and candidate per comparison, naive
    /// full matrix with fresh nested allocations, no filters.
    fn v1_base(&self, query: &[u8], k: u32) -> MatchSet {
        let mut out = Vec::new();
        for (id, record) in self.owned.iter().enumerate() {
            // Value semantics: both operands are copied for the call,
            // exactly what passing `std::string` by value does in C++.
            let q: Vec<u8> = query.to_vec();
            let c: Vec<u8> = record.clone();
            let d = levenshtein_naive_alloc(&q, &c);
            if d <= k {
                out.push(Match::new(id as u32, d));
            }
        }
        MatchSet::from_unsorted(out)
    }

    /// Rung 2: rung 1 plus the §3.2 improvements — length filter and
    /// decisive-diagonal abort. Copies and per-call buffers remain.
    fn v2_fast_ed(&self, query: &[u8], k: u32) -> MatchSet {
        let mut out = Vec::new();
        for (id, record) in self.owned.iter().enumerate() {
            let q: Vec<u8> = query.to_vec();
            let c: Vec<u8> = record.clone();
            if let Some(d) = ed_within_early_abort(&q, &c, k) {
                out.push(Match::new(id as u32, d));
            }
        }
        MatchSet::from_unsorted(out)
    }

    /// Rung 3: reference semantics — no copies; the DP buffer is still
    /// allocated per comparison (that falls in rung 4's remit).
    fn v3_borrowed(&self, query: &[u8], k: u32) -> MatchSet {
        let mut out = Vec::new();
        for (id, record) in self.owned.iter().enumerate() {
            if let Some(d) = ed_within_early_abort(query, record, k) {
                out.push(Match::new(id as u32, d));
            }
        }
        MatchSet::from_unsorted(out)
    }

    /// Rungs 4–6 kernel: flat arena traversal, one reusable row buffer,
    /// length check from the offsets table before touching record bytes.
    fn flat_search(&self, query: &[u8], k: u32) -> MatchSet {
        let mut rows = Vec::new();
        let mut out = Vec::new();
        let n = self.dataset.len() as u32;
        for id in 0..n {
            if self.dataset.record_len(id).abs_diff(query.len()) > k as usize {
                continue;
            }
            if let Some(d) =
                ed_within_early_abort_with(&mut rows, query, self.dataset.get(id), k)
            {
                out.push(Match::new(id, d));
            }
        }
        MatchSet::from_unsorted(out)
    }

    /// Flat scan with a selectable kernel (ablation extension).
    fn kernel_search(&self, kernel: KernelKind, query: &[u8], k: u32) -> MatchSet {
        let mut out = Vec::new();
        let n = self.dataset.len() as u32;
        match kernel {
            KernelKind::EarlyAbort => return self.flat_search(query, k),
            KernelKind::Banded => {
                let mut rows = Vec::new();
                for id in 0..n {
                    if self.dataset.record_len(id).abs_diff(query.len()) > k as usize {
                        continue;
                    }
                    if let Some(d) =
                        ed_within_banded_with(&mut rows, query, self.dataset.get(id), k)
                    {
                        out.push(Match::new(id, d));
                    }
                }
            }
            KernelKind::Myers => {
                let mut kernel = BoundedKernel::compile(KernelKind::Myers, query, k);
                for id in 0..n {
                    if self.dataset.record_len(id).abs_diff(query.len()) > k as usize {
                        continue;
                    }
                    if let Some(d) = kernel.within(self.dataset.get(id)) {
                        out.push(Match::new(id, d));
                    }
                }
            }
        }
        MatchSet::from_unsorted(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_data::workload::QueryRecord;
    use simsearch_distance::levenshtein;

    fn dataset() -> Dataset {
        Dataset::from_records([
            "Berlin", "Bern", "Bonn", "Ulm", "Bärlin", "Berlingen", "B", "", "Ber", "Ulmen",
        ])
    }

    fn brute_force(ds: &Dataset, q: &[u8], k: u32) -> MatchSet {
        ds.iter()
            .filter_map(|(id, r)| {
                let d = levenshtein(q, r);
                (d <= k).then_some(Match::new(id, d))
            })
            .collect()
    }

    #[test]
    fn every_rung_returns_identical_results() {
        let ds = dataset();
        let scan = SequentialScan::new(&ds);
        for q in ["Berlin", "Bern", "Urm", "", "Xyz"] {
            for k in 0..4 {
                let expected = brute_force(&ds, q.as_bytes(), k);
                for v in SeqVariant::ladder(4) {
                    assert_eq!(
                        scan.search_one(v, q.as_bytes(), k),
                        expected,
                        "variant {v:?} q={q} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn run_executes_whole_workloads_identically_across_rungs() {
        let ds = dataset();
        let scan = SequentialScan::new(&ds);
        let workload = Workload {
            queries: vec![
                QueryRecord::new("Berlin", 2),
                QueryRecord::new("Ulm", 1),
                QueryRecord::new("Bern", 0),
                QueryRecord::new("zzz", 3),
            ],
        };
        let baseline = scan.run(SeqVariant::V1Base, &workload);
        for v in SeqVariant::ladder(4).into_iter().skip(1) {
            assert_eq!(scan.run(v, &workload), baseline, "variant {v:?}");
        }
    }

    #[test]
    fn kernel_extensions_agree_with_the_ladder() {
        let ds = dataset();
        let scan = SequentialScan::new(&ds);
        let workload = Workload {
            queries: vec![QueryRecord::new("Berlin", 2), QueryRecord::new("", 1)],
        };
        let baseline = scan.run(SeqVariant::V4Flat, &workload);
        for kernel in KernelKind::ALL {
            for strategy in [
                Strategy::Sequential,
                Strategy::FixedPool { threads: 2 },
                Strategy::WorkQueue { threads: 2 },
            ] {
                assert_eq!(
                    scan.run_with(kernel, strategy, &workload),
                    baseline,
                    "kernel {} strategy {}",
                    kernel.name(),
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn empty_dataset_and_empty_workload() {
        let ds = Dataset::new();
        let scan = SequentialScan::new(&ds);
        assert!(scan.search_one(SeqVariant::V4Flat, b"x", 2).is_empty());
        let empty = Workload::default();
        assert!(scan.run(SeqVariant::V6Pool { threads: 4 }, &empty).is_empty());
    }
}
