//! The sequential scanner: one type, every rung of the ladder.
//!
//! [`SequentialScan`] borrows a dataset and can execute a workload under
//! any [`SeqVariant`] — each rung implemented exactly as the paper
//! describes it, including the deliberately wasteful aspects of the early
//! rungs (fresh allocations, value-semantics copies), so that the
//! rung-over-rung speedups of Tables III/VII are reproducible.

use crate::variant::SeqVariant;
use simsearch_data::{Dataset, Match, MatchSet, SortedView, Workload};
use simsearch_distance::{
    ed_within_banded_with, ed_within_early_abort, ed_within_early_abort_with,
    levenshtein_naive_alloc, BoundedKernel, KernelKind, MyersStackKernel, RowStackKernel,
    RowStackMode,
};
use simsearch_filters::FilterChain;
use simsearch_parallel::{chunk_ranges, run_queries, Strategy};
use std::ops::Range;
use std::sync::OnceLock;

/// A sequential-scan engine over one dataset.
///
/// Auxiliary structures are lazy: the owned-record container (rungs
/// V1–V3's value-semantics world) and the [`SortedView`] (rung V7) are
/// built on first use — or eagerly via [`SequentialScan::prepare`], so an
/// engine can pay the one-time cost at build time rather than inside the
/// first timed query.
pub struct SequentialScan<'a> {
    dataset: &'a Dataset,
    /// Owned per-record copies, as the paper's base implementation holds
    /// (a container of string objects). Used by rungs V1–V3.
    owned: OnceLock<Vec<Vec<u8>>>,
    /// Lexicographically sorted view with LCP array. Used by rung V7.
    sorted: OnceLock<SortedView>,
}

impl<'a> SequentialScan<'a> {
    /// Borrows a dataset. No auxiliary structure is built yet — V4+ scans
    /// never touch the owned copies, and only V7 sorts.
    pub fn new(dataset: &'a Dataset) -> Self {
        Self {
            dataset,
            owned: OnceLock::new(),
            sorted: OnceLock::new(),
        }
    }

    /// The underlying dataset (with the dataset's own lifetime, so
    /// callers can keep the reference after the scan moves).
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// Eagerly builds whatever auxiliary structure `variant` needs
    /// (owned copies for V1–V3, the sorted view for V7/V8), so the cost
    /// is excluded from query timing. Idempotent.
    pub fn prepare(&self, variant: SeqVariant) {
        match variant {
            SeqVariant::V1Base | SeqVariant::V2FastEd | SeqVariant::V3Borrowed => {
                self.owned();
            }
            SeqVariant::V7SortedPrefix | SeqVariant::V8BitParallel => {
                self.sorted_view();
            }
            _ => {}
        }
    }

    /// The owned-record container, built on first use.
    fn owned(&self) -> &[Vec<u8>] {
        self.owned.get_or_init(|| self.dataset.to_owned_records())
    }

    /// The sorted view (permutation, remapped arena, LCP array), built on
    /// first use.
    pub fn sorted_view(&self) -> &SortedView {
        self.sorted.get_or_init(|| SortedView::build(self.dataset))
    }

    /// Answers one query under the given rung.
    pub fn search_one(&self, variant: SeqVariant, query: &[u8], k: u32) -> MatchSet {
        match variant {
            SeqVariant::V1Base => self.v1_base(query, k),
            SeqVariant::V2FastEd => self.v2_fast_ed(query, k),
            SeqVariant::V3Borrowed => self.v3_borrowed(query, k),
            // Rungs 4–6 share the flat kernel; 5 and 6 differ only in how
            // whole workloads are scheduled.
            SeqVariant::V4Flat | SeqVariant::V5ThreadPerQuery | SeqVariant::V6Pool { .. } => {
                self.flat_search(query, k)
            }
            SeqVariant::V7SortedPrefix => self.v7_search(query, k).0,
            SeqVariant::V8BitParallel => self.v8_search(query, k).0,
        }
    }

    /// Executes a workload under the given rung, one result set per query.
    pub fn run(&self, variant: SeqVariant, workload: &Workload) -> Vec<MatchSet> {
        let strategy = match variant {
            SeqVariant::V5ThreadPerQuery => Strategy::ThreadPerQuery,
            SeqVariant::V6Pool { threads } => Strategy::FixedPool { threads },
            _ => Strategy::Sequential,
        };
        run_queries(strategy, workload.len(), |i| {
            let q = &workload.queries[i];
            self.search_one(variant, &q.text, q.threshold)
        })
    }

    /// Extension beyond the paper's ladder: executes a workload with an
    /// arbitrary kernel/executor combination (used by the ablation
    /// benchmarks).
    pub fn run_with(
        &self,
        kernel: KernelKind,
        strategy: Strategy,
        workload: &Workload,
    ) -> Vec<MatchSet> {
        run_queries(strategy, workload.len(), |i| {
            let q = &workload.queries[i];
            self.kernel_search(kernel, &q.text, q.threshold)
        })
    }

    /// Executes a workload under rung V7 with an explicit executor —
    /// query-level parallelism; every query owns its row stack, so all
    /// strategies are trivially race-free.
    pub fn run_v7(&self, strategy: Strategy, workload: &Workload) -> Vec<MatchSet> {
        self.prepare(SeqVariant::V7SortedPrefix);
        run_queries(strategy, workload.len(), |i| {
            let q = &workload.queries[i];
            self.v7_search(&q.text, q.threshold).0
        })
    }

    /// Rung V7 for one query: walk the sorted view once, resuming the
    /// row-stack DP at the running LCP minimum. Returns the matches and
    /// the number of DP cells computed (for diagnostics).
    pub fn v7_search(&self, query: &[u8], k: u32) -> (MatchSet, u64) {
        v7_search_view(self.sorted_view(), query, k)
    }

    /// Rung V7 with intra-query data parallelism: the sorted view is cut
    /// into `chunks` contiguous ranges ([`chunk_ranges`]) and each range
    /// is scanned with its own row stack — DP state restarts (shared
    /// prefix 0) at every chunk boundary, so any executor is correct.
    pub fn v7_search_parallel(
        &self,
        query: &[u8],
        k: u32,
        strategy: Strategy,
        chunks: usize,
    ) -> MatchSet {
        let sv = self.sorted_view();
        let ranges = chunk_ranges(sv.len(), chunks.max(1));
        let parts = run_queries(strategy, ranges.len(), |i| {
            let mut dp = RowStackKernel::new(RowStackMode::Banded, query, k);
            self.v7_scan_range(&mut dp, query, k, ranges[i].clone())
        });
        MatchSet::from_unsorted(parts.into_iter().flatten().collect())
    }

    /// The V7 inner loop over one contiguous range of sorted positions.
    /// Delegates to [`v7_scan_view_range`] over the lazily built view.
    fn v7_scan_range(
        &self,
        dp: &mut RowStackKernel,
        query: &[u8],
        k: u32,
        range: Range<usize>,
    ) -> Vec<Match> {
        v7_scan_view_range(self.sorted_view(), dp, query, k, range)
    }

    /// Executes a workload under rung V8 with an explicit executor —
    /// query-level parallelism; every query compiles its own Peq table
    /// and block stack, so all strategies are trivially race-free.
    pub fn run_v8(&self, strategy: Strategy, workload: &Workload) -> Vec<MatchSet> {
        self.prepare(SeqVariant::V8BitParallel);
        run_queries(strategy, workload.len(), |i| {
            let q = &workload.queries[i];
            self.v8_search(&q.text, q.threshold).0
        })
    }

    /// Rung V8 for one query: sweep the sorted view once with the
    /// blocked bit-parallel stack kernel, resuming whole Myers words at
    /// the running LCP minimum. Returns the matches and the number of DP
    /// cells the advanced words represent (for diagnostics).
    pub fn v8_search(&self, query: &[u8], k: u32) -> (MatchSet, u64) {
        v8_search_view(self.sorted_view(), query, k)
    }

    /// Rung V8 with intra-query data parallelism: the sorted view is cut
    /// into `chunks` contiguous ranges ([`chunk_ranges`]) and each range
    /// is swept with its own Peq table and block stack — DP state
    /// restarts (shared prefix 0) at every chunk boundary, so any
    /// executor is correct.
    pub fn v8_search_parallel(
        &self,
        query: &[u8],
        k: u32,
        strategy: Strategy,
        chunks: usize,
    ) -> MatchSet {
        let sv = self.sorted_view();
        let ranges = chunk_ranges(sv.len(), chunks.max(1));
        let parts = run_queries(strategy, ranges.len(), |i| {
            let mut dp = MyersStackKernel::new(query, k);
            v8_scan_view_range(sv, &mut dp, query, k, ranges[i].clone())
        });
        MatchSet::from_unsorted(parts.into_iter().flatten().collect())
    }

    /// Rung 1: owned copies of query and candidate per comparison, naive
    /// full matrix with fresh nested allocations, no filters.
    fn v1_base(&self, query: &[u8], k: u32) -> MatchSet {
        let mut out = Vec::new();
        for (id, record) in self.owned().iter().enumerate() {
            // Value semantics: both operands are copied for the call,
            // exactly what passing `std::string` by value does in C++.
            let q: Vec<u8> = query.to_vec();
            let c: Vec<u8> = record.clone();
            let d = levenshtein_naive_alloc(&q, &c);
            if d <= k {
                out.push(Match::new(id as u32, d));
            }
        }
        MatchSet::from_unsorted(out)
    }

    /// Rung 2: rung 1 plus the §3.2 improvements — length filter and
    /// decisive-diagonal abort. Copies and per-call buffers remain.
    fn v2_fast_ed(&self, query: &[u8], k: u32) -> MatchSet {
        let mut out = Vec::new();
        for (id, record) in self.owned().iter().enumerate() {
            let q: Vec<u8> = query.to_vec();
            let c: Vec<u8> = record.clone();
            if let Some(d) = ed_within_early_abort(&q, &c, k) {
                out.push(Match::new(id as u32, d));
            }
        }
        MatchSet::from_unsorted(out)
    }

    /// Rung 3: reference semantics — no copies; the DP buffer is still
    /// allocated per comparison (that falls in rung 4's remit).
    fn v3_borrowed(&self, query: &[u8], k: u32) -> MatchSet {
        let mut out = Vec::new();
        for (id, record) in self.owned().iter().enumerate() {
            if let Some(d) = ed_within_early_abort(query, record, k) {
                out.push(Match::new(id as u32, d));
            }
        }
        MatchSet::from_unsorted(out)
    }

    /// Rungs 4–6 kernel: flat arena traversal, one reusable row buffer,
    /// length check from the offsets table before touching record bytes.
    fn flat_search(&self, query: &[u8], k: u32) -> MatchSet {
        let mut rows = Vec::new();
        let mut out = Vec::new();
        let n = self.dataset.len() as u32;
        for id in 0..n {
            if self.dataset.record_len(id).abs_diff(query.len()) > k as usize {
                continue;
            }
            if let Some(d) =
                ed_within_early_abort_with(&mut rows, query, self.dataset.get(id), k)
            {
                out.push(Match::new(id, d));
            }
        }
        MatchSet::from_unsorted(out)
    }

    /// Flat scan whose candidate set comes from a [`FilterChain`] —
    /// the unified filter→verify pipeline the planner's scan backend
    /// runs on. Every admitted candidate is verified with the banded
    /// early-abort kernel, so results are byte-identical to
    /// [`SequentialScan::search_one`] for any sound chain.
    pub fn search_filtered(&self, chain: &FilterChain, query: &[u8], k: u32) -> MatchSet {
        let prepared = chain.prepare(query, k);
        let mut rows = Vec::new();
        let mut out = Vec::new();
        for id in 0..self.dataset.len() as u32 {
            if !prepared.admits(id) {
                continue;
            }
            if let Some(d) =
                ed_within_early_abort_with(&mut rows, query, self.dataset.get(id), k)
            {
                out.push(Match::new(id, d));
            }
        }
        MatchSet::from_unsorted(out)
    }

    /// Runs a whole workload through [`SequentialScan::search_filtered`]
    /// under an explicit executor.
    pub fn run_filtered(
        &self,
        chain: &FilterChain,
        strategy: Strategy,
        workload: &Workload,
    ) -> Vec<MatchSet> {
        run_queries(strategy, workload.len(), |i| {
            let q = &workload.queries[i];
            self.search_filtered(chain, &q.text, q.threshold)
        })
    }

    /// Flat scan with a selectable kernel (ablation extension).
    fn kernel_search(&self, kernel: KernelKind, query: &[u8], k: u32) -> MatchSet {
        let mut out = Vec::new();
        let n = self.dataset.len() as u32;
        match kernel {
            KernelKind::EarlyAbort => return self.flat_search(query, k),
            KernelKind::Banded => {
                let mut rows = Vec::new();
                for id in 0..n {
                    if self.dataset.record_len(id).abs_diff(query.len()) > k as usize {
                        continue;
                    }
                    if let Some(d) =
                        ed_within_banded_with(&mut rows, query, self.dataset.get(id), k)
                    {
                        out.push(Match::new(id, d));
                    }
                }
            }
            KernelKind::Myers => {
                let mut kernel = BoundedKernel::compile(KernelKind::Myers, query, k);
                for id in 0..n {
                    if self.dataset.record_len(id).abs_diff(query.len()) > k as usize {
                        continue;
                    }
                    if let Some(d) = kernel.within(self.dataset.get(id)) {
                        out.push(Match::new(id, d));
                    }
                }
            }
        }
        MatchSet::from_unsorted(out)
    }
}

/// Flat (V1-style, unsorted) scan for one query over `dataset`,
/// consulting `keep` before every comparison.
///
/// This is the live-ingest memtable's search path: the memtable is an
/// append-only arena where deleted slots are masked by a tombstone set,
/// so the scan must skip rejected slots *without* computing a distance
/// for them. On the kept subset the result is byte-identical to the V1
/// oracle (length filter plus the banded bounded kernel — all kernels
/// agree, oracle-tested in `crates/testkit`).
pub fn flat_search_where(
    dataset: &Dataset,
    query: &[u8],
    k: u32,
    mut keep: impl FnMut(u32) -> bool,
) -> MatchSet {
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for id in 0..dataset.len() as u32 {
        if !keep(id) {
            continue;
        }
        if dataset.record_len(id).abs_diff(query.len()) > k as usize {
            continue;
        }
        if let Some(d) = ed_within_banded_with(&mut rows, query, dataset.get(id), k) {
            out.push(Match::new(id, d));
        }
    }
    MatchSet::from_unsorted(out)
}

/// Rung V7 for one query over an externally owned [`SortedView`]: walk
/// the view once, resuming the row-stack DP at the running LCP minimum.
/// Returns the matches and the number of DP cells computed.
///
/// This is the reusable core behind [`SequentialScan::v7_search`],
/// exposed so callers that own their view (per-shard backends, tools)
/// can run the sorted-prefix scan without borrowing a scanner.
pub fn v7_search_view(sv: &SortedView, query: &[u8], k: u32) -> (MatchSet, u64) {
    let mut dp = RowStackKernel::new(RowStackMode::Banded, query, k);
    let out = v7_scan_view_range(sv, &mut dp, query, k, 0..sv.len());
    (MatchSet::from_unsorted(out), dp.cells_computed())
}

/// The V7 inner loop over one contiguous range of sorted positions in
/// `sv`.
///
/// `stack_lcp` carries the minimum LCP seen since the last record the
/// kernel actually processed — records skipped by the length filter
/// still constrain how much of the stack the next record may reuse
/// (the LCP range-minimum property).
pub fn v7_scan_view_range(
    sv: &SortedView,
    dp: &mut RowStackKernel,
    query: &[u8],
    k: u32,
    range: Range<usize>,
) -> Vec<Match> {
    let mut out = Vec::new();
    let start = range.start;
    // The first record in a range restarts from row zero.
    let mut stack_lcp = 0usize;
    for pos in range {
        if pos > start {
            stack_lcp = stack_lcp.min(sv.lcp(pos));
        }
        if sv.record_len(pos).abs_diff(query.len()) > k as usize {
            continue;
        }
        if let Some(d) = dp.resume(sv.get(pos), stack_lcp) {
            out.push(Match::new(sv.original_id(pos), d));
        }
        stack_lcp = usize::MAX;
    }
    out
}

/// Rung V8 for one query over an externally owned [`SortedView`]: one
/// bit-parallel sweep, resuming Myers blocks at the running LCP minimum.
/// Returns the matches and the number of DP cells the advanced words
/// represent (`|query|` per candidate byte processed — the same unit V7
/// reports, so diagnostics stay comparable).
///
/// This is the reusable core behind [`SequentialScan::v8_search`],
/// exposed so callers that own their view (per-shard backends, tools)
/// can run the bit-parallel sweep without borrowing a scanner.
pub fn v8_search_view(sv: &SortedView, query: &[u8], k: u32) -> (MatchSet, u64) {
    let mut dp = MyersStackKernel::new(query, k);
    let out = v8_scan_view_range(sv, &mut dp, query, k, 0..sv.len());
    (MatchSet::from_unsorted(out), dp.cells_computed())
}

/// The V8 inner loop over one contiguous range of sorted positions in
/// `sv`.
///
/// The length filter streams the view's dense structure-of-arrays
/// lengths column ([`SortedView::lengths`]) so runs of filtered-out
/// records cost one packed cache line per 16 candidates, and `stack_lcp`
/// carries the minimum LCP seen since the last record the kernel
/// actually processed — records skipped by the length filter still
/// constrain how much of the block stack the next record may reuse (the
/// same LCP range-minimum discipline as the scalar V7 loop).
pub fn v8_scan_view_range(
    sv: &SortedView,
    dp: &mut MyersStackKernel,
    query: &[u8],
    k: u32,
    range: Range<usize>,
) -> Vec<Match> {
    let mut out = Vec::new();
    let start = range.start;
    let end = range.end;
    let lens = &sv.lengths()[range.clone()];
    let qlen = query.len();
    // The first record in a range restarts from the empty checkpoint.
    let mut stack_lcp = 0usize;
    for (i, pos) in range.enumerate() {
        if pos > start {
            stack_lcp = stack_lcp.min(sv.lcp(pos));
        }
        if (lens[i] as usize).abs_diff(qlen) > k as usize {
            continue;
        }
        // Lookahead bound: no later record in this range can resume
        // deeper than the next record's LCP (the running minimum only
        // shrinks), so the kernel checkpoints only that many columns
        // and runs the candidate's tail unstacked.
        let keep_limit = if pos + 1 < end { sv.lcp(pos + 1) } else { 0 };
        if let Some(d) = dp.resume_bounded(sv.get(pos), stack_lcp, keep_limit) {
            out.push(Match::new(sv.original_id(pos), d));
        }
        stack_lcp = usize::MAX;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_data::workload::QueryRecord;
    use simsearch_distance::levenshtein;

    fn dataset() -> Dataset {
        Dataset::from_records([
            "Berlin", "Bern", "Bonn", "Ulm", "Bärlin", "Berlingen", "B", "", "Ber", "Ulmen",
        ])
    }

    fn brute_force(ds: &Dataset, q: &[u8], k: u32) -> MatchSet {
        ds.iter()
            .filter_map(|(id, r)| {
                let d = levenshtein(q, r);
                (d <= k).then_some(Match::new(id, d))
            })
            .collect()
    }

    #[test]
    fn every_rung_returns_identical_results() {
        let ds = dataset();
        let scan = SequentialScan::new(&ds);
        for q in ["Berlin", "Bern", "Urm", "", "Xyz"] {
            for k in 0..4 {
                let expected = brute_force(&ds, q.as_bytes(), k);
                for v in SeqVariant::ladder_extended(4) {
                    assert_eq!(
                        scan.search_one(v, q.as_bytes(), k),
                        expected,
                        "variant {v:?} q={q} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn run_executes_whole_workloads_identically_across_rungs() {
        let ds = dataset();
        let scan = SequentialScan::new(&ds);
        let workload = Workload {
            queries: vec![
                QueryRecord::new("Berlin", 2),
                QueryRecord::new("Ulm", 1),
                QueryRecord::new("Bern", 0),
                QueryRecord::new("zzz", 3),
            ],
        };
        let baseline = scan.run(SeqVariant::V1Base, &workload);
        for v in SeqVariant::ladder_extended(4).into_iter().skip(1) {
            assert_eq!(scan.run(v, &workload), baseline, "variant {v:?}");
        }
    }

    #[test]
    fn auxiliary_structures_are_lazy() {
        let ds = dataset();
        let scan = SequentialScan::new(&ds);
        scan.search_one(SeqVariant::V4Flat, b"Berlin", 1);
        assert!(scan.owned.get().is_none(), "V4 must not build owned copies");
        assert!(scan.sorted.get().is_none(), "V4 must not sort");
        scan.prepare(SeqVariant::V7SortedPrefix);
        assert!(scan.sorted.get().is_some());
        assert!(scan.owned.get().is_none());
        scan.prepare(SeqVariant::V1Base);
        assert!(scan.owned.get().is_some());
    }

    #[test]
    fn v7_agrees_under_every_executor_and_chunking() {
        let ds = dataset();
        let scan = SequentialScan::new(&ds);
        let workload = Workload {
            queries: vec![
                QueryRecord::new("Berlin", 2),
                QueryRecord::new("Ulm", 1),
                QueryRecord::new("", 1),
                QueryRecord::new("zzz", 3),
            ],
        };
        let baseline = scan.run(SeqVariant::V1Base, &workload);
        for strategy in [
            Strategy::Sequential,
            Strategy::ThreadPerQuery,
            Strategy::FixedPool { threads: 3 },
            Strategy::WorkQueue { threads: 3 },
            Strategy::Adaptive { max_threads: 3 },
        ] {
            assert_eq!(scan.run_v7(strategy, &workload), baseline, "{}", strategy.name());
            for chunks in [1, 2, 7, 64] {
                for (q, expected) in workload.queries.iter().zip(&baseline) {
                    assert_eq!(
                        &scan.v7_search_parallel(&q.text, q.threshold, strategy, chunks),
                        expected,
                        "{} chunks={chunks}",
                        strategy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn v8_agrees_under_every_executor_and_chunking() {
        let ds = dataset();
        let scan = SequentialScan::new(&ds);
        let workload = Workload {
            queries: vec![
                QueryRecord::new("Berlin", 2),
                QueryRecord::new("Ulm", 1),
                QueryRecord::new("", 1),
                QueryRecord::new("zzz", 3),
            ],
        };
        let baseline = scan.run(SeqVariant::V1Base, &workload);
        for strategy in [
            Strategy::Sequential,
            Strategy::ThreadPerQuery,
            Strategy::FixedPool { threads: 3 },
            Strategy::WorkQueue { threads: 3 },
            Strategy::Adaptive { max_threads: 3 },
        ] {
            assert_eq!(scan.run_v8(strategy, &workload), baseline, "{}", strategy.name());
            for chunks in [1, 2, 7, 64] {
                for (q, expected) in workload.queries.iter().zip(&baseline) {
                    assert_eq!(
                        &scan.v8_search_parallel(&q.text, q.threshold, strategy, chunks),
                        expected,
                        "{} chunks={chunks}",
                        strategy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn v8_reuses_words_across_shared_prefixes() {
        // Records with long shared prefixes: block resume must advance
        // fewer words than restarting every record at the empty stack.
        let ds = Dataset::from_records([
            "prefix_aaa", "prefix_aab", "prefix_abb", "prefix_bbb", "prefix_bbc",
        ]);
        let scan = SequentialScan::new(&ds);
        let sv = scan.sorted_view();
        let mut reuse = MyersStackKernel::new(b"prefix_abc", 3);
        v8_scan_view_range(sv, &mut reuse, b"prefix_abc", 3, 0..sv.len());
        let mut scratch_words = 0;
        for pos in 0..sv.len() {
            let mut dp = MyersStackKernel::new(b"prefix_abc", 3);
            v8_scan_view_range(sv, &mut dp, b"prefix_abc", 3, pos..pos + 1);
            scratch_words += dp.words_advanced();
        }
        assert!(
            reuse.words_advanced() < scratch_words,
            "reuse {} vs scratch {scratch_words}",
            reuse.words_advanced()
        );
        assert!(reuse.words_reused() > 0);
    }

    #[test]
    fn v7_counts_fewer_cells_than_it_would_from_scratch() {
        // Records with long shared prefixes: LCP reuse must save cells
        // versus restarting every record at row zero (chunks = n).
        let ds = Dataset::from_records([
            "prefix_aaa", "prefix_aab", "prefix_abb", "prefix_bbb", "prefix_bbc",
        ]);
        let scan = SequentialScan::new(&ds);
        let (_, reused_cells) = scan.v7_search(b"prefix_abc", 3);
        let mut scratch_cells = 0;
        for pos in 0..scan.sorted_view().len() {
            let mut dp = RowStackKernel::new(RowStackMode::Banded, b"prefix_abc", 3);
            scan.v7_scan_range(&mut dp, b"prefix_abc", 3, pos..pos + 1);
            scratch_cells += dp.cells_computed();
        }
        assert!(
            reused_cells < scratch_cells,
            "reuse {reused_cells} vs scratch {scratch_cells}"
        );
    }

    #[test]
    fn kernel_extensions_agree_with_the_ladder() {
        let ds = dataset();
        let scan = SequentialScan::new(&ds);
        let workload = Workload {
            queries: vec![QueryRecord::new("Berlin", 2), QueryRecord::new("", 1)],
        };
        let baseline = scan.run(SeqVariant::V4Flat, &workload);
        for kernel in KernelKind::ALL {
            for strategy in [
                Strategy::Sequential,
                Strategy::FixedPool { threads: 2 },
                Strategy::WorkQueue { threads: 2 },
            ] {
                assert_eq!(
                    scan.run_with(kernel, strategy, &workload),
                    baseline,
                    "kernel {} strategy {}",
                    kernel.name(),
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn filtered_scan_matches_the_oracle_for_sound_chains() {
        use simsearch_filters::{FrequencyFilter, LengthFilter};
        let ds = dataset();
        let scan = SequentialScan::new(&ds);
        let chains = [
            FilterChain::new(),
            FilterChain::new().push(LengthFilter::build(&ds)),
            FilterChain::new()
                .push(LengthFilter::build(&ds))
                .push(FrequencyFilter::build(&ds, *b"aeiou")),
        ];
        for chain in &chains {
            for q in ["Berlin", "Urm", "", "Xyzzy"] {
                for k in 0..4 {
                    assert_eq!(
                        scan.search_filtered(chain, q.as_bytes(), k),
                        brute_force(&ds, q.as_bytes(), k),
                        "chain {:?} q={q} k={k}",
                        chain.names()
                    );
                }
            }
        }
        let w = Workload {
            queries: vec![QueryRecord::new("Berlin", 2), QueryRecord::new("", 1)],
        };
        let expected = scan.run(SeqVariant::V1Base, &w);
        for strategy in [Strategy::Sequential, Strategy::FixedPool { threads: 2 }] {
            assert_eq!(scan.run_filtered(&chains[2], strategy, &w), expected);
        }
    }

    #[test]
    fn empty_dataset_and_empty_workload() {
        let ds = Dataset::new();
        let scan = SequentialScan::new(&ds);
        assert!(scan.search_one(SeqVariant::V4Flat, b"x", 2).is_empty());
        let empty = Workload::default();
        assert!(scan.run(SeqVariant::V6Pool { threads: 4 }, &empty).is_empty());
    }
}
