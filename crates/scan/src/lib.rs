//! # simsearch-scan
//!
//! The paper's sequential-scan side (§3): the six-rung optimization
//! ladder that turns a naive full-matrix scan into the solution that
//! beats the index on short strings, plus two extensions: the V7
//! sorted-prefix scan (LCP-resumable row-stack DP over a
//! lexicographically sorted arena) and the V8 bit-parallel sweep (the
//! same sorted arena, with the DP column packed into Myers words and
//! checkpointed at 64-cell block granularity).
//!
//! * [`variant::SeqVariant`] — the rungs, labelled as in Tables III/VII;
//! * [`scanner::SequentialScan`] — one engine executing any rung, plus
//!   kernel/executor combinations beyond the paper for ablations.
//!
//! Every rung returns normalized [`simsearch_data::MatchSet`]s, and the
//! crate's tests assert all rungs agree with each other and with brute
//! force — the paper's own correctness methodology (§3.7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod measure;
pub mod scanner;
pub mod substring;
pub mod variant;

pub use measure::{measure_scan, Measure};
pub use scanner::{
    flat_search_where, v7_scan_view_range, v7_search_view, v8_scan_view_range, v8_search_view,
    SequentialScan,
};
pub use substring::{substring_scan, substring_scan_myers, SubstringHit};
pub use variant::SeqVariant;
