//! The rungs of the paper's sequential-scan optimization ladder (§3).

/// One rung of the scan ladder (Tables III and VII evaluate exactly
/// these six, in this order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeqVariant {
    /// Rung 1 (§3.1): naive full-matrix distance over owned string
    /// copies, fresh allocations everywhere, single-threaded.
    V1Base,
    /// Rung 2 (§3.2): + length filter and decisive-diagonal early abort.
    V2FastEd,
    /// Rung 3 (§3.3): + reference semantics — candidates and the query
    /// are borrowed, never copied.
    V3Borrowed,
    /// Rung 4 (§3.4): + simple data types — flat byte arena, one reusable
    /// DP row buffer for the whole scan.
    V4Flat,
    /// Rung 5 (§3.5): + parallelism, one thread per query (the paper
    /// keeps this deliberately bad rung to motivate rung 6).
    V5ThreadPerQuery,
    /// Rung 6 (§3.6): + management of parallelism — fixed pool with
    /// static partitioning; the paper sweeps 4/8/16/32 threads.
    V6Pool {
        /// Number of pool threads.
        threads: usize,
    },
    /// Rung 7 (extension beyond the paper): sorted-prefix scan. A
    /// one-time lexicographic sort gives the flat arena the trie's only
    /// structural advantage — adjacency of shared prefixes — and a
    /// resumable row-stack DP pops to `lcp[i]` between records instead
    /// of recomputing from row zero.
    V7SortedPrefix,
    /// Rung 8 (extension): bit-parallel sweep. V7's sorted arena and LCP
    /// resume, but the DP column is packed into ⌈m/64⌉ Myers words — the
    /// query's Peq masks are compiled once, the dense lengths column
    /// drives the filter, and the stack checkpoints whole 64-cell blocks
    /// instead of scalar rows.
    V8BitParallel,
}

impl SeqVariant {
    /// The ladder exactly as evaluated in Tables III/VII, with rung 6 at
    /// the given thread count.
    pub fn ladder(pool_threads: usize) -> [SeqVariant; 6] {
        [
            SeqVariant::V1Base,
            SeqVariant::V2FastEd,
            SeqVariant::V3Borrowed,
            SeqVariant::V4Flat,
            SeqVariant::V5ThreadPerQuery,
            SeqVariant::V6Pool {
                threads: pool_threads,
            },
        ]
    }

    /// The paper's six rungs plus the V7 sorted-prefix and V8
    /// bit-parallel extensions, for suites that sweep everything this
    /// crate can run.
    pub fn ladder_extended(pool_threads: usize) -> [SeqVariant; 8] {
        [
            SeqVariant::V1Base,
            SeqVariant::V2FastEd,
            SeqVariant::V3Borrowed,
            SeqVariant::V4Flat,
            SeqVariant::V5ThreadPerQuery,
            SeqVariant::V6Pool {
                threads: pool_threads,
            },
            SeqVariant::V7SortedPrefix,
            SeqVariant::V8BitParallel,
        ]
    }

    /// The paper's row label for this rung (extensions use the "x)"
    /// prefix, matching the index-ladder extension rows).
    pub fn label(self) -> String {
        match self {
            SeqVariant::V1Base => "1) Base implementation".into(),
            SeqVariant::V2FastEd => "2) Calculation of the edit distance".into(),
            SeqVariant::V3Borrowed => "3) Value or reference".into(),
            SeqVariant::V4Flat => "4) Simple data types and program methods".into(),
            SeqVariant::V5ThreadPerQuery => "5) Parallelism".into(),
            SeqVariant::V6Pool { threads } => {
                format!("6) Management of parallelism ({threads} threads)")
            }
            SeqVariant::V7SortedPrefix => "x) Sorted-prefix scan (LCP reuse)".into(),
            SeqVariant::V8BitParallel => "x) Bit-parallel sweep (Myers blocks + LCP reuse)".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_has_six_rungs_in_paper_order() {
        let l = SeqVariant::ladder(8);
        assert_eq!(l.len(), 6);
        assert_eq!(l[0], SeqVariant::V1Base);
        assert_eq!(l[5], SeqVariant::V6Pool { threads: 8 });
    }

    #[test]
    fn extended_ladder_appends_v7_and_v8() {
        let l = SeqVariant::ladder_extended(8);
        assert_eq!(l.len(), 8);
        assert_eq!(&l[..6], &SeqVariant::ladder(8));
        assert_eq!(l[6], SeqVariant::V7SortedPrefix);
        assert_eq!(l[7], SeqVariant::V8BitParallel);
        assert!(SeqVariant::V7SortedPrefix.label().starts_with("x)"));
        assert!(SeqVariant::V8BitParallel.label().starts_with("x)"));
    }

    #[test]
    fn labels_match_table_rows() {
        assert!(SeqVariant::V1Base.label().starts_with("1)"));
        assert!(SeqVariant::V6Pool { threads: 8 }.label().contains("8 threads"));
    }
}
