//! Command-line argument parsing (hand-rolled; the workspace keeps its
//! dependency set to the algorithmic essentials).

use std::path::PathBuf;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `simsearch search`: answer a query file against a data file.
    Search(SearchArgs),
    /// `simsearch generate`: write a synthetic dataset (and workload).
    Generate(GenerateArgs),
    /// `simsearch stats`: print Table-I-style properties of a data file.
    Stats {
        /// The data file.
        data: PathBuf,
    },
    /// `simsearch join`: similarity self-join of a data file.
    Join(JoinArgs),
    /// `simsearch verify`: compare two result files.
    Verify {
        /// Result file under test.
        results: PathBuf,
        /// Reference result file.
        expected: PathBuf,
    },
    /// `simsearch help`.
    Help,
}

/// Arguments of the `join` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinArgs {
    /// Data file (one record per line).
    pub data: PathBuf,
    /// Join threshold.
    pub k: u32,
    /// Output file; stdout when absent.
    pub output: Option<PathBuf>,
    /// Join algorithm: "sorted" (default), "index" or "nested".
    pub algo: String,
    /// Pool threads (sorted join only).
    pub threads: usize,
}

/// Arguments of the `search` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchArgs {
    /// Data file (one record per line).
    pub data: PathBuf,
    /// Query file (`query<TAB>k` per line).
    pub queries: PathBuf,
    /// Output file (`index: id,id,...` per line); stdout when absent.
    pub output: Option<PathBuf>,
    /// Engine selector.
    pub engine: EngineChoice,
    /// Pool threads for parallel engines.
    pub threads: usize,
}

/// Which engine the CLI runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Best sequential scan (rung 6).
    Scan,
    /// Naive base scan (rung 1).
    ScanBase,
    /// Uncompressed prefix tree.
    Trie,
    /// Compressed radix tree (default).
    Radix,
    /// Inverted q-gram index.
    Qgram,
    /// Length-bucketed scan.
    Buckets,
}

impl EngineChoice {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "scan" => Ok(Self::Scan),
            "scan-base" => Ok(Self::ScanBase),
            "trie" => Ok(Self::Trie),
            "radix" => Ok(Self::Radix),
            "qgram" => Ok(Self::Qgram),
            "buckets" => Ok(Self::Buckets),
            other => Err(format!(
                "unknown engine '{other}' (expected scan, scan-base, trie, radix, qgram, buckets)"
            )),
        }
    }
}

/// Arguments of the `generate` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    /// "city" or "dna".
    pub kind: String,
    /// Number of records.
    pub count: usize,
    /// PRNG seed.
    pub seed: u64,
    /// Output data file.
    pub out: PathBuf,
    /// Optional query-file output.
    pub queries_out: Option<PathBuf>,
    /// Number of queries when `queries_out` is set.
    pub query_count: usize,
}

/// Usage text.
pub const USAGE: &str = "\
simsearch — string similarity search (EDBT 2013 reproduction)

USAGE:
  simsearch search --data FILE --queries FILE [--output FILE]
                   [--engine scan|scan-base|trie|radix|qgram|buckets]
                   [--threads N]
  simsearch generate --kind city|dna --count N [--seed S] --out FILE
                     [--queries FILE] [--query-count N]
  simsearch stats --data FILE
  simsearch join --data FILE --k N [--output FILE]
                 [--algo sorted|index|nested] [--threads N]
  simsearch verify --results FILE --expected FILE
  simsearch help
";

/// Parses an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "search" => parse_search(rest).map(Command::Search),
        "generate" => parse_generate(rest).map(Command::Generate),
        "join" => parse_join(rest).map(Command::Join),
        "verify" => {
            let mut results = None;
            let mut expected = None;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--results" => results = Some(PathBuf::from(value(&mut it, "--results")?)),
                    "--expected" => expected = Some(PathBuf::from(value(&mut it, "--expected")?)),
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            Ok(Command::Verify {
                results: results.ok_or("verify requires --results")?,
                expected: expected.ok_or("verify requires --expected")?,
            })
        }
        "stats" => {
            let mut data = None;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--data" => data = Some(PathBuf::from(value(&mut it, "--data")?)),
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            Ok(Command::Stats {
                data: data.ok_or("stats requires --data")?,
            })
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn value<'a>(
    it: &mut std::slice::Iter<'a, String>,
    flag: &str,
) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_search(rest: &[String]) -> Result<SearchArgs, String> {
    let mut data = None;
    let mut queries = None;
    let mut output = None;
    let mut engine = EngineChoice::Radix;
    let mut threads = 1usize;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--data" => data = Some(PathBuf::from(value(&mut it, "--data")?)),
            "--queries" => queries = Some(PathBuf::from(value(&mut it, "--queries")?)),
            "--output" => output = Some(PathBuf::from(value(&mut it, "--output")?)),
            "--engine" => engine = EngineChoice::parse(value(&mut it, "--engine")?)?,
            "--threads" => {
                threads = value(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a positive integer".to_string())?;
                if threads == 0 {
                    return Err("--threads needs a positive integer".into());
                }
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(SearchArgs {
        data: data.ok_or("search requires --data")?,
        queries: queries.ok_or("search requires --queries")?,
        output,
        engine,
        threads,
    })
}

fn parse_join(rest: &[String]) -> Result<JoinArgs, String> {
    let mut data = None;
    let mut k = None;
    let mut output = None;
    let mut algo = "sorted".to_string();
    let mut threads = 1usize;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--data" => data = Some(PathBuf::from(value(&mut it, "--data")?)),
            "--k" => {
                k = Some(
                    value(&mut it, "--k")?
                        .parse()
                        .map_err(|_| "--k needs an integer".to_string())?,
                )
            }
            "--output" => output = Some(PathBuf::from(value(&mut it, "--output")?)),
            "--algo" => {
                let v = value(&mut it, "--algo")?;
                if !["sorted", "index", "nested"].contains(&v.as_str()) {
                    return Err(format!("unknown join algorithm '{v}'"));
                }
                algo = v.clone();
            }
            "--threads" => {
                threads = value(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a positive integer".to_string())?;
                if threads == 0 {
                    return Err("--threads needs a positive integer".into());
                }
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(JoinArgs {
        data: data.ok_or("join requires --data")?,
        k: k.ok_or("join requires --k")?,
        output,
        algo,
        threads,
    })
}

fn parse_generate(rest: &[String]) -> Result<GenerateArgs, String> {
    let mut kind = None;
    let mut count = None;
    let mut seed = 42u64;
    let mut out = None;
    let mut queries_out = None;
    let mut query_count = 1_000usize;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--kind" => {
                let v = value(&mut it, "--kind")?;
                if v != "city" && v != "dna" {
                    return Err("--kind must be 'city' or 'dna'".into());
                }
                kind = Some(v.clone());
            }
            "--count" => {
                count = Some(
                    value(&mut it, "--count")?
                        .parse()
                        .map_err(|_| "--count needs an integer".to_string())?,
                )
            }
            "--seed" => {
                seed = value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?
            }
            "--out" => out = Some(PathBuf::from(value(&mut it, "--out")?)),
            "--queries" => queries_out = Some(PathBuf::from(value(&mut it, "--queries")?)),
            "--query-count" => {
                query_count = value(&mut it, "--query-count")?
                    .parse()
                    .map_err(|_| "--query-count needs an integer".to_string())?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(GenerateArgs {
        kind: kind.ok_or("generate requires --kind")?,
        count: count.ok_or("generate requires --count")?,
        seed,
        out: out.ok_or("generate requires --out")?,
        queries_out,
        query_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_search() {
        let cmd = parse(&v(&[
            "search", "--data", "d.txt", "--queries", "q.txt", "--engine", "scan",
            "--threads", "8",
        ]))
        .unwrap();
        match cmd {
            Command::Search(a) => {
                assert_eq!(a.engine, EngineChoice::Scan);
                assert_eq!(a.threads, 8);
                assert!(a.output.is_none());
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_generate_with_defaults() {
        let cmd = parse(&v(&[
            "generate", "--kind", "dna", "--count", "100", "--out", "x.txt",
        ]))
        .unwrap();
        match cmd {
            Command::Generate(g) => {
                assert_eq!(g.kind, "dna");
                assert_eq!(g.count, 100);
                assert_eq!(g.seed, 42);
                assert_eq!(g.query_count, 1_000);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&v(&["search", "--data", "d"])).is_err()); // missing queries
        assert!(parse(&v(&["search", "--bogus"])).is_err());
        assert!(parse(&v(&["generate", "--kind", "xml", "--count", "1", "--out", "o"])).is_err());
        assert!(parse(&v(&["frobnicate"])).is_err());
        assert!(parse(&v(&[
            "search", "--data", "d", "--queries", "q", "--threads", "0"
        ]))
        .is_err());
    }

    #[test]
    fn parses_join_and_verify() {
        let cmd = parse(&v(&["join", "--data", "d.txt", "--k", "2", "--algo", "index"])).unwrap();
        match cmd {
            Command::Join(j) => {
                assert_eq!(j.k, 2);
                assert_eq!(j.algo, "index");
                assert_eq!(j.threads, 1);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd = parse(&v(&["verify", "--results", "a", "--expected", "b"])).unwrap();
        assert!(matches!(cmd, Command::Verify { .. }));
        assert!(parse(&v(&["join", "--data", "d", "--k", "1", "--algo", "quantum"])).is_err());
        assert!(parse(&v(&["verify", "--results", "a"])).is_err());
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["--help"])).unwrap(), Command::Help);
    }
}
