//! Command-line argument parsing (hand-rolled; the workspace keeps its
//! dependency set to the algorithmic essentials).

use simsearch_core::ShardBy;
use std::path::PathBuf;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `simsearch search`: answer a query file against a data file.
    Search(SearchArgs),
    /// `simsearch generate`: write a synthetic dataset (and workload).
    Generate(GenerateArgs),
    /// `simsearch stats`: print Table-I-style properties of a data file.
    Stats {
        /// The data file.
        data: PathBuf,
    },
    /// `simsearch join`: similarity self-join of a data file.
    Join(JoinArgs),
    /// `simsearch verify`: compare two result files.
    Verify {
        /// Result file under test.
        results: PathBuf,
        /// Reference result file.
        expected: PathBuf,
    },
    /// `simsearch serve`: run the `simsearchd` query daemon.
    Serve(ServeArgs),
    /// `simsearch client`: send protocol frames to a running daemon.
    Client(ClientArgs),
    /// `simsearch explain`: print the planner's statistics snapshot and
    /// per-query-class backend decisions for a data file.
    Explain(ExplainArgs),
    /// `simsearch help`.
    Help,
}

/// Arguments of the `explain` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainArgs {
    /// Data file (one record per line).
    pub data: PathBuf,
    /// Optional query file: when present, the planner also routes the
    /// workload and reports per-backend decision counts.
    pub queries: Option<PathBuf>,
    /// Worker threads the planned engine would use.
    pub threads: usize,
    /// Number of shards (0 or 1 = unsharded). When ≥ 2, `explain` also
    /// prints every shard's snapshot and decision table.
    pub shards: usize,
    /// Shard partitioner (`--shard-by len|hash`).
    pub shard_by: ShardBy,
}

/// Arguments of the `serve` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Data file (one record per line). `--dataset` is an alias.
    pub data: PathBuf,
    /// Engine selector (default: scan-sorted, the V7 kernel — it also
    /// feeds the `dp_cells` counter in `STATS`).
    pub engine: EngineChoice,
    /// Engine worker threads executing micro-batch chunks.
    pub threads: usize,
    /// Port on loopback; 0 (the default) binds an ephemeral port, and
    /// the server prints the actually-bound one on startup.
    pub port: u16,
    /// When set, the actually-bound port is also written to this file
    /// (so scripts can find an ephemeral port without parsing stdout).
    pub port_file: Option<PathBuf>,
    /// Micro-batch size cap.
    pub batch_size: usize,
    /// Micro-batch max coalescing delay, milliseconds.
    pub max_delay_ms: u64,
    /// Admission-queue capacity (full queue answers `BUSY`).
    pub queue_capacity: usize,
    /// Per-request deadline, milliseconds (exceeded ⇒ `TIMEOUT`).
    pub deadline_ms: u64,
    /// Number of shards (0 or 1 = unsharded). When ≥ 2 the daemon
    /// serves a sharded engine with per-shard calibrated planners and
    /// the engine selector is ignored.
    pub shards: usize,
    /// Shard partitioner (`--shard-by len|hash`).
    pub shard_by: ShardBy,
    /// Serve a live (mutable) engine: the dataset seeds an LSM engine
    /// and the daemon accepts `INSERT`/`DELETE`. Overrides the engine
    /// selector. With `--shards` ≥ 2 every shard is its own LSM engine
    /// (hash-routed mutations; requires `--shard-by hash`).
    pub live: bool,
    /// Per-(shard-)memtable flush threshold for `--live` (records).
    pub memtable_cap: usize,
    /// Self-tuning replan cadence in milliseconds; 0 disables the
    /// background tick (default 1000).
    pub replan_interval_ms: u64,
    /// Persisted-calibration file: restored at startup (ignored when
    /// the embedded snapshot mismatches the dataset) and rewritten at
    /// shutdown. Only unsharded `--backend auto` daemons persist.
    pub calibration: Option<PathBuf>,
}

/// Arguments of the `client` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientArgs {
    /// Server host (default 127.0.0.1).
    pub host: String,
    /// Server port.
    pub port: u16,
    /// Frames to send, in order; each reply is printed on its own line.
    pub send: Vec<String>,
    /// Validate every `OK {…}` reply as JSON; exit non-zero otherwise.
    pub check_stats_json: bool,
}

/// Arguments of the `join` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinArgs {
    /// Data file (one record per line).
    pub data: PathBuf,
    /// Join threshold.
    pub k: u32,
    /// Output file; stdout when absent.
    pub output: Option<PathBuf>,
    /// Join algorithm: "sorted" (default), "index", "nested", "pass"
    /// (partition-based PASS-JOIN) or "minjoin" (content-defined
    /// partitions).
    pub algo: String,
    /// Pool threads (sorted, pass and minjoin).
    pub threads: usize,
}

/// Arguments of the `search` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchArgs {
    /// Data file (one record per line).
    pub data: PathBuf,
    /// Query file (`query<TAB>k` per line).
    pub queries: PathBuf,
    /// Output file (`index: id,id,...` per line); stdout when absent.
    pub output: Option<PathBuf>,
    /// Engine selector.
    pub engine: EngineChoice,
    /// Pool threads for parallel engines.
    pub threads: usize,
    /// Number of shards (0 or 1 = unsharded). When ≥ 2 the dataset is
    /// partitioned and each shard runs the selected engine's arm (or
    /// its own calibrated planner for `auto`).
    pub shards: usize,
    /// Shard partitioner (`--shard-by len|hash`).
    pub shard_by: ShardBy,
}

/// Which engine the CLI runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Best sequential scan (rung 6).
    Scan,
    /// Naive base scan (rung 1).
    ScanBase,
    /// Uncompressed prefix tree.
    Trie,
    /// Compressed radix tree (default).
    Radix,
    /// Inverted q-gram index.
    Qgram,
    /// Length-bucketed scan.
    Buckets,
    /// LCP-resumable scan over the sorted arena (rung 7).
    ScanSorted,
    /// Bit-parallel Myers sweep over the sorted arena (rung 8).
    ScanBitParallel,
    /// BK-tree metric index baseline.
    BkTree,
    /// Adaptive planner: route each query to the cheapest backend.
    Auto,
}

impl EngineChoice {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "scan" => Ok(Self::Scan),
            "scan-base" => Ok(Self::ScanBase),
            "scan-sorted" => Ok(Self::ScanSorted),
            "scan-bitparallel" | "scan-bit-parallel" => Ok(Self::ScanBitParallel),
            "trie" => Ok(Self::Trie),
            "radix" => Ok(Self::Radix),
            "qgram" => Ok(Self::Qgram),
            "buckets" => Ok(Self::Buckets),
            "bktree" | "bk-tree" => Ok(Self::BkTree),
            "auto" => Ok(Self::Auto),
            other => Err(format!(
                "unknown engine '{other}' (expected auto, scan, scan-base, scan-sorted, scan-bitparallel, trie, radix, qgram, buckets, bktree)"
            )),
        }
    }
}

/// Arguments of the `generate` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    /// "city" or "dna".
    pub kind: String,
    /// Number of records.
    pub count: usize,
    /// PRNG seed.
    pub seed: u64,
    /// Output data file.
    pub out: PathBuf,
    /// Optional query-file output.
    pub queries_out: Option<PathBuf>,
    /// Number of queries when `queries_out` is set.
    pub query_count: usize,
}

/// Usage text.
pub const USAGE: &str = "\
simsearch — string similarity search (EDBT 2013 reproduction)

USAGE:
  simsearch search --data FILE --queries FILE [--output FILE]
                   [--backend auto|scan|scan-base|scan-sorted|scan-bitparallel|trie|radix|qgram|buckets|bktree]
                   [--threads N] [--shards N] [--shard-by len|hash]
  simsearch explain --data FILE [--queries FILE] [--threads N]
                    [--shards N] [--shard-by len|hash]
  simsearch generate --kind city|dna --count N [--seed S] --out FILE
                     [--queries FILE] [--query-count N]
  simsearch stats --data FILE
  simsearch join --data FILE --k N [--output FILE]
                 [--algo sorted|index|nested|pass|minjoin] [--threads N]
  simsearch verify --results FILE --expected FILE
  simsearch serve --data FILE [--backend NAME] [--threads N] [--port P]
                  [--port-file FILE] [--batch-size N] [--max-delay-ms N]
                  [--queue-capacity N] [--deadline-ms N]
                  [--shards N] [--shard-by len|hash]
                  [--live] [--memtable-cap N]
                  [--replan-interval-ms N] [--calibration FILE]
  simsearch client --port P [--host H] --send FRAME [--send FRAME ...]
                   [--check-stats-json]
  simsearch help

`--engine` is accepted everywhere `--backend` is (older scripts).
With `--backend auto` a planner builds a cost model from the dataset's
statistics and routes each query to the cheapest backend; `explain`
prints that plan without running anything.

With `--shards N` (N ≥ 2) the dataset is partitioned into N shards —
by record length (`--shard-by len`, the default) or by an FNV-1a
content hash (`--shard-by hash`) — each shard plans independently, and
queries fan out across shards with a k-way result merge.

The serve daemon speaks a line protocol on loopback TCP:
  QUERY <k> <text> | TOPK <n> <text> | JOIN <k> [pass|minjoin]
  | INSERT <text> | DELETE <id> | STATS | HEALTH | SHUTDOWN
With --port 0 (the default) it binds an ephemeral port and prints the
actually-bound address on stdout before accepting connections.

With --live the dataset seeds a mutable LSM engine (memtable + sorted
segments) and the daemon accepts INSERT/DELETE; --memtable-cap sets the
per-(shard-)memtable flush threshold (default 1024). Without --live
those verbs answer ERR. --live composes with --shards N: every shard is
its own LSM engine, inserts route by content hash from one global id
space, deletes route to the owning shard, and shards flush/compact
independently. Sharded live ingest requires --shard-by hash (length
bands shift as the dataset grows, so `len` cannot route inserts).

The daemon self-tunes: every --replan-interval-ms (default 1000; 0
disables) a background tick re-derives per-(arm, class) cost
multipliers from the live latency histograms and swaps a fresh decision
table into the engine; STATS reports `replans` and `plan_epoch`. With
--calibration FILE an unsharded `--backend auto` daemon restores the
persisted table at startup (ignored when the dataset changed) and
rewrites the file at shutdown.
";

/// Parses an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "search" => parse_search(rest).map(Command::Search),
        "explain" => parse_explain(rest).map(Command::Explain),
        "serve" => parse_serve(rest).map(Command::Serve),
        "client" => parse_client(rest).map(Command::Client),
        "generate" => parse_generate(rest).map(Command::Generate),
        "join" => parse_join(rest).map(Command::Join),
        "verify" => {
            let mut results = None;
            let mut expected = None;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--results" => results = Some(PathBuf::from(value(&mut it, "--results")?)),
                    "--expected" => expected = Some(PathBuf::from(value(&mut it, "--expected")?)),
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            Ok(Command::Verify {
                results: results.ok_or("verify requires --results")?,
                expected: expected.ok_or("verify requires --expected")?,
            })
        }
        "stats" => {
            let mut data = None;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--data" => data = Some(PathBuf::from(value(&mut it, "--data")?)),
                    other => return Err(format!("unknown flag '{other}'")),
                }
            }
            Ok(Command::Stats {
                data: data.ok_or("stats requires --data")?,
            })
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn value<'a>(
    it: &mut std::slice::Iter<'a, String>,
    flag: &str,
) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn shard_by_value(v: &str) -> Result<ShardBy, String> {
    ShardBy::parse(v).ok_or_else(|| format!("unknown partitioner '{v}' (expected len or hash)"))
}

fn parse_search(rest: &[String]) -> Result<SearchArgs, String> {
    let mut data = None;
    let mut queries = None;
    let mut output = None;
    let mut engine = EngineChoice::Radix;
    let mut threads = 1usize;
    let mut shards = 0usize;
    let mut shard_by = ShardBy::Len;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--data" => data = Some(PathBuf::from(value(&mut it, "--data")?)),
            "--queries" => queries = Some(PathBuf::from(value(&mut it, "--queries")?)),
            "--output" => output = Some(PathBuf::from(value(&mut it, "--output")?)),
            "--engine" | "--backend" => engine = EngineChoice::parse(value(&mut it, flag)?)?,
            "--threads" => {
                threads = value(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a positive integer".to_string())?;
                if threads == 0 {
                    return Err("--threads needs a positive integer".into());
                }
            }
            "--shards" => {
                shards = value(&mut it, "--shards")?
                    .parse()
                    .map_err(|_| "--shards needs a non-negative integer".to_string())?
            }
            "--shard-by" => shard_by = shard_by_value(value(&mut it, "--shard-by")?)?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(SearchArgs {
        data: data.ok_or("search requires --data")?,
        queries: queries.ok_or("search requires --queries")?,
        output,
        engine,
        threads,
        shards,
        shard_by,
    })
}

fn parse_explain(rest: &[String]) -> Result<ExplainArgs, String> {
    let mut data = None;
    let mut queries = None;
    let mut threads = 1usize;
    let mut shards = 0usize;
    let mut shard_by = ShardBy::Len;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--data" => data = Some(PathBuf::from(value(&mut it, "--data")?)),
            "--queries" => queries = Some(PathBuf::from(value(&mut it, "--queries")?)),
            "--threads" => {
                threads = value(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a positive integer".to_string())?;
                if threads == 0 {
                    return Err("--threads needs a positive integer".into());
                }
            }
            "--shards" => {
                shards = value(&mut it, "--shards")?
                    .parse()
                    .map_err(|_| "--shards needs a non-negative integer".to_string())?
            }
            "--shard-by" => shard_by = shard_by_value(value(&mut it, "--shard-by")?)?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(ExplainArgs {
        data: data.ok_or("explain requires --data")?,
        queries,
        threads,
        shards,
        shard_by,
    })
}

fn parse_join(rest: &[String]) -> Result<JoinArgs, String> {
    let mut data = None;
    let mut k = None;
    let mut output = None;
    let mut algo = "sorted".to_string();
    let mut threads = 1usize;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--data" => data = Some(PathBuf::from(value(&mut it, "--data")?)),
            "--k" => {
                k = Some(
                    value(&mut it, "--k")?
                        .parse()
                        .map_err(|_| "--k needs an integer".to_string())?,
                )
            }
            "--output" => output = Some(PathBuf::from(value(&mut it, "--output")?)),
            "--algo" => {
                let v = value(&mut it, "--algo")?;
                if !["sorted", "index", "nested", "pass", "minjoin"].contains(&v.as_str()) {
                    return Err(format!("unknown join algorithm '{v}'"));
                }
                algo = v.clone();
            }
            "--threads" => {
                threads = value(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a positive integer".to_string())?;
                if threads == 0 {
                    return Err("--threads needs a positive integer".into());
                }
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(JoinArgs {
        data: data.ok_or("join requires --data")?,
        k: k.ok_or("join requires --k")?,
        output,
        algo,
        threads,
    })
}

fn parse_serve(rest: &[String]) -> Result<ServeArgs, String> {
    let mut data = None;
    let mut engine = EngineChoice::ScanSorted;
    let mut threads = 4usize;
    let mut port = 0u16;
    let mut port_file = None;
    let mut batch_size = 64usize;
    let mut max_delay_ms = 1u64;
    let mut queue_capacity = 1024usize;
    let mut deadline_ms = 10_000u64;
    let mut shards = 0usize;
    let mut shard_by = ShardBy::Len;
    let mut shard_by_explicit = false;
    let mut live = false;
    let mut memtable_cap = 1024usize;
    let mut replan_interval_ms = 1_000u64;
    let mut calibration = None;
    let int = |v: &str, flag: &str| -> Result<u64, String> {
        v.parse().map_err(|_| format!("{flag} needs an integer"))
    };
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--data" | "--dataset" => data = Some(PathBuf::from(value(&mut it, "--data")?)),
            "--engine" | "--backend" => engine = EngineChoice::parse(value(&mut it, flag)?)?,
            "--threads" => {
                threads = int(value(&mut it, "--threads")?, "--threads")? as usize;
                if threads == 0 {
                    return Err("--threads needs a positive integer".into());
                }
            }
            "--port" => {
                port = value(&mut it, "--port")?
                    .parse()
                    .map_err(|_| "--port needs an integer in 0..=65535".to_string())?
            }
            "--port-file" => {
                port_file = Some(PathBuf::from(value(&mut it, "--port-file")?))
            }
            "--batch-size" => {
                batch_size = int(value(&mut it, "--batch-size")?, "--batch-size")? as usize;
                if batch_size == 0 {
                    return Err("--batch-size needs a positive integer".into());
                }
            }
            "--max-delay-ms" => {
                max_delay_ms = int(value(&mut it, "--max-delay-ms")?, "--max-delay-ms")?
            }
            "--queue-capacity" => {
                queue_capacity =
                    int(value(&mut it, "--queue-capacity")?, "--queue-capacity")? as usize;
                if queue_capacity == 0 {
                    return Err("--queue-capacity needs a positive integer".into());
                }
            }
            "--deadline-ms" => {
                deadline_ms = int(value(&mut it, "--deadline-ms")?, "--deadline-ms")?
            }
            "--shards" => shards = int(value(&mut it, "--shards")?, "--shards")? as usize,
            "--shard-by" => {
                shard_by = shard_by_value(value(&mut it, "--shard-by")?)?;
                shard_by_explicit = true;
            }
            "--live" => live = true,
            "--replan-interval-ms" => {
                replan_interval_ms =
                    int(value(&mut it, "--replan-interval-ms")?, "--replan-interval-ms")?
            }
            "--calibration" => {
                calibration = Some(PathBuf::from(value(&mut it, "--calibration")?))
            }
            "--memtable-cap" => {
                memtable_cap = int(value(&mut it, "--memtable-cap")?, "--memtable-cap")? as usize;
                if memtable_cap == 0 {
                    return Err("--memtable-cap needs a positive integer".into());
                }
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if live && shards >= 2 {
        if shard_by_explicit && shard_by == ShardBy::Len {
            return Err(
                "--shard-by len cannot route live inserts (length bands shift as the dataset \
                 grows); use --shard-by hash with --live --shards"
                    .into(),
            );
        }
        // Bare `--live --shards N` gets the only partitioner that can
        // route mutations; the `len` default only applies to frozen shards.
        shard_by = ShardBy::Hash;
    }
    Ok(ServeArgs {
        data: data.ok_or("serve requires --data")?,
        engine,
        threads,
        port,
        port_file,
        batch_size,
        max_delay_ms,
        queue_capacity,
        deadline_ms,
        shards,
        shard_by,
        live,
        memtable_cap,
        replan_interval_ms,
        calibration,
    })
}

fn parse_client(rest: &[String]) -> Result<ClientArgs, String> {
    let mut host = "127.0.0.1".to_string();
    let mut port = None;
    let mut send = Vec::new();
    let mut check_stats_json = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--host" => host = value(&mut it, "--host")?.clone(),
            "--port" => {
                port = Some(
                    value(&mut it, "--port")?
                        .parse()
                        .map_err(|_| "--port needs an integer in 0..=65535".to_string())?,
                )
            }
            "--send" => send.push(value(&mut it, "--send")?.clone()),
            "--check-stats-json" => check_stats_json = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if send.is_empty() {
        return Err("client requires at least one --send FRAME".into());
    }
    Ok(ClientArgs {
        host,
        port: port.ok_or("client requires --port")?,
        send,
        check_stats_json,
    })
}

fn parse_generate(rest: &[String]) -> Result<GenerateArgs, String> {
    let mut kind = None;
    let mut count = None;
    let mut seed = 42u64;
    let mut out = None;
    let mut queries_out = None;
    let mut query_count = 1_000usize;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--kind" => {
                let v = value(&mut it, "--kind")?;
                if v != "city" && v != "dna" {
                    return Err("--kind must be 'city' or 'dna'".into());
                }
                kind = Some(v.clone());
            }
            "--count" => {
                count = Some(
                    value(&mut it, "--count")?
                        .parse()
                        .map_err(|_| "--count needs an integer".to_string())?,
                )
            }
            "--seed" => {
                seed = value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?
            }
            "--out" => out = Some(PathBuf::from(value(&mut it, "--out")?)),
            "--queries" => queries_out = Some(PathBuf::from(value(&mut it, "--queries")?)),
            "--query-count" => {
                query_count = value(&mut it, "--query-count")?
                    .parse()
                    .map_err(|_| "--query-count needs an integer".to_string())?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(GenerateArgs {
        kind: kind.ok_or("generate requires --kind")?,
        count: count.ok_or("generate requires --count")?,
        seed,
        out: out.ok_or("generate requires --out")?,
        queries_out,
        query_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_search() {
        let cmd = parse(&v(&[
            "search", "--data", "d.txt", "--queries", "q.txt", "--engine", "scan",
            "--threads", "8",
        ]))
        .unwrap();
        match cmd {
            Command::Search(a) => {
                assert_eq!(a.engine, EngineChoice::Scan);
                assert_eq!(a.threads, 8);
                assert!(a.output.is_none());
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_generate_with_defaults() {
        let cmd = parse(&v(&[
            "generate", "--kind", "dna", "--count", "100", "--out", "x.txt",
        ]))
        .unwrap();
        match cmd {
            Command::Generate(g) => {
                assert_eq!(g.kind, "dna");
                assert_eq!(g.count, 100);
                assert_eq!(g.seed, 42);
                assert_eq!(g.query_count, 1_000);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&v(&["search", "--data", "d"])).is_err()); // missing queries
        assert!(parse(&v(&["search", "--bogus"])).is_err());
        assert!(parse(&v(&["generate", "--kind", "xml", "--count", "1", "--out", "o"])).is_err());
        assert!(parse(&v(&["frobnicate"])).is_err());
        assert!(parse(&v(&[
            "search", "--data", "d", "--queries", "q", "--threads", "0"
        ]))
        .is_err());
    }

    #[test]
    fn parses_join_and_verify() {
        let cmd = parse(&v(&["join", "--data", "d.txt", "--k", "2", "--algo", "index"])).unwrap();
        match cmd {
            Command::Join(j) => {
                assert_eq!(j.k, 2);
                assert_eq!(j.algo, "index");
                assert_eq!(j.threads, 1);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        for algo in ["sorted", "nested", "pass", "minjoin"] {
            let cmd = parse(&v(&["join", "--data", "d", "--k", "1", "--algo", algo])).unwrap();
            match cmd {
                Command::Join(j) => assert_eq!(j.algo, algo),
                other => panic!("wrong parse: {other:?}"),
            }
        }
        let cmd = parse(&v(&["verify", "--results", "a", "--expected", "b"])).unwrap();
        assert!(matches!(cmd, Command::Verify { .. }));
        assert!(parse(&v(&["join", "--data", "d", "--k", "1", "--algo", "quantum"])).is_err());
        assert!(parse(&v(&["verify", "--results", "a"])).is_err());
    }

    #[test]
    fn parses_serve_with_defaults() {
        let cmd = parse(&v(&["serve", "--data", "d.txt"])).unwrap();
        match cmd {
            Command::Serve(s) => {
                assert_eq!(s.engine, EngineChoice::ScanSorted);
                assert_eq!(s.port, 0, "ephemeral port is the default");
                assert_eq!(s.threads, 4);
                assert_eq!(s.batch_size, 64);
                assert!(s.port_file.is_none());
                assert!(!s.live, "read-only by default");
                assert_eq!(s.memtable_cap, 1024);
                assert_eq!(s.replan_interval_ms, 1_000, "self-tuning is on by default");
                assert!(s.calibration.is_none());
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_serve_replan_flags() {
        let cmd = parse(&v(&[
            "serve", "--data", "d", "--backend", "auto",
            "--replan-interval-ms", "250", "--calibration", "c.idx",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(s) => {
                assert_eq!(s.replan_interval_ms, 250);
                assert_eq!(s.calibration, Some(PathBuf::from("c.idx")));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // 0 disables the tick; still a valid parse.
        let cmd = parse(&v(&["serve", "--data", "d", "--replan-interval-ms", "0"])).unwrap();
        assert!(matches!(cmd, Command::Serve(s) if s.replan_interval_ms == 0));
        assert!(parse(&v(&["serve", "--data", "d", "--replan-interval-ms", "soon"])).is_err());
        assert!(parse(&v(&["serve", "--data", "d", "--calibration"])).is_err());
    }

    #[test]
    fn parses_serve_live_mode() {
        let cmd = parse(&v(&[
            "serve", "--data", "d.txt", "--live", "--memtable-cap", "64",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(s) => {
                assert!(s.live);
                assert_eq!(s.memtable_cap, 64);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // --live without --memtable-cap keeps the default.
        let cmd = parse(&v(&["serve", "--data", "d.txt", "--live"])).unwrap();
        assert!(matches!(cmd, Command::Serve(s) if s.live && s.memtable_cap == 1024));
        assert!(parse(&v(&["serve", "--data", "d", "--memtable-cap", "0"])).is_err());
        assert!(parse(&v(&["serve", "--data", "d", "--memtable-cap", "x"])).is_err());
    }

    #[test]
    fn parses_serve_sharded_live() {
        // A bare sharded live daemon defaults the partitioner to hash —
        // the only one that can route mutations.
        let cmd = parse(&v(&["serve", "--data", "d", "--live", "--shards", "4"])).unwrap();
        match cmd {
            Command::Serve(s) => {
                assert!(s.live);
                assert_eq!(s.shards, 4);
                assert_eq!(s.shard_by, ShardBy::Hash, "live shards default to hash routing");
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Saying hash explicitly is fine too.
        let cmd = parse(&v(&[
            "serve", "--data", "d", "--live", "--shards", "2", "--shard-by", "hash",
        ]))
        .unwrap();
        assert!(matches!(cmd, Command::Serve(s) if s.live && s.shards == 2));
        // An explicit len partitioner cannot route inserts: fail fast with
        // a message that names the fix.
        let err = parse(&v(&[
            "serve", "--data", "d", "--live", "--shards", "2", "--shard-by", "len",
        ]))
        .unwrap_err();
        assert!(err.contains("--shard-by hash"), "actionable message, got: {err}");
        // shards 0/1 mean "unsharded": the len default survives untouched.
        let cmd = parse(&v(&["serve", "--data", "d", "--live", "--shards", "1"])).unwrap();
        assert!(matches!(cmd, Command::Serve(s) if s.shard_by == ShardBy::Len));
        // Frozen sharding (no --live) keeps its len default.
        let cmd = parse(&v(&["serve", "--data", "d", "--shards", "4"])).unwrap();
        assert!(matches!(cmd, Command::Serve(s) if s.shard_by == ShardBy::Len));
    }

    #[test]
    fn parses_serve_with_every_flag() {
        let cmd = parse(&v(&[
            "serve", "--dataset", "d.txt", "--engine", "radix", "--threads", "2",
            "--port", "9999", "--port-file", "p.txt", "--batch-size", "8",
            "--max-delay-ms", "5", "--queue-capacity", "32", "--deadline-ms", "250",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(s) => {
                assert_eq!(s.data, PathBuf::from("d.txt"), "--dataset aliases --data");
                assert_eq!(s.engine, EngineChoice::Radix);
                assert_eq!(s.threads, 2);
                assert_eq!(s.port, 9999);
                assert_eq!(s.port_file, Some(PathBuf::from("p.txt")));
                assert_eq!(s.batch_size, 8);
                assert_eq!(s.max_delay_ms, 5);
                assert_eq!(s.queue_capacity, 32);
                assert_eq!(s.deadline_ms, 250);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_client() {
        let cmd = parse(&v(&[
            "client", "--port", "4100", "--send", "HEALTH", "--send", "QUERY 2 Berlin",
            "--check-stats-json",
        ]))
        .unwrap();
        match cmd {
            Command::Client(c) => {
                assert_eq!(c.host, "127.0.0.1");
                assert_eq!(c.port, 4100);
                assert_eq!(c.send, vec!["HEALTH".to_string(), "QUERY 2 Berlin".to_string()]);
                assert!(c.check_stats_json);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn serve_and_client_reject_bad_input() {
        assert!(parse(&v(&["serve"])).is_err()); // missing --data
        assert!(parse(&v(&["serve", "--data", "d", "--threads", "0"])).is_err());
        assert!(parse(&v(&["serve", "--data", "d", "--batch-size", "0"])).is_err());
        assert!(parse(&v(&["serve", "--data", "d", "--port", "70000"])).is_err());
        assert!(parse(&v(&["serve", "--data", "d", "--engine", "warp"])).is_err());
        assert!(parse(&v(&["client", "--port", "1"])).is_err()); // no --send
        assert!(parse(&v(&["client", "--send", "HEALTH"])).is_err()); // no --port
        assert!(parse(&v(&["client", "--port", "x", "--send", "HEALTH"])).is_err());
    }

    #[test]
    fn search_accepts_the_sorted_scan_engine() {
        let cmd = parse(&v(&[
            "search", "--data", "d", "--queries", "q", "--engine", "scan-sorted",
        ]))
        .unwrap();
        match cmd {
            Command::Search(a) => assert_eq!(a.engine, EngineChoice::ScanSorted),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn search_accepts_the_bit_parallel_engine_under_both_spellings() {
        for spelling in ["scan-bitparallel", "scan-bit-parallel"] {
            let cmd = parse(&v(&[
                "search", "--data", "d", "--queries", "q", "--engine", spelling,
            ]))
            .unwrap();
            match cmd {
                Command::Search(a) => assert_eq!(a.engine, EngineChoice::ScanBitParallel),
                other => panic!("wrong parse: {other:?}"),
            }
        }
        let cmd = parse(&v(&["serve", "--data", "d", "--backend", "scan-bitparallel"])).unwrap();
        assert!(matches!(cmd, Command::Serve(s) if s.engine == EngineChoice::ScanBitParallel));
    }

    #[test]
    fn backend_aliases_engine_and_accepts_the_planner() {
        let cmd = parse(&v(&[
            "search", "--data", "d", "--queries", "q", "--backend", "auto",
        ]))
        .unwrap();
        match cmd {
            Command::Search(a) => assert_eq!(a.engine, EngineChoice::Auto),
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd = parse(&v(&["serve", "--data", "d", "--backend", "bktree"])).unwrap();
        match cmd {
            Command::Serve(s) => assert_eq!(s.engine, EngineChoice::BkTree),
            other => panic!("wrong parse: {other:?}"),
        }
        // "bk-tree" spelling is accepted too.
        let cmd = parse(&v(&[
            "search", "--data", "d", "--queries", "q", "--engine", "bk-tree",
        ]))
        .unwrap();
        assert!(matches!(cmd, Command::Search(a) if a.engine == EngineChoice::BkTree));
    }

    #[test]
    fn parses_explain() {
        let cmd = parse(&v(&["explain", "--data", "d.txt"])).unwrap();
        match cmd {
            Command::Explain(e) => {
                assert_eq!(e.data, PathBuf::from("d.txt"));
                assert!(e.queries.is_none());
                assert_eq!(e.threads, 1);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd = parse(&v(&[
            "explain", "--data", "d.txt", "--queries", "q.txt", "--threads", "4",
        ]))
        .unwrap();
        match cmd {
            Command::Explain(e) => {
                assert_eq!(e.queries, Some(PathBuf::from("q.txt")));
                assert_eq!(e.threads, 4);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&v(&["explain"])).is_err()); // missing --data
        assert!(parse(&v(&["explain", "--data", "d", "--threads", "0"])).is_err());
        assert!(parse(&v(&["explain", "--data", "d", "--engine", "auto"])).is_err());
    }

    #[test]
    fn parses_shard_flags_with_defaults() {
        // Defaults: unsharded, length partitioner.
        let cmd = parse(&v(&["search", "--data", "d", "--queries", "q"])).unwrap();
        match cmd {
            Command::Search(a) => {
                assert_eq!(a.shards, 0);
                assert_eq!(a.shard_by, ShardBy::Len);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd = parse(&v(&[
            "search", "--data", "d", "--queries", "q", "--shards", "4", "--shard-by", "hash",
        ]))
        .unwrap();
        match cmd {
            Command::Search(a) => {
                assert_eq!(a.shards, 4);
                assert_eq!(a.shard_by, ShardBy::Hash);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd = parse(&v(&["serve", "--data", "d", "--shards", "3"])).unwrap();
        match cmd {
            Command::Serve(s) => {
                assert_eq!(s.shards, 3);
                assert_eq!(s.shard_by, ShardBy::Len);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let cmd = parse(&v(&[
            "explain", "--data", "d", "--shards", "2", "--shard-by", "len",
        ]))
        .unwrap();
        match cmd {
            Command::Explain(e) => {
                assert_eq!(e.shards, 2);
                assert_eq!(e.shard_by, ShardBy::Len);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_shard_flags() {
        assert!(parse(&v(&[
            "search", "--data", "d", "--queries", "q", "--shard-by", "zip"
        ]))
        .is_err());
        assert!(parse(&v(&["serve", "--data", "d", "--shards", "many"])).is_err());
        assert!(parse(&v(&["explain", "--data", "d", "--shard-by", ""])).is_err());
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["--help"])).unwrap(), Command::Help);
    }
}
