//! `simsearch` — the competition-style command-line tool.
//!
//! Mirrors the workflow of the paper's implementations: read a data file
//! and a query file, answer every query, write the matching record ids.
//! Also generates the synthetic datasets and prints dataset statistics.

mod args;

use args::{
    ClientArgs, Command, EngineChoice, ExplainArgs, GenerateArgs, JoinArgs, SearchArgs, ServeArgs,
    USAGE,
};
use simsearch_core::{
    experiment::time, AutoBackend, Backend, BackendChoice, EngineKind, IdxVariant, PlanDecision,
    Planner, SearchEngine, SeqVariant, ShardedBackend, Strategy,
};
use simsearch_data::{io, Alphabet, CityGenerator, DnaGenerator, MatchSet, WorkloadSpec};
use simsearch_data::{Dataset, DatasetStats, StatsSnapshot, Workload, CITY_THRESHOLDS, DNA_THRESHOLDS};
use std::io::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match args::parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Search(a) => run_search(a),
        Command::Generate(g) => run_generate(g),
        Command::Stats { data } => run_stats(&data),
        Command::Join(j) => run_join(j),
        Command::Verify { results, expected } => run_verify(&results, &expected),
        Command::Serve(s) => run_serve(s),
        Command::Client(c) => run_client(c),
        Command::Explain(e) => run_explain(e),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_search(a: SearchArgs) -> Result<(), String> {
    let dataset = io::read_dataset(&a.data).map_err(|e| format!("reading {:?}: {e}", a.data))?;
    let workload =
        io::read_queries(&a.queries).map_err(|e| format!("reading {:?}: {e}", a.queries))?;
    if a.shards >= 2 {
        return run_search_sharded(&a, &dataset, &workload);
    }
    let strategy = if a.threads > 1 {
        Strategy::FixedPool { threads: a.threads }
    } else {
        Strategy::Sequential
    };
    let kind = match a.engine {
        EngineChoice::Scan => EngineKind::Scan(if a.threads > 1 {
            SeqVariant::V6Pool { threads: a.threads }
        } else {
            SeqVariant::V4Flat
        }),
        EngineChoice::ScanBase => EngineKind::Scan(SeqVariant::V1Base),
        EngineChoice::ScanSorted => EngineKind::Scan(SeqVariant::V7SortedPrefix),
        EngineChoice::ScanBitParallel => EngineKind::Scan(SeqVariant::V8BitParallel),
        EngineChoice::Trie => EngineKind::Index(IdxVariant::I1BaseTrie),
        EngineChoice::Radix => EngineKind::Index(if a.threads > 1 {
            IdxVariant::I3Pool { threads: a.threads }
        } else {
            IdxVariant::I2Compressed
        }),
        EngineChoice::Qgram => EngineKind::Qgram { q: 2, strategy },
        EngineChoice::Buckets => EngineKind::Buckets { strategy },
        EngineChoice::BkTree => EngineKind::Bk { strategy },
        EngineChoice::Auto => EngineKind::Auto { threads: a.threads },
    };
    let (engine, build_time) = time(|| match a.engine {
        // Auto: calibrate the planner with a probe drawn from the
        // workload prefix (build-time cost, like index construction).
        EngineChoice::Auto => {
            let probe = workload.prefix(workload.len().min(16));
            SearchEngine::build_auto(&dataset, a.threads, Some(&probe))
        }
        _ => SearchEngine::build(&dataset, kind),
    });
    let (results, query_time) = time(|| engine.run(&workload));
    eprintln!(
        "{}: {} records, {} queries; build {:.3}s, query {:.3}s",
        engine.name(),
        dataset.len(),
        workload.len(),
        build_time.as_secs_f64(),
        query_time.as_secs_f64()
    );
    if let Some(counts) = engine.plan_counts() {
        let routed: Vec<String> = counts
            .iter()
            .filter(|(_, c)| *c > 0)
            .map(|(name, c)| format!("{name}={c}"))
            .collect();
        eprintln!("plan decisions: {}", routed.join(" "));
    }
    write_search_results(a.output.as_deref(), &results)
}

/// Maps an engine selector to the shard arm every shard runs, or `None`
/// for `auto` (each shard then calibrates its own planner). `scan` and
/// `scan-base` both map to the flat scan arm — shard-local scheduling
/// is the sharded backend's job, and the naive rung exists only as an
/// unsharded baseline.
fn shard_arm(choice: EngineChoice) -> Option<BackendChoice> {
    match choice {
        EngineChoice::Auto => None,
        EngineChoice::Scan | EngineChoice::ScanBase => Some(BackendChoice::ScanFlat),
        EngineChoice::ScanSorted => Some(BackendChoice::ScanSorted),
        EngineChoice::ScanBitParallel => Some(BackendChoice::ScanBitParallel),
        EngineChoice::Trie => Some(BackendChoice::Trie),
        EngineChoice::Radix => Some(BackendChoice::Radix),
        EngineChoice::Qgram => Some(BackendChoice::Qgram),
        EngineChoice::Buckets => Some(BackendChoice::Buckets),
        EngineChoice::BkTree => Some(BackendChoice::BkTree),
    }
}

fn run_search_sharded(a: &SearchArgs, dataset: &Dataset, workload: &Workload) -> Result<(), String> {
    let (backend, build_time) = time(|| {
        let b = match shard_arm(a.engine) {
            // Auto: every shard calibrates against the same workload
            // prefix the unsharded path probes with, so per-shard
            // routing reflects the real query mix.
            None => {
                let probe = workload.prefix(workload.len().min(16));
                ShardedBackend::calibrated_with(dataset, a.shards, a.shard_by, a.threads, &probe)
            }
            Some(c) => ShardedBackend::with_fixed_arm(dataset, a.shards, a.shard_by, a.threads, c),
        };
        b.prepare();
        b
    });
    let (results, query_time) = time(|| backend.run_workload(workload));
    eprintln!(
        "{}: {} records, {} queries; build {:.3}s, query {:.3}s",
        backend.name(),
        dataset.len(),
        workload.len(),
        build_time.as_secs_f64(),
        query_time.as_secs_f64()
    );
    if let Some(counts) = backend.plan_counts() {
        let routed: Vec<String> = counts
            .iter()
            .filter(|(_, c)| *c > 0)
            .map(|(name, c)| format!("{name}={c}"))
            .collect();
        eprintln!("plan decisions: {}", routed.join(" "));
    }
    if let Some(stats) = backend.shard_stats() {
        for (i, s) in stats.iter().enumerate() {
            eprintln!(
                "  shard s{i}: {} records, {} queries, {} matches",
                s.records, s.queries, s.matches
            );
        }
    }
    write_search_results(a.output.as_deref(), &results)
}

fn write_search_results(
    output: Option<&std::path::Path>,
    results: &[MatchSet],
) -> Result<(), String> {
    let id_lists: Vec<Vec<u32>> = results.iter().map(MatchSet::ids).collect();
    match output {
        Some(path) => {
            io::write_results(path, &id_lists).map_err(|e| format!("writing {path:?}: {e}"))?
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            for (i, ids) in id_lists.iter().enumerate() {
                let list: Vec<String> = ids.iter().map(|id| id.to_string()).collect();
                writeln!(lock, "{i}: {}", list.join(","))
                    .map_err(|e| format!("writing stdout: {e}"))?;
            }
        }
    }
    Ok(())
}

/// Engine selection for the daemon: concurrency comes from the batch
/// workers, so every choice maps to a single-threaded kernel.
fn serve_engine_kind(choice: EngineChoice) -> EngineKind {
    match choice {
        EngineChoice::Scan => EngineKind::Scan(SeqVariant::V4Flat),
        EngineChoice::ScanBase => EngineKind::Scan(SeqVariant::V1Base),
        EngineChoice::ScanSorted => EngineKind::Scan(SeqVariant::V7SortedPrefix),
        EngineChoice::ScanBitParallel => EngineKind::Scan(SeqVariant::V8BitParallel),
        EngineChoice::Trie => EngineKind::Index(IdxVariant::I1BaseTrie),
        EngineChoice::Radix => EngineKind::Index(IdxVariant::I2Compressed),
        EngineChoice::Qgram => EngineKind::Qgram {
            q: 2,
            strategy: Strategy::Sequential,
        },
        EngineChoice::Buckets => EngineKind::Buckets {
            strategy: Strategy::Sequential,
        },
        EngineChoice::BkTree => EngineKind::Bk {
            strategy: Strategy::Sequential,
        },
        // The serving layer calibrates the planner itself (see
        // `ServedEngine::build`); per-query kernels stay sequential.
        EngineChoice::Auto => EngineKind::Auto { threads: 1 },
    }
}

fn run_serve(a: ServeArgs) -> Result<(), String> {
    use std::time::Duration;
    let dataset = io::read_dataset(&a.data).map_err(|e| format!("reading {:?}: {e}", a.data))?;
    let label = a
        .data
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".into());
    let config = simsearch_serve::ServerConfig {
        port: a.port,
        dataset_label: label,
        // 0 disables the self-tuning tick; any other cadence runs it on
        // a scoped background thread inside the daemon.
        replan_interval: (a.replan_interval_ms > 0)
            .then(|| Duration::from_millis(a.replan_interval_ms)),
        calibration_path: a.calibration.clone(),
        batch: simsearch_serve::BatchConfig {
            threads: a.threads,
            batch_size: a.batch_size,
            max_delay: Duration::from_millis(a.max_delay_ms),
            queue_capacity: a.queue_capacity,
            deadline: Duration::from_millis(a.deadline_ms),
            ..simsearch_serve::BatchConfig::default()
        },
        ..simsearch_serve::ServerConfig::default()
    };
    let records = dataset.len();
    // Sharded serving: per-shard calibrated planners, sequential
    // per-query fan-out (batch workers supply the concurrency).
    // Live serving: the dataset seeds a mutable LSM engine and the
    // daemon accepts INSERT/DELETE. Both together compose: hash-routed
    // LiveEngine shards with per-shard flush and compaction.
    let kind = if a.live && a.shards >= 2 {
        EngineKind::ShardedLive {
            shards: a.shards,
            by: a.shard_by,
            threads: 1,
            memtable_cap: a.memtable_cap,
        }
    } else if a.live {
        EngineKind::Live {
            memtable_cap: a.memtable_cap,
        }
    } else if a.shards >= 2 {
        EngineKind::Sharded {
            shards: a.shards,
            by: a.shard_by,
            threads: 1,
        }
    } else {
        serve_engine_kind(a.engine)
    };
    let handle = simsearch_serve::spawn(dataset, kind, config)
        .map_err(|e| format!("binding 127.0.0.1:{}: {e}", a.port))?;
    // The actually-bound address, on stdout, before any connection is
    // served — scripts pointing at `--port 0` parse this line. Rust's
    // stdout is line-buffered, so the line is visible immediately.
    println!("simsearchd listening on {}", handle.addr());
    eprintln!(
        "serving {records} records from {:?}; send SHUTDOWN to stop",
        a.data
    );
    if let Some(path) = &a.port_file {
        std::fs::write(path, format!("{}\n", handle.port()))
            .map_err(|e| format!("writing {path:?}: {e}"))?;
    }
    handle.join(); // returns once a SHUTDOWN frame has drained the server
    eprintln!("simsearchd drained and exited");
    Ok(())
}

fn run_client(a: ClientArgs) -> Result<(), String> {
    let mut client = simsearch_serve::Client::connect((a.host.as_str(), a.port))
        .map_err(|e| format!("connecting to {}:{}: {e}", a.host, a.port))?;
    for frame in &a.send {
        let reply = client
            .send_raw(frame.as_bytes())
            .map_err(|e| format!("sending {frame:?}: {e}"))?;
        let line = String::from_utf8_lossy(&reply).into_owned();
        if a.check_stats_json {
            if let Some(json) = line.strip_prefix("OK ") {
                if json.starts_with('{') {
                    simsearch_serve::json::validate(json)
                        .map_err(|e| format!("reply to {frame:?} is not valid JSON: {e}"))?;
                }
            }
        }
        println!("{line}");
        // A `JOIN` reply is a stream: the `OK join <total>` header is
        // followed by `OK pairs` chunk frames. Drain and print them all
        // so the next request's reply isn't misread as a chunk.
        if let Some(total) = line
            .strip_prefix("OK join ")
            .and_then(|t| t.parse::<u64>().ok())
        {
            let mut streamed: u64 = 0;
            while streamed < total {
                let chunk = client
                    .recv_raw()
                    .map_err(|e| format!("draining join stream for {frame:?}: {e}"))?;
                let chunk = String::from_utf8_lossy(&chunk).into_owned();
                let count = chunk
                    .strip_prefix("OK pairs ")
                    .and_then(|rest| rest.split(' ').next())
                    .and_then(|n| n.parse::<u64>().ok())
                    .ok_or_else(|| format!("unexpected frame in join stream: {chunk:?}"))?;
                streamed += count;
                println!("{chunk}");
            }
        }
    }
    Ok(())
}

fn run_generate(g: GenerateArgs) -> Result<(), String> {
    let dataset = match g.kind.as_str() {
        "city" => CityGenerator::new(g.seed).generate(g.count),
        "dna" => DnaGenerator::new(g.seed).generate(g.count),
        other => return Err(format!("unknown kind '{other}'")),
    };
    io::write_dataset(&g.out, &dataset).map_err(|e| format!("writing {:?}: {e}", g.out))?;
    eprintln!("wrote {} records to {:?}", dataset.len(), g.out);
    if let Some(qpath) = g.queries_out {
        let alphabet = Alphabet::from_corpus(dataset.records());
        let thresholds: &[u32] = if g.kind == "dna" {
            &DNA_THRESHOLDS
        } else {
            &CITY_THRESHOLDS
        };
        let workload = WorkloadSpec::new(thresholds, g.query_count, g.seed ^ 0x0A)
            .generate(&dataset, &alphabet);
        io::write_queries(&qpath, &workload).map_err(|e| format!("writing {qpath:?}: {e}"))?;
        eprintln!("wrote {} queries to {qpath:?}", workload.len());
    }
    Ok(())
}

fn run_join(j: JoinArgs) -> Result<(), String> {
    use simsearch_core::join::{index_join, nested_loop_join, parallel_sorted_join};
    use simsearch_core::{parallel_min_join, parallel_pass_join};
    let dataset = io::read_dataset(&j.data).map_err(|e| format!("reading {:?}: {e}", j.data))?;
    let strategy = if j.threads > 1 {
        Strategy::FixedPool { threads: j.threads }
    } else {
        Strategy::Sequential
    };
    let (pairs, wall) = time(|| match j.algo.as_str() {
        "nested" => nested_loop_join(&dataset, j.k),
        "index" => index_join(&dataset, j.k),
        "pass" => parallel_pass_join(&dataset, j.k, strategy),
        "minjoin" => parallel_min_join(&dataset, j.k, strategy),
        _ => parallel_sorted_join(&dataset, j.k, strategy),
    });
    eprintln!(
        "{} join, k = {}: {} pairs in {:.3}s",
        j.algo,
        j.k,
        pairs.len(),
        wall.as_secs_f64()
    );
    let render = |out: &mut dyn std::io::Write| -> std::io::Result<()> {
        for p in &pairs {
            writeln!(out, "{}	{}	{}", p.left, p.right, p.distance)?;
        }
        Ok(())
    };
    match j.output {
        Some(path) => {
            let mut f = std::io::BufWriter::new(
                std::fs::File::create(&path).map_err(|e| format!("creating {path:?}: {e}"))?,
            );
            render(&mut f).map_err(|e| format!("writing {path:?}: {e}"))?;
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            render(&mut lock).map_err(|e| format!("writing stdout: {e}"))?;
        }
    }
    Ok(())
}

fn run_verify(results: &std::path::Path, expected: &std::path::Path) -> Result<(), String> {
    let read = |p: &std::path::Path| -> Result<Vec<String>, String> {
        Ok(std::fs::read_to_string(p)
            .map_err(|e| format!("reading {p:?}: {e}"))?
            .lines()
            .map(str::to_string)
            .collect())
    };
    let got = read(results)?;
    let want = read(expected)?;
    if got.len() != want.len() {
        return Err(format!(
            "line counts differ: {} results vs {} expected",
            got.len(),
            want.len()
        ));
    }
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        if g != w {
            return Err(format!("line {} differs:
  got:      {g}
  expected: {w}", i + 1));
        }
    }
    println!("OK: {} result lines identical", got.len());
    Ok(())
}

fn run_explain(a: ExplainArgs) -> Result<(), String> {
    let dataset = io::read_dataset(&a.data).map_err(|e| format!("reading {:?}: {e}", a.data))?;
    let snapshot = StatsSnapshot::compute(&dataset);
    println!("{snapshot}");
    // The static table is a pure function of the snapshot, so this
    // output is reproducible run-to-run (the planner-determinism
    // property the test suite checks).
    let planner = Planner::new(snapshot.clone(), &AutoBackend::DEFAULT_CANDIDATES);
    println!();
    println!("static plan (length class × k → backend; costs in planner units):");
    print_decision_table(&snapshot, planner.decisions());
    println!();
    println!("static routing summary (query classes won per backend):");
    for &choice in planner.candidates() {
        let won = planner
            .decisions()
            .iter()
            .filter(|d| d.chosen == choice)
            .count();
        println!("  {:<16} {won} classes", choice.name());
    }
    if a.shards >= 2 {
        return explain_sharded(&a, &dataset);
    }
    if let Some(qpath) = &a.queries {
        let workload =
            io::read_queries(qpath).map_err(|e| format!("reading {qpath:?}: {e}"))?;
        let probe = workload.prefix(workload.len().min(16));
        let (engine, build_time) =
            time(|| SearchEngine::build_auto(&dataset, a.threads, Some(&probe)));
        let (_, query_time) = time(|| engine.run(&workload));
        println!();
        println!(
            "calibrated routing of {} queries (build {:.3}s, query {:.3}s):",
            workload.len(),
            build_time.as_secs_f64(),
            query_time.as_secs_f64()
        );
        for (name, count) in engine.plan_counts().unwrap_or_default() {
            println!("  {name:<12} {count}");
        }
        explain_live_diff(&dataset, &workload, a.threads, &planner);
    }
    Ok(())
}

/// The live-vs-static half of `explain`: replay the workload through a
/// planner-driven backend with its observation grid recording, run one
/// replan tick, and print every query class whose routing the measured
/// multipliers changed — exactly what a serving daemon's first replan
/// would do to the static table.
fn explain_live_diff(dataset: &Dataset, workload: &Workload, threads: usize, statik: &Planner) {
    let auto = AutoBackend::calibrated(
        dataset,
        threads,
        &workload.prefix(workload.len().min(16)),
    );
    for q in &workload.queries {
        let _ = auto.search_counting(&q.text, q.threshold);
    }
    println!();
    if !auto.replan() {
        println!(
            "live vs static plan: {} observed queries are too few to \
             recalibrate (the daemon would keep the current table)",
            auto.observations().total()
        );
        return;
    }
    let live = auto.planner();
    let changed: Vec<(&PlanDecision, &PlanDecision)> = statik
        .decisions()
        .iter()
        .zip(live.decisions())
        .filter(|(s, l)| s.chosen != l.chosen)
        .collect();
    println!(
        "live vs static plan after replaying {} queries: {} of {} \
         classes rerouted",
        workload.len(),
        changed.len(),
        statik.decisions().len()
    );
    let len_label = |c: u8| match c {
        0 => "short",
        1 => "medium",
        _ => "long",
    };
    for (s, l) in changed {
        println!(
            "  {:<6} k={:<2} {} → {}",
            len_label(s.class.len_class),
            s.class.k_class,
            s.chosen.name(),
            l.chosen.name()
        );
    }
    println!("observed arm latencies backing the live table:");
    for (name, nanos) in auto.observed_arm_nanos() {
        println!("  {name:<16} {nanos} ns");
    }
}

/// One planner decision table, one row per query class.
fn print_decision_table(snapshot: &StatsSnapshot, decisions: &[PlanDecision]) {
    let len_label = |c: u8| match c {
        0 => "short",
        1 => "medium",
        _ => "long",
    };
    for decision in decisions {
        let repr = decision.class.representative_len(snapshot);
        let costs: Vec<String> = decision
            .estimates
            .iter()
            .map(|e| format!("{}={:.0}", e.choice.name(), e.cost))
            .collect();
        println!(
            "  {:<6} (|q|≈{repr:>4}) k={:<2} → {:<12} [{}]",
            len_label(decision.class.len_class),
            decision.class.k_class,
            decision.chosen.name(),
            costs.join(", ")
        );
    }
}

/// The `--shards` half of `explain`: every shard's own snapshot and
/// decision table, plus (with `--queries`) calibrated per-shard routing
/// of the workload.
fn explain_sharded(a: &ExplainArgs, dataset: &Dataset) -> Result<(), String> {
    let workload = match &a.queries {
        Some(qpath) => {
            Some(io::read_queries(qpath).map_err(|e| format!("reading {qpath:?}: {e}"))?)
        }
        None => None,
    };
    let backend = match &workload {
        // With a workload on hand each shard's planner is calibrated
        // against its prefix, matching what `search --shards` runs.
        Some(w) => {
            let probe = w.prefix(w.len().min(16));
            ShardedBackend::calibrated_with(dataset, a.shards, a.shard_by, a.threads, &probe)
        }
        None => ShardedBackend::build(dataset, a.shards, a.shard_by, a.threads),
    };
    println!();
    println!(
        "sharded plan ({} shards, --shard-by {}):",
        backend.shard_count(),
        backend.shard_by().name()
    );
    for (i, diag) in backend.shard_diags().iter().enumerate() {
        let Some(plan) = &diag.plan else { continue };
        println!();
        println!(
            "shard s{i} ({}, {} records):",
            diag.name, plan.snapshot.records
        );
        println!("{}", plan.snapshot);
        print_decision_table(&plan.snapshot, &plan.decisions);
    }
    if let Some(workload) = &workload {
        backend.prepare();
        let (_, query_time) = time(|| backend.run_workload(workload));
        println!();
        println!(
            "calibrated sharded routing of {} queries ({:.3}s):",
            workload.len(),
            query_time.as_secs_f64()
        );
        if let Some(counts) = backend.plan_counts() {
            for (name, count) in counts {
                println!("  {name:<12} {count}");
            }
        }
        for (i, s) in backend.shard_stats().into_iter().flatten().enumerate() {
            println!(
                "  shard s{i}: {} records, {} queries, {} matches",
                s.records, s.queries, s.matches
            );
        }
    }
    Ok(())
}

fn run_stats(path: &std::path::Path) -> Result<(), String> {
    let dataset = io::read_dataset(path).map_err(|e| format!("reading {path:?}: {e}"))?;
    let stats = DatasetStats::compute(&dataset);
    println!("{stats}");
    Ok(())
}
