//! End-to-end tests of the `simsearch` binary: generate → search with
//! two engines → verify the result files are identical → join.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_simsearch"))
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simsearch-cli-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_search_verify_round_trip() {
    let dir = tmpdir();
    let data = dir.join("e2e.data");
    let queries = dir.join("e2e.queries");
    let scan_out = dir.join("e2e.scan");
    let radix_out = dir.join("e2e.radix");

    let status = bin()
        .args(["generate", "--kind", "city", "--count", "500", "--seed", "9"])
        .args(["--out", data.to_str().unwrap()])
        .args(["--queries", queries.to_str().unwrap()])
        .args(["--query-count", "40"])
        .status()
        .expect("spawn generate");
    assert!(status.success());
    assert!(data.exists() && queries.exists());

    for (engine, out) in [("scan", &scan_out), ("radix", &radix_out)] {
        let status = bin()
            .args(["search", "--data", data.to_str().unwrap()])
            .args(["--queries", queries.to_str().unwrap()])
            .args(["--engine", engine])
            .args(["--output", out.to_str().unwrap()])
            .status()
            .expect("spawn search");
        assert!(status.success(), "engine {engine} failed");
    }

    // The two engines must have produced identical result files.
    let status = bin()
        .args(["verify", "--results", scan_out.to_str().unwrap()])
        .args(["--expected", radix_out.to_str().unwrap()])
        .status()
        .expect("spawn verify");
    assert!(status.success(), "scan and radix result files differ");

    // Join runs and emits well-formed triples.
    let output = bin()
        .args(["join", "--data", data.to_str().unwrap(), "--k", "1"])
        .output()
        .expect("spawn join");
    assert!(output.status.success());
    for line in String::from_utf8_lossy(&output.stdout).lines() {
        let parts: Vec<&str> = line.split('\t').collect();
        assert_eq!(parts.len(), 3, "malformed join line {line:?}");
        let l: u32 = parts[0].parse().unwrap();
        let r: u32 = parts[1].parse().unwrap();
        let d: u32 = parts[2].parse().unwrap();
        assert!(l < r && d <= 1);
    }

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_flags_fail_with_usage() {
    let output = bin().args(["search", "--bogus"]).output().unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn stats_reports_properties() {
    let dir = tmpdir();
    let data = dir.join("stats.data");
    std::fs::write(&data, "abc\nde\n").unwrap();
    let output = bin()
        .args(["stats", "--data", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("2 records"), "unexpected stats: {stdout}");
    std::fs::remove_file(&data).unwrap();
}

#[test]
fn verify_detects_divergence() {
    let dir = tmpdir();
    let a = dir.join("a.results");
    let b = dir.join("b.results");
    std::fs::write(&a, "0: 1,2\n").unwrap();
    std::fs::write(&b, "0: 1,3\n").unwrap();
    let output = bin()
        .args(["verify", "--results", a.to_str().unwrap()])
        .args(["--expected", b.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("line 1 differs"));
    std::fs::remove_file(&a).unwrap();
    std::fs::remove_file(&b).unwrap();
}
