//! Value generators for property tests, driven by the workspace's own
//! deterministic [`Xoshiro256`] PRNG (`crates/data/src/rng.rs`) so the
//! same seed always produces the same inputs on every machine.

use simsearch_data::generate::edits::apply_random_edits;
use simsearch_data::rng::Xoshiro256;
use simsearch_data::Alphabet;
use std::ops::Range;
use std::rc::Rc;

/// The DNA alphabet used by the domain generators (Table I's symbols).
pub const DNA: &[u8] = b"ACGNT";
/// A small, collision-rich city-like alphabet: property tests over few
/// symbols hit shared prefixes and near-duplicates far more often.
pub const CITY: &[u8] = b"abcdAB -";

/// A generator: a reusable sampling function from PRNG state to values.
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut Xoshiro256) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Self { f: Rc::clone(&self.f) }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a sampling function.
    pub fn new(f: impl Fn(&mut Xoshiro256) -> T + 'static) -> Self {
        Self { f: Rc::new(f) }
    }

    /// Draws one value.
    pub fn sample(&self, rng: &mut Xoshiro256) -> T {
        (self.f)(rng)
    }

    /// Maps the generated value through `f`.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::new(move |rng| f(self.sample(rng)))
    }
}

/// Always produces a clone of `value`.
pub fn constant<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::new(move |_| value.clone())
}

/// Uniform `u32` in `range` (half-open, must be non-empty).
pub fn u32_in(range: Range<u32>) -> Gen<u32> {
    assert!(!range.is_empty(), "empty range {range:?}");
    Gen::new(move |rng| range.start + rng.below((range.end - range.start) as u64) as u32)
}

/// Uniform `usize` in `range` (half-open, must be non-empty).
pub fn usize_in(range: Range<usize>) -> Gen<usize> {
    assert!(!range.is_empty(), "empty range {range:?}");
    Gen::new(move |rng| range.start + rng.index(range.end - range.start))
}

/// Any `u64`.
pub fn u64_any() -> Gen<u64> {
    Gen::new(|rng| rng.next_u64())
}

/// Any byte, 0–255.
pub fn byte_any() -> Gen<u8> {
    Gen::new(|rng| rng.below(256) as u8)
}

/// A byte drawn uniformly from `choices`.
pub fn byte_from(choices: &'static [u8]) -> Gen<u8> {
    assert!(!choices.is_empty(), "empty byte choices");
    Gen::new(move |rng| *rng.choose(choices))
}

/// A byte in 0–255 satisfying `keep` (rejection sampling; `keep` must
/// accept at least one byte).
pub fn byte_where(keep: impl Fn(u8) -> bool + 'static) -> Gen<u8> {
    assert!((0..=255u16).any(|b| keep(b as u8)), "predicate rejects every byte");
    Gen::new(move |rng| loop {
        let b = rng.below(256) as u8;
        if keep(b) {
            return b;
        }
    })
}

/// A vector of `inner`-generated values with a length in `len`.
pub fn vec_of<T: 'static>(inner: Gen<T>, len: Range<usize>) -> Gen<Vec<T>> {
    assert!(!len.is_empty(), "empty length range {len:?}");
    Gen::new(move |rng| {
        let n = len.start + rng.index(len.end - len.start);
        (0..n).map(|_| inner.sample(rng)).collect()
    })
}

/// Arbitrary byte strings with a length in `len`.
pub fn bytes_any(len: Range<usize>) -> Gen<Vec<u8>> {
    vec_of(byte_any(), len)
}

/// Byte strings over an explicit alphabet with a length in `len`.
pub fn bytes_from(alphabet: &'static [u8], len: Range<usize>) -> Gen<Vec<u8>> {
    vec_of(byte_from(alphabet), len)
}

/// City-like ASCII strings (small latin alphabet with space and dash —
/// collision-rich, like the paper's city-names profile).
pub fn city_string(len: Range<usize>) -> Gen<Vec<u8>> {
    bytes_from(CITY, len)
}

/// DNA strings over `ACGNT`.
pub fn dna_string(len: Range<usize>) -> Gen<Vec<u8>> {
    bytes_from(DNA, len)
}

/// A corpus: `count` words produced by `word`.
pub fn corpus(word: Gen<Vec<u8>>, count: Range<usize>) -> Gen<Vec<Vec<u8>>> {
    vec_of(word, count)
}

/// Draws uniformly from `choices`, then samples the chosen generator —
/// the sum-type combinator (e.g. one of several operation kinds).
pub fn one_of<T: 'static>(choices: Vec<Gen<T>>) -> Gen<T> {
    assert!(!choices.is_empty(), "empty generator choices");
    Gen::new(move |rng| choices[rng.index(choices.len())].sample(rng))
}

/// Like [`one_of`], but each choice carries an integer weight: choice
/// `i` is drawn with probability `weight_i / Σ weights`. Zero-weight
/// choices are never drawn (but at least one weight must be positive).
pub fn weighted<T: 'static>(choices: Vec<(u32, Gen<T>)>) -> Gen<T> {
    let total: u64 = choices.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "weights sum to zero");
    Gen::new(move |rng| {
        let mut ticket = rng.below(total);
        for (weight, gen) in &choices {
            if ticket < *weight as u64 {
                return gen.sample(rng);
            }
            ticket -= *weight as u64;
        }
        unreachable!("ticket below total weight")
    })
}

/// Pairs two generators.
pub fn zip<A: 'static, B: 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    Gen::new(move |rng| (a.sample(rng), b.sample(rng)))
}

/// Triples three generators.
pub fn zip3<A: 'static, B: 'static, C: 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
) -> Gen<(A, B, C)> {
    Gen::new(move |rng| (a.sample(rng), b.sample(rng), c.sample(rng)))
}

/// Quadruples four generators.
pub fn zip4<A: 'static, B: 'static, C: 'static, D: 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
    d: Gen<D>,
) -> Gen<(A, B, C, D)> {
    Gen::new(move |rng| (a.sample(rng), b.sample(rng), c.sample(rng), d.sample(rng)))
}

/// `(original, mutated, budget)`: a base string plus a copy perturbed by
/// at most `edits` random insert/delete/substitute operations over
/// `alphabet` — the guaranteed-match workload construction of
/// `crates/data/src/generate/edits.rs`. The edit distance between the
/// two strings is at most `budget`.
pub fn mutated(
    base: Gen<Vec<u8>>,
    edits: Range<usize>,
    alphabet: &'static [u8],
) -> Gen<(Vec<u8>, Vec<u8>, usize)> {
    assert!(!edits.is_empty(), "empty edit range {edits:?}");
    let alpha = Alphabet::new(alphabet);
    Gen::new(move |rng| {
        let original = base.sample(rng);
        let budget = edits.start + rng.index(edits.end - edits.start);
        let mutated = apply_random_edits(rng, &original, budget, &alpha);
        (original, mutated, budget)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(7)
    }

    #[test]
    fn generators_are_deterministic() {
        let g = zip(bytes_any(0..20), u32_in(0..6));
        let a: Vec<_> = {
            let mut r = rng();
            (0..50).map(|_| g.sample(&mut r)).collect()
        };
        let b: Vec<_> = {
            let mut r = rng();
            (0..50).map(|_| g.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = rng();
        let g = usize_in(3..9);
        for _ in 0..500 {
            let v = g.sample(&mut r);
            assert!((3..9).contains(&v));
        }
        let s = dna_string(2..5);
        for _ in 0..200 {
            let v = s.sample(&mut r);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|b| DNA.contains(b)));
        }
    }

    #[test]
    fn byte_where_filters() {
        let mut r = rng();
        let g = byte_where(|b| b != 0 && b != b'\n');
        for _ in 0..500 {
            let b = g.sample(&mut r);
            assert!(b != 0 && b != b'\n');
        }
    }

    #[test]
    fn mutated_respects_edit_budget() {
        let mut r = rng();
        let g = mutated(city_string(0..12), 0..4, CITY);
        for _ in 0..200 {
            let (orig, edited, budget) = g.sample(&mut r);
            let d = simsearch_distance::levenshtein(&orig, &edited);
            assert!(d as usize <= budget, "{d} > {budget}");
        }
    }

    #[test]
    fn one_of_draws_every_choice() {
        let mut r = rng();
        let g = one_of(vec![constant(1u32), constant(2), constant(3)]);
        let mut seen = [false; 4];
        for _ in 0..300 {
            let v = g.sample(&mut r) as usize;
            assert!((1..=3).contains(&v));
            seen[v] = true;
        }
        assert!(seen[1] && seen[2] && seen[3], "all choices reachable");
    }

    #[test]
    fn weighted_respects_weights() {
        let mut r = rng();
        // Weight 0 must never be drawn; 9:1 should skew heavily.
        let g = weighted(vec![
            (9, constant("common")),
            (1, constant("rare")),
            (0, constant("never")),
        ]);
        let mut common = 0;
        let mut rare = 0;
        for _ in 0..1000 {
            match g.sample(&mut r) {
                "common" => common += 1,
                "rare" => rare += 1,
                other => panic!("zero-weight choice drawn: {other}"),
            }
        }
        assert!(rare > 0, "positive-weight choice reachable");
        assert!(common > rare * 4, "9:1 skew visible: {common} vs {rare}");
    }

    #[test]
    fn map_transforms() {
        let mut r = rng();
        let g = u32_in(1..10).map(|v| v * 2);
        for _ in 0..100 {
            let v = g.sample(&mut r);
            assert!(v.is_multiple_of(2) && (2..20).contains(&v));
        }
    }
}
