//! Value shrinking: when a property fails, the runner repeatedly asks
//! the failing value for simpler candidates and keeps the simplest one
//! that still fails, converging on a minimal counterexample.
//!
//! Candidates must be *strictly simpler* than the value that produced
//! them (shorter, or closer to zero), so the greedy loop in
//! [`crate::prop::check`] always terminates.

/// A type whose values can propose strictly simpler variants of
/// themselves. The default implementation proposes nothing, which makes
/// any type usable in properties (it just won't shrink).
pub trait Shrink: Sized + Clone {
    /// Candidate simplifications, simplest first. Every candidate must
    /// be strictly simpler than `self`.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

impl Shrink for () {}
impl Shrink for char {}
impl Shrink for f64 {}

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! shrink_unsigned {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0];
                if v / 2 > 0 {
                    out.push(v / 2);
                }
                if v - 1 > v / 2 {
                    out.push(v - 1);
                }
                out
            }
        }
    )*};
}

shrink_unsigned!(u8, u16, u32, u64, usize);

macro_rules! shrink_signed {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0];
                if v < 0 {
                    // Prefer the positive mirror; it is "simpler" by
                    // convention and strictly closer to zero afterwards.
                    out.push(-(v / 2));
                }
                if v / 2 != 0 {
                    out.push(v / 2);
                }
                out
            }
        }
    )*};
}

shrink_signed!(i8, i16, i32, i64, isize);

impl<T: Shrink> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let n = self.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        out.push(Vec::new());
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        }
        // Remove one element at a time.
        for i in 0..n {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        // Shrink one element at a time (a few candidates per slot keep
        // the fan-out bounded; the outer loop iterates anyway).
        for i in 0..n {
            for cand in self[i].shrink().into_iter().take(3) {
                let mut v = self.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

impl<T: Shrink> Shrink for Option<T> {
    fn shrink(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(v) => {
                let mut out = vec![None];
                out.extend(v.shrink().into_iter().map(Some));
                out
            }
        }
    }
}

impl<A: Shrink, B: Shrink> Shrink for (A, B) {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for a in self.0.shrink() {
            out.push((a, self.1.clone()));
        }
        for b in self.1.shrink() {
            out.push((self.0.clone(), b));
        }
        out
    }
}

impl<A: Shrink, B: Shrink, C: Shrink> Shrink for (A, B, C) {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for a in self.0.shrink() {
            out.push((a, self.1.clone(), self.2.clone()));
        }
        for b in self.1.shrink() {
            out.push((self.0.clone(), b, self.2.clone()));
        }
        for c in self.2.shrink() {
            out.push((self.0.clone(), self.1.clone(), c));
        }
        out
    }
}

impl<A: Shrink, B: Shrink, C: Shrink, D: Shrink> Shrink for (A, B, C, D) {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for a in self.0.shrink() {
            out.push((a, self.1.clone(), self.2.clone(), self.3.clone()));
        }
        for b in self.1.shrink() {
            out.push((self.0.clone(), b, self.2.clone(), self.3.clone()));
        }
        for c in self.2.shrink() {
            out.push((self.0.clone(), self.1.clone(), c, self.3.clone()));
        }
        for d in self.3.shrink() {
            out.push((self.0.clone(), self.1.clone(), self.2.clone(), d));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_empty_are_fixed_points() {
        assert!(0u32.shrink().is_empty());
        assert!(Vec::<u8>::new().shrink().is_empty());
        assert!(!false.shrink().iter().any(|_| true));
    }

    #[test]
    fn unsigned_candidates_are_strictly_smaller() {
        for v in [1u32, 2, 3, 100, u32::MAX] {
            for c in v.shrink() {
                assert!(c < v, "{c} not smaller than {v}");
            }
        }
    }

    #[test]
    fn vec_candidates_never_grow() {
        let v = vec![5u8, 0, 9];
        for c in v.shrink() {
            assert!(c.len() < v.len() || c.iter().sum::<u8>() < v.iter().sum::<u8>());
        }
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let t = (2u32, vec![1u8]);
        for (a, b) in t.shrink() {
            let changed_a = a != t.0;
            let changed_b = b != t.1;
            assert!(changed_a ^ changed_b);
        }
    }
}
