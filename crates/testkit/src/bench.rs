//! A lightweight benchmark harness replacing criterion for the
//! `crates/bench` targets (`harness = false` bench binaries).
//!
//! Protocol per benchmark: warm up for a fixed wall-clock budget while
//! counting iterations, derive a per-sample iteration count from the
//! observed mean, then take N timed samples and report min / mean /
//! median / p95 per iteration. Results are printed as a table and
//! written as `BENCH_<group>.json` trajectory files (see
//! [`JSON_SCHEMA`]) under `target/testkit-bench/` (override with
//! `TESTKIT_BENCH_DIR`).
//!
//! `cargo test` also executes `harness = false` bench binaries — without
//! the `--bench` flag cargo passes during `cargo bench`, the harness
//! runs in *smoke mode*: every closure executes exactly once (so the
//! bench code stays compiled and correct) and nothing is measured or
//! written.

use std::hint::black_box;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Identifier of the JSON trajectory format this harness writes.
///
/// v2 extends v1 with an optional `workload` object (dataset name,
/// record/query counts, threshold description) and, when that metadata
/// is present, a derived `throughput_qps` field per result. Both
/// additions are optional, so v1 files remain a strict subset and
/// readers of either version can consume v2 output.
pub const JSON_SCHEMA: &str = "simsearch-bench-v2";

/// Workload metadata attached to a group — what one iteration of each
/// benchmark in the group actually processes.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMeta {
    /// Dataset name (e.g. "city", "dna").
    pub dataset: String,
    /// Records scanned/indexed per query.
    pub records: usize,
    /// Queries executed per iteration.
    pub queries: usize,
    /// Human-readable threshold description (e.g. "k in 0..=3").
    pub thresholds: String,
}

/// Timing knobs, deliberately shaped like the criterion settings the
/// repository used before (10 samples over ~3 s after a short warmup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchConfig {
    /// Wall-clock warmup budget per benchmark.
    pub warmup: Duration,
    /// Number of timed samples.
    pub samples: usize,
    /// Wall-clock budget per sample (sets the iteration count).
    pub sample_time: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(500),
            samples: 10,
            sample_time: Duration::from_millis(300),
        }
    }
}

/// One benchmark's statistics, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark id within its group.
    pub name: String,
    /// Iterations per timed sample.
    pub iters: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min_ns: u64,
    /// Mean over samples.
    pub mean_ns: u64,
    /// Median over samples.
    pub median_ns: u64,
    /// 95th percentile (nearest-rank) over samples.
    pub p95_ns: u64,
}

/// Entry point of a bench binary: detects measure vs smoke mode and
/// hands out [`Group`]s.
pub struct Harness {
    measuring: bool,
    out_dir: PathBuf,
    config: BenchConfig,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// Reads the mode from the command line (`cargo bench` passes
    /// `--bench`; `cargo test` does not) and the output directory from
    /// `TESTKIT_BENCH_DIR` (default `<workspace>/target/testkit-bench`).
    pub fn new() -> Self {
        let measuring = std::env::args().any(|a| a == "--bench");
        let out_dir = std::env::var_os("TESTKIT_BENCH_DIR")
            .map_or_else(default_out_dir, PathBuf::from);
        Self {
            measuring,
            out_dir,
            config: BenchConfig::default(),
        }
    }

    /// Forces a mode and output directory (used by testkit's own tests).
    pub fn with_mode(measuring: bool, out_dir: impl Into<PathBuf>) -> Self {
        Self {
            measuring,
            out_dir: out_dir.into(),
            config: BenchConfig::default(),
        }
    }

    /// Replaces the timing configuration for subsequent groups.
    pub fn config(mut self, config: BenchConfig) -> Self {
        self.config = config;
        self
    }

    /// True under `cargo bench` (full measurement), false under
    /// `cargo test` (single-iteration smoke run).
    pub fn measuring(&self) -> bool {
        self.measuring
    }

    /// Workload size helper: the full query count when measuring, a
    /// minimal smoke count otherwise. Keeps `cargo test` fast while the
    /// bench code paths stay exercised.
    pub fn queries(&self, full: usize) -> usize {
        if self.measuring {
            full
        } else {
            full.clamp(1, 3)
        }
    }

    /// Starts a named benchmark group.
    pub fn group(&self, name: &str) -> Group<'_> {
        assert!(
            !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || "_-".contains(c)),
            "group name '{name}' must be a file-name-safe identifier"
        );
        Group {
            harness: self,
            name: name.to_string(),
            workload: None,
            plan_decisions: Vec::new(),
            counters: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Copies a finished group's `BENCH_<group>.json` from the output
    /// directory to the workspace root, where canonical snapshots are
    /// committed. No-op in smoke mode or when the trajectory file is
    /// missing.
    pub fn publish_snapshot(&self, group: &str) {
        if !self.measuring {
            return;
        }
        let file = format!("BENCH_{group}.json");
        let src = self.out_dir.join(&file);
        let dst = workspace_root().join(&file);
        match std::fs::copy(&src, &dst) {
            Ok(_) => println!("published {}", dst.display()),
            Err(e) => eprintln!("warning: could not publish {}: {e}", src.display()),
        }
    }
}

/// A named set of related benchmarks; writes one JSON file on
/// [`Group::finish`].
pub struct Group<'a> {
    harness: &'a Harness,
    name: String,
    workload: Option<WorkloadMeta>,
    plan_decisions: Vec<(String, u64)>,
    counters: Vec<(String, u64)>,
    results: Vec<BenchResult>,
}

impl Group<'_> {
    /// Attaches workload metadata to the group's JSON output. With the
    /// per-iteration query count known, every result also gets a derived
    /// `throughput_qps` field.
    pub fn set_workload(
        &mut self,
        dataset: &str,
        records: usize,
        queries: usize,
        thresholds: &str,
    ) {
        self.workload = Some(WorkloadMeta {
            dataset: dataset.to_string(),
            records,
            queries,
            thresholds: thresholds.to_string(),
        });
    }
    /// Attaches per-backend query-routing counters (an adaptive
    /// planner's decisions for the group's workload) to the JSON
    /// output as a `plan_decisions` object. A v2 extension like the
    /// workload metadata: absent unless set, so existing readers are
    /// unaffected.
    pub fn set_plan_decisions(&mut self, counts: &[(&str, u64)]) {
        self.plan_decisions = counts
            .iter()
            .map(|(name, count)| (name.to_string(), *count))
            .collect();
    }

    /// Attaches arbitrary named work counters (DP cells, words advanced,
    /// words reused — whatever the ablation accounts) to the JSON output
    /// as a `counters` object. Absent unless set, like the workload
    /// metadata, so existing readers are unaffected.
    pub fn set_counters(&mut self, counts: &[(&str, u64)]) {
        self.counters = counts
            .iter()
            .map(|(name, count)| (name.to_string(), *count))
            .collect();
    }

    /// Runs (smoke mode) or measures (bench mode) one benchmark.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        if !self.harness.measuring {
            black_box(f());
            println!("smoke {}/{id} ... ok", self.name);
            return;
        }
        let cfg = self.harness.config;

        // Warmup doubles as calibration: count how many iterations fit
        // in the warmup budget to size the timed samples.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < cfg.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let mean = warm_start.elapsed().as_nanos() / u128::from(warm_iters);
        let iters = (cfg.sample_time.as_nanos() / mean.max(1)).clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<u64> = Vec::with_capacity(cfg.samples);
        for _ in 0..cfg.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples_ns.push((t.elapsed().as_nanos() / u128::from(iters)) as u64);
        }
        let result = summarize(id, iters, &mut samples_ns);
        println!(
            "bench {}/{id}: median {} p95 {} min {} ({} samples x {} iters)",
            self.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.p95_ns),
            fmt_ns(result.min_ns),
            result.samples,
            result.iters,
        );
        self.results.push(result);
    }

    /// Writes the group's `BENCH_<group>.json` trajectory file (bench
    /// mode only) and consumes the group.
    pub fn finish(self) {
        if !self.harness.measuring {
            return;
        }
        let path = self.harness.out_dir.join(format!("BENCH_{}.json", self.name));
        if let Err(e) = self.write_json(&path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("wrote {}", path.display());
        }
    }

    fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{JSON_SCHEMA}\",\n"));
        out.push_str(&format!("  \"group\": \"{}\",\n", escape(&self.name)));
        if let Some(w) = &self.workload {
            out.push_str(&format!(
                "  \"workload\": {{\"dataset\": \"{}\", \"records\": {}, \
                 \"queries\": {}, \"thresholds\": \"{}\"}},\n",
                escape(&w.dataset),
                w.records,
                w.queries,
                escape(&w.thresholds),
            ));
        }
        if !self.plan_decisions.is_empty() {
            let counts: Vec<String> = self
                .plan_decisions
                .iter()
                .map(|(name, count)| format!("\"{}\": {count}", escape(name)))
                .collect();
            out.push_str(&format!(
                "  \"plan_decisions\": {{{}}},\n",
                counts.join(", ")
            ));
        }
        if !self.counters.is_empty() {
            let counts: Vec<String> = self
                .counters
                .iter()
                .map(|(name, count)| format!("\"{}\": {count}", escape(name)))
                .collect();
            out.push_str(&format!("  \"counters\": {{{}}},\n", counts.join(", ")));
        }
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            // One iteration runs the whole workload, so queries per
            // second falls out of the median time when the query count
            // is known.
            let qps = self.workload.as_ref().map_or(String::new(), |w| {
                format!(
                    ", \"throughput_qps\": {:.1}",
                    w.queries as f64 * 1e9 / r.median_ns.max(1) as f64
                )
            });
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"iters\": {}, \"samples\": {}, \
                 \"min_ns\": {}, \"mean_ns\": {}, \"median_ns\": {}, \"p95_ns\": {}{}}}{}\n",
                escape(&r.name),
                r.iters,
                r.samples,
                r.min_ns,
                r.mean_ns,
                r.median_ns,
                r.p95_ns,
                qps,
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        let mut file = std::fs::File::create(path)?;
        file.write_all(out.as_bytes())
    }
}

/// Cargo runs bench binaries with the package directory as the working
/// directory; walk up to the workspace root (the outermost ancestor with
/// a `Cargo.lock`) so every target writes into the shared `target/`.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    cwd.ancestors()
        .filter(|d| d.join("Cargo.lock").exists())
        .last()
        .map_or(cwd.clone(), std::path::Path::to_path_buf)
}

fn default_out_dir() -> PathBuf {
    workspace_root().join("target").join("testkit-bench")
}

fn summarize(name: &str, iters: u64, samples_ns: &mut [u64]) -> BenchResult {
    samples_ns.sort_unstable();
    let n = samples_ns.len();
    let sum: u128 = samples_ns.iter().map(|&s| u128::from(s)).sum();
    let median = if n % 2 == 1 {
        samples_ns[n / 2]
    } else {
        (samples_ns[n / 2 - 1] + samples_ns[n / 2]) / 2
    };
    // Nearest-rank p95.
    let p95_idx = ((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1;
    BenchResult {
        name: name.to_string(),
        iters,
        samples: n,
        min_ns: samples_ns[0],
        mean_ns: (sum / n as u128) as u64,
        median_ns: median,
        p95_ns: samples_ns[p95_idx],
    }
}

fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns} ns"),
        10_000..=9_999_999 => format!("{:.2} µs", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("simsearch-testkit-bench-{}-{name}", std::process::id()))
    }

    #[test]
    fn smoke_mode_runs_once_and_writes_nothing() {
        let dir = tmp_dir("smoke");
        let h = Harness::with_mode(false, &dir);
        let mut calls = 0u32;
        let mut g = h.group("unit");
        g.bench("count", || calls += 1);
        assert_eq!(calls, 1);
        g.finish();
        assert!(!dir.exists(), "smoke mode must not write JSON");
    }

    #[test]
    fn measuring_mode_writes_trajectory_json() {
        let dir = tmp_dir("measure");
        let h = Harness::with_mode(true, &dir).config(BenchConfig {
            warmup: Duration::from_micros(200),
            samples: 4,
            sample_time: Duration::from_micros(200),
        });
        let mut g = h.group("unit_measure");
        g.bench("busy", || std::hint::black_box((0..100u32).sum::<u32>()));
        g.bench("busier", || std::hint::black_box((0..1000u32).sum::<u32>()));
        g.finish();
        let json = std::fs::read_to_string(dir.join("BENCH_unit_measure.json")).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        for needle in [
            JSON_SCHEMA,
            "\"group\": \"unit_measure\"",
            "\"name\": \"busy\"",
            "\"name\": \"busier\"",
            "median_ns",
            "p95_ns",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Without workload metadata the v1-compatible subset is written.
        assert!(!json.contains("workload"));
        assert!(!json.contains("throughput_qps"));
    }

    #[test]
    fn workload_metadata_adds_throughput() {
        let dir = tmp_dir("workload");
        let h = Harness::with_mode(true, &dir).config(BenchConfig {
            warmup: Duration::from_micros(200),
            samples: 3,
            sample_time: Duration::from_micros(200),
        });
        let mut g = h.group("unit_workload");
        g.set_workload("city", 400, 50, "k in 0..=3");
        g.bench("scan", || std::hint::black_box((0..100u32).sum::<u32>()));
        g.finish();
        let json = std::fs::read_to_string(dir.join("BENCH_unit_workload.json")).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        for needle in [
            "\"workload\": {\"dataset\": \"city\", \"records\": 400, \
             \"queries\": 50, \"thresholds\": \"k in 0..=3\"}",
            "throughput_qps",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn plan_decisions_render_as_a_counter_object() {
        let dir = tmp_dir("plan");
        let h = Harness::with_mode(true, &dir).config(BenchConfig {
            warmup: Duration::from_micros(200),
            samples: 3,
            sample_time: Duration::from_micros(200),
        });
        let mut g = h.group("unit_plan");
        g.set_plan_decisions(&[("scan-flat", 12), ("qgram", 38)]);
        g.bench("auto", || std::hint::black_box((0..100u32).sum::<u32>()));
        g.finish();
        let json = std::fs::read_to_string(dir.join("BENCH_unit_plan.json")).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(
            json.contains("\"plan_decisions\": {\"scan-flat\": 12, \"qgram\": 38}"),
            "missing plan_decisions in:\n{json}"
        );
    }

    #[test]
    fn summary_statistics_are_order_free() {
        let mut samples = vec![50, 10, 30, 20, 40];
        let r = summarize("s", 1, &mut samples);
        assert_eq!(r.min_ns, 10);
        assert_eq!(r.median_ns, 30);
        assert_eq!(r.mean_ns, 30);
        assert_eq!(r.p95_ns, 50);
    }

    #[test]
    fn queries_helper_caps_in_smoke_mode() {
        let smoke = Harness::with_mode(false, "x");
        assert_eq!(smoke.queries(50), 3);
        assert_eq!(smoke.queries(2), 2);
        assert_eq!(smoke.queries(0), 1);
        let measure = Harness::with_mode(true, "x");
        assert_eq!(measure.queries(50), 50);
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
