//! # simsearch-testkit
//!
//! The workspace's self-contained testing and benchmarking kit. The
//! repository has a strict **zero external dependency** policy (the
//! build must succeed with `--offline` on a bare toolchain), so the
//! roles usually played by `proptest` and `criterion` are provided
//! in-house:
//!
//! * [`prop`] — a deterministic, seedable property-test runner with
//!   iterative shrinking to a minimal counterexample ([`check`],
//!   [`Config`], the [`prop_assert!`]/[`prop_assert_eq!`] macros);
//! * [`gen`] — value generators driven by the workspace's own
//!   [`simsearch_data::Xoshiro256`] PRNG: arbitrary bytes, city-like
//!   ASCII strings, DNA strings, corpora, edit-budget mutations;
//! * [`shrink`] — the [`Shrink`](shrink::Shrink) trait the runner uses
//!   to simplify failing inputs;
//! * [`bench`] — a lightweight benchmark harness (warmup + N timed
//!   samples, median/p95, `BENCH_<group>.json` trajectory output)
//!   that replaces criterion for the `crates/bench` targets;
//! * [`loopback`] — a serving harness that boots `simsearchd` on an
//!   ephemeral loopback port for end-to-end protocol tests;
//! * [`oracle`] — cross-variant equivalence oracles: every distance
//!   kernel against the full-matrix reference
//!   ([`assert_all_kernels_agree`]), and the sequential scan against
//!   every index structure ([`assert_scan_index_equal`]).
//!
//! Every failure report prints the base seed and case number needed to
//! replay it byte-for-byte: `TESTKIT_SEED=<seed> TESTKIT_CASES=<n>
//! cargo test <name>` re-runs exactly the failing case first.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod gen;
pub mod loopback;
pub mod oracle;
pub mod prop;
pub mod shrink;

pub use gen::Gen;
pub use oracle::{assert_all_kernels_agree, assert_scan_index_equal};
pub use prop::{check, Config, TestResult};
pub use shrink::Shrink;

// The PRNG all generators run on, re-exported so tests can seed their
// own streams without depending on simsearch-data directly.
pub use simsearch_data::rng::{SplitMix64, Xoshiro256};

/// Returns `Err` from the enclosing property when the condition is
/// false. Use inside [`check`] closures in place of `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Returns `Err` from the enclosing property when the two expressions
/// differ. Use inside [`check`] closures in place of `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}` — {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Returns `Err` from the enclosing property when the two expressions
/// are equal. Use inside [`check`] closures in place of `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}
