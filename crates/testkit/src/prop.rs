//! The property-test runner: deterministic case generation, panic
//! capture, and greedy shrinking to a minimal counterexample.
//!
//! Each case draws its input from a fresh PRNG seeded with
//! `splitmix(base_seed, case_index)`, so a failure report's `seed` +
//! `case` pair replays the exact input regardless of how many cases ran
//! before it. Set `TESTKIT_SEED` / `TESTKIT_CASES` to override any
//! check's defaults when reproducing.

use crate::gen::Gen;
use crate::shrink::Shrink;
use simsearch_data::rng::{SplitMix64, Xoshiro256};
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Outcome of one property evaluation: `Ok(())` or a failure message.
pub type TestResult = Result<(), String>;

/// Runner configuration. Environment overrides (`TESTKIT_SEED`,
/// `TESTKIT_CASES`) take precedence over the programmed values so a
/// failure can be replayed without editing the test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed; case `i` uses the PRNG stream seeded with
    /// `splitmix(seed, i)`.
    pub seed: u64,
    /// Upper bound on shrink-candidate evaluations after a failure.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 256,
            seed: 0x005E_ED0F_7E57_CA5E,
            max_shrink_steps: 4_096,
        }
    }
}

impl Config {
    /// Default configuration with `cases` random cases.
    pub fn cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }

    /// Replaces the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn resolved(self) -> Self {
        let mut cfg = self;
        if let Ok(s) = std::env::var("TESTKIT_SEED") {
            let parsed = s
                .strip_prefix("0x")
                .map_or_else(|| s.parse(), |hex| u64::from_str_radix(hex, 16));
            cfg.seed = parsed.unwrap_or_else(|_| panic!("unparsable TESTKIT_SEED '{s}'"));
        }
        if let Ok(c) = std::env::var("TESTKIT_CASES") {
            cfg.cases = c
                .parse()
                .unwrap_or_else(|_| panic!("unparsable TESTKIT_CASES '{c}'"));
        }
        cfg
    }
}

/// Derives the per-case seed from the base seed — exposed so a test can
/// rebuild the exact PRNG stream of a reported case by hand.
pub fn case_seed(base_seed: u64, case: u32) -> u64 {
    let mut sm = SplitMix64::new(base_seed ^ u64::from(case).wrapping_mul(0x9E37_79B9));
    sm.next_u64()
}

fn run_one<T>(prop: &impl Fn(&T) -> TestResult, value: &T) -> TestResult {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Runs `prop` against `config.cases` values drawn from `gen`. On the
/// first failure the input is shrunk to a local minimum and the test
/// panics with a report containing the value, the error, and the
/// `TESTKIT_SEED`/`TESTKIT_CASES` pair that replays it.
///
/// # Panics
/// Panics (failing the enclosing `#[test]`) when the property is
/// falsified.
pub fn check<T>(name: &str, config: Config, gen: &Gen<T>, prop: impl Fn(&T) -> TestResult)
where
    T: Shrink + Debug + 'static,
{
    let cfg = config.resolved();
    for case in 0..cfg.cases {
        let mut rng = Xoshiro256::seed_from_u64(case_seed(cfg.seed, case));
        let value = gen.sample(&mut rng);
        let Err(first_error) = run_one(&prop, &value) else {
            continue;
        };

        // Greedy shrink: take the first failing candidate, repeat until
        // no candidate fails or the step budget runs out.
        let mut minimal = value;
        let mut minimal_error = first_error.clone();
        let mut steps = 0u32;
        'shrinking: while steps < cfg.max_shrink_steps {
            let mut advanced = false;
            for candidate in minimal.shrink() {
                steps += 1;
                if steps >= cfg.max_shrink_steps {
                    break 'shrinking;
                }
                if let Err(e) = run_one(&prop, &candidate) {
                    minimal = candidate;
                    minimal_error = e;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
        }

        panic!(
            "\nproperty `{name}` falsified at case {case} of {cases}\n\
             \n  minimal counterexample (after {steps} shrink steps):\n    {minimal:?}\n\
             \n  error: {minimal_error}\n\
             \n  original error: {first_error}\n\
             \n  replay exactly: TESTKIT_SEED={seed:#x} TESTKIT_CASES={ncases} cargo test {name}\n",
            cases = cfg.cases,
            seed = cfg.seed,
            ncases = case + 1,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn passing_property_is_silent() {
        check(
            "sum_is_commutative",
            Config::cases(64),
            &gen::zip(gen::u32_in(0..1000), gen::u32_in(0..1000)),
            |(a, b)| {
                crate::prop_assert_eq!(a + b, b + a);
                Ok(())
            },
        );
    }

    #[test]
    fn case_seeds_differ_and_are_stable() {
        assert_ne!(case_seed(1, 0), case_seed(1, 1));
        assert_ne!(case_seed(1, 0), case_seed(2, 0));
        assert_eq!(case_seed(42, 7), case_seed(42, 7));
    }

    #[test]
    fn failing_property_reports_minimal_counterexample() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "vectors_stay_short",
                Config::cases(200),
                &gen::bytes_any(0..30),
                |v| {
                    crate::prop_assert!(v.len() < 5, "len {}", v.len());
                    Ok(())
                },
            );
        }));
        let msg = result
            .expect_err("property must fail")
            .downcast_ref::<String>()
            .cloned()
            .expect("string panic");
        // The shrinker must reach a 5-element vector of zeros.
        assert!(
            msg.contains("[0, 0, 0, 0, 0]"),
            "not shrunk to minimum:\n{msg}"
        );
        assert!(msg.contains("TESTKIT_SEED"), "no replay line:\n{msg}");
    }

    #[test]
    fn panicking_property_is_caught_and_shrunk() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "no_byte_is_seven",
                Config::cases(400),
                &gen::bytes_any(0..20),
                |v| {
                    assert!(!v.contains(&7), "found a 7");
                    Ok(())
                },
            );
        }));
        let msg = result
            .expect_err("property must fail")
            .downcast_ref::<String>()
            .cloned()
            .expect("string panic");
        assert!(msg.contains("[7]"), "not shrunk to [7]:\n{msg}");
        assert!(msg.contains("panicked"), "panic not reported:\n{msg}");
    }

    #[test]
    fn same_seed_same_failure() {
        let run = || {
            catch_unwind(AssertUnwindSafe(|| {
                check(
                    "u32_stays_small",
                    Config::cases(100).seed(99),
                    &gen::u32_in(0..100_000),
                    |v| {
                        crate::prop_assert!(*v < 90_000);
                        Ok(())
                    },
                );
            }))
            .expect_err("must fail")
            .downcast_ref::<String>()
            .cloned()
            .unwrap()
        };
        assert_eq!(run(), run());
    }
}
