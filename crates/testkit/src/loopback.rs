//! Loopback serving harness: boots a real `simsearchd` on an ephemeral
//! port and hands out connected clients, so integration tests exercise
//! the full TCP path (framing, scheduling, admission control) without
//! touching any non-loopback network.

use std::net::SocketAddr;
use std::time::Duration;

use simsearch_core::EngineKind;
use simsearch_data::Dataset;
use simsearch_serve::{spawn, Client, Metrics, ServerConfig, ServerHandle};

/// A running loopback server under test.
pub struct Loopback {
    handle: Option<ServerHandle>,
}

impl Loopback {
    /// Boots a server on an ephemeral loopback port with the given
    /// configuration (`config.port` is forced to 0 — a test must never
    /// contend for a fixed port).
    pub fn spawn(dataset: Dataset, kind: EngineKind, mut config: ServerConfig) -> Self {
        config.port = 0;
        let handle = spawn(dataset, kind, config).expect("loopback bind failed");
        Self {
            handle: Some(handle),
        }
    }

    /// Boots with the default configuration.
    pub fn spawn_default(dataset: Dataset, kind: EngineKind) -> Self {
        Self::spawn(dataset, kind, ServerConfig::default())
    }

    fn handle(&self) -> &ServerHandle {
        self.handle.as_ref().expect("server already shut down")
    }

    /// The actually-bound address.
    pub fn addr(&self) -> SocketAddr {
        self.handle().addr()
    }

    /// The live server metrics.
    pub fn metrics(&self) -> &Metrics {
        self.handle().metrics()
    }

    /// A new connected client (retries briefly to cover accept-loop
    /// startup).
    pub fn client(&self) -> Client {
        Client::connect_retry(self.addr(), Duration::from_secs(5)).expect("loopback connect failed")
    }

    /// Sends `SHUTDOWN` and joins every server thread. Consumes the
    /// harness; also triggered by `Drop` for panicking tests.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            if let Ok(mut client) = Client::connect_retry(handle.addr(), Duration::from_secs(1)) {
                let _ = client.shutdown();
            } else {
                handle.request_shutdown();
            }
            handle.join();
        }
    }
}

impl Drop for Loopback {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}
