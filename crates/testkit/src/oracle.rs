//! Cross-variant equivalence oracles.
//!
//! The workspace implements the same two computations many times over —
//! bounded edit distance (seven kernels) and threshold search (a scan
//! ladder plus four index families). These helpers assert that every
//! variant agrees with the slow, obviously-correct reference, and they
//! return [`TestResult`] so property tests can shrink a disagreement to
//! a minimal `(query, candidate, k)` triple or dataset.

use crate::prop::TestResult;
use simsearch_core::{
    cross_validate, EngineKind, IdxVariant, SearchEngine, SeqVariant, Strategy,
};
use simsearch_data::packed::PackedSeq;
use simsearch_data::{Dataset, Workload};
use simsearch_distance::packed::{ed_within_packed_with, query_codes};
use simsearch_distance::two_row::levenshtein_two_row;
use simsearch_distance::{
    ed_within_banded, ed_within_early_abort, levenshtein, levenshtein_naive_alloc, BoundedKernel,
    KernelKind, Myers64, MyersAny, MyersBlock,
};

fn disagree(kernel: &str, query: &[u8], candidate: &[u8], k: u32, want: &str, got: &str) -> String {
    format!(
        "kernel `{kernel}` disagrees with the full-matrix reference\n  \
         query: {:?}\n  candidate: {:?}\n  k: {k}\n  reference: {want}\n  {kernel}: {got}",
        String::from_utf8_lossy(query),
        String::from_utf8_lossy(candidate),
    )
}

fn check_bounded(
    kernel: &str,
    query: &[u8],
    candidate: &[u8],
    k: u32,
    want: Option<u32>,
    got: Option<u32>,
) -> TestResult {
    if got == want {
        Ok(())
    } else {
        Err(disagree(
            kernel,
            query,
            candidate,
            k,
            &format!("{want:?}"),
            &format!("{got:?}"),
        ))
    }
}

/// Asserts that every distance kernel in the workspace agrees on one
/// `(query, candidate, k)` triple.
///
/// The full-matrix DP ([`levenshtein`]) is the ground truth. Unbounded
/// kernels (`naive_alloc`, `two_row`, Myers `distance`) must reproduce
/// its value exactly; bounded kernels (`early_abort`, `banded`, the
/// [`BoundedKernel`] trio, Myers `within`, and — for DNA inputs — the
/// packed kernel) honour the ≤k contract: `Some(d)` with the true
/// distance when `d ≤ k`, `None` otherwise.
pub fn assert_all_kernels_agree(query: &[u8], candidate: &[u8], k: u32) -> TestResult {
    let truth = levenshtein(query, candidate);
    let want = (truth <= k).then_some(truth);

    // Unbounded kernels: exact agreement.
    let naive = levenshtein_naive_alloc(query, candidate);
    if naive != truth {
        return Err(disagree(
            "full/naive_alloc",
            query,
            candidate,
            k,
            &truth.to_string(),
            &naive.to_string(),
        ));
    }
    let two = levenshtein_two_row(query, candidate);
    if two != truth {
        return Err(disagree(
            "two_row",
            query,
            candidate,
            k,
            &truth.to_string(),
            &two.to_string(),
        ));
    }

    // Free-function bounded kernels.
    check_bounded(
        "early_abort",
        query,
        candidate,
        k,
        want,
        ed_within_early_abort(query, candidate, k),
    )?;
    check_bounded(
        "banded",
        query,
        candidate,
        k,
        want,
        ed_within_banded(query, candidate, k),
    )?;

    // The compiled per-query kernels, every kind.
    for kind in KernelKind::ALL {
        let mut kernel = BoundedKernel::compile(kind, query, k);
        check_bounded(
            &format!("BoundedKernel::{}", kind.name()),
            query,
            candidate,
            k,
            want,
            kernel.within(candidate),
        )?;
    }

    // Bit-parallel kernels (defined for non-empty patterns only).
    if let Some(m) = MyersAny::new(query) {
        let d = m.distance(candidate);
        if d != truth {
            return Err(disagree(
                "myers_any/distance",
                query,
                candidate,
                k,
                &truth.to_string(),
                &d.to_string(),
            ));
        }
        check_bounded("myers_any/within", query, candidate, k, want, m.within(candidate, k))?;
    }
    if let Some(m) = Myers64::new(query) {
        let d = m.distance(candidate);
        if d != truth {
            return Err(disagree(
                "myers64/distance",
                query,
                candidate,
                k,
                &truth.to_string(),
                &d.to_string(),
            ));
        }
        check_bounded("myers64/within", query, candidate, k, want, m.within(candidate, k))?;
    }
    if let Some(m) = MyersBlock::new(query) {
        let d = m.distance(candidate);
        if d != truth {
            return Err(disagree(
                "myers_block/distance",
                query,
                candidate,
                k,
                &truth.to_string(),
                &d.to_string(),
            ));
        }
        check_bounded("myers_block/within", query, candidate, k, want, m.within(candidate, k))?;
    }

    // Packed DNA kernel, when both sides are representable in 3 bits.
    if let (Some(codes), Some(packed)) = (query_codes(query), PackedSeq::pack(candidate)) {
        let mut buf = Vec::new();
        check_bounded(
            "packed",
            query,
            candidate,
            k,
            want,
            ed_within_packed_with(&mut buf, &codes, &packed, k),
        )?;
    }

    Ok(())
}

/// The engine lineup [`assert_scan_index_equal`] cross-validates: the
/// remaining scan rung plus one engine from every index family, paper
/// and modern pruning both represented.
fn challenger_kinds() -> Vec<EngineKind> {
    vec![
        EngineKind::Scan(SeqVariant::V1Base),
        EngineKind::Scan(SeqVariant::V7SortedPrefix),
        EngineKind::Index(IdxVariant::I1BaseTrie),
        EngineKind::Index(IdxVariant::I2Compressed),
        EngineKind::IndexModern(IdxVariant::I2Compressed),
        EngineKind::Qgram {
            q: 2,
            strategy: Strategy::Sequential,
        },
        EngineKind::Buckets {
            strategy: Strategy::Sequential,
        },
        EngineKind::Suffix {
            strategy: Strategy::Sequential,
        },
        EngineKind::Bk {
            strategy: Strategy::Sequential,
        },
    ]
}

/// Asserts that the best sequential scan and every index structure
/// return identical match sets over a whole workload.
///
/// The reference is the paper's final scan rung
/// ([`SeqVariant::V4Flat`]); challenged against it are the base scan,
/// the V7 sorted-prefix scan, both trie rungs (paper and modern
/// pruning), the q-gram index, length buckets, the suffix-array engine,
/// and the BK-tree.
pub fn assert_scan_index_equal(dataset: &Dataset, workload: &Workload) -> TestResult {
    let reference = SearchEngine::build(dataset, EngineKind::Scan(SeqVariant::V4Flat));
    let challengers: Vec<_> = challenger_kinds()
        .into_iter()
        .map(|kind| SearchEngine::build(dataset, kind))
        .collect();
    cross_validate(&reference, &challengers, workload).map_err(|m| m.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simsearch_data::WorkloadSpec;
    use simsearch_data::Alphabet;

    #[test]
    fn kernels_agree_on_known_pairs() {
        for (q, c, k) in [
            (&b"Berlin"[..], &b"Bern"[..], 2),
            (b"", b"abc", 1),
            (b"abc", b"", 5),
            (b"ACGT", b"AGGT", 0),
            (b"kitten", b"sitting", 3),
        ] {
            assert_all_kernels_agree(q, c, k).unwrap();
        }
    }

    #[test]
    fn kernels_agree_across_the_block_boundary() {
        // Patterns longer than 64 symbols exercise MyersBlock's
        // multi-word path against the same references.
        let q: Vec<u8> = b"ACGNT".iter().cycle().take(80).copied().collect();
        let mut c = q.clone();
        c[10] = b'T';
        c.remove(70);
        assert_all_kernels_agree(&q, &c, 3).unwrap();
    }

    #[test]
    fn scan_and_indexes_agree_on_a_small_dataset() {
        let words: &[&[u8]] = &[
            b"berlin", b"bern", b"bonn", b"barcelona", b"boston", b"bo", b"", b"bristol",
        ];
        let dataset = Dataset::from_records(words.iter().map(|w| w.to_vec()));
        let alphabet = Alphabet::new(b"abcdefghijklmnopqrstuvwxyz");
        let workload = WorkloadSpec::new(&[1, 2, 3], 12, 0xBEEF).generate(&dataset, &alphabet);
        assert_scan_index_equal(&dataset, &workload).unwrap();
    }
}
