//! Property tests for the live composite's mutation router
//! (`simsearch_core::sharded`): the contract that makes sharded ingest
//! deterministic.
//!
//! Three laws:
//!
//! 1. **Routing is a pure function of the record bytes** — the same
//!    record lands on the same shard for any insertion order, any
//!    interleaving with other records, and across a "restart" (a fresh
//!    composite fed the same stream). `route_record` is the function;
//!    the composite must agree with it.
//! 2. **Global ids are dense and never reused** — the router allocates
//!    `0, 1, 2, …` across all shards; each shard sees a strictly
//!    increasing (not necessarily contiguous) subsequence, and the
//!    per-shard id sets are disjoint.
//! 3. **Delete routing finds the inserting shard** — `owner_of(id)`
//!    equals the shard that `route_record` chose at insert time, so a
//!    `DELETE` touches exactly one shard and always the right one.

use simsearch_core::{route_record, LsmConfig, MutableBackend, ShardBy, ShardedBackend};
use simsearch_data::Dataset;
use simsearch_testkit::{check, gen, prop_assert, prop_assert_eq, Config, Gen};

fn records_gen() -> Gen<Vec<Vec<u8>>> {
    // Collision-rich short strings: duplicates across the stream are
    // common, which is exactly what the purity law needs to bite.
    gen::vec_of(gen::city_string(0..8), 0..40)
}

fn live(shards: usize, cap: usize) -> ShardedBackend {
    ShardedBackend::live(
        &Dataset::new(),
        shards,
        ShardBy::Hash,
        1,
        LsmConfig { memtable_cap: cap },
    )
    .expect("valid sharded-live config")
}

#[test]
fn routing_is_a_pure_function_of_the_record() {
    let cases = gen::zip(gen::usize_in(1..9), records_gen());
    check(
        "routing_is_pure",
        Config::cases(256).seed(0x0707_0001),
        &cases,
        |(shards, records)| {
            // Purity of the function itself: same bytes, same shard,
            // independent of everything else.
            for r in records {
                prop_assert_eq!(
                    route_record(r, *shards),
                    route_record(r, *shards),
                    "route_record is deterministic"
                );
                prop_assert!(route_record(r, *shards) < *shards, "route stays in range");
            }
            // The composite obeys it: owner_of(insert(r)) == route_record(r).
            let engine = live(*shards, 4);
            for r in records {
                let id = engine.insert(r);
                prop_assert_eq!(
                    engine.owner_of(id),
                    Some(route_record(r, *shards)),
                    "insert landed on the routed shard for {:?}",
                    String::from_utf8_lossy(r)
                );
            }
            // Restart stability: a *fresh* composite fed the same stream
            // routes every record identically (same owner map). This is
            // what lets a reloaded daemon keep serving old DELETEs.
            let replay = live(*shards, 4);
            for r in records {
                replay.insert(r);
            }
            for id in 0..records.len() as u32 {
                prop_assert_eq!(
                    replay.owner_of(id),
                    engine.owner_of(id),
                    "restart routes id {id} to the same shard"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn global_ids_are_dense_disjoint_and_per_shard_increasing() {
    let cases = gen::zip(gen::usize_in(1..9), records_gen());
    check(
        "global_ids_disjoint_increasing",
        Config::cases(256).seed(0x0707_0002),
        &cases,
        |(shards, records)| {
            let engine = live(*shards, 4);
            let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); *shards];
            for (expected, r) in records.iter().enumerate() {
                let id = engine.insert(r);
                prop_assert_eq!(id, expected as u32, "global ids are dense: 0, 1, 2, …");
                per_shard[engine.owner_of(id).expect("freshly assigned")].push(id);
            }
            // Each shard's ids strictly increase (the shard memtable
            // invariant), and the shard sets partition 0..n.
            let mut seen = vec![false; records.len()];
            for (s, ids) in per_shard.iter().enumerate() {
                prop_assert!(
                    ids.windows(2).all(|w| w[0] < w[1]),
                    "shard {s} ids strictly increase: {ids:?}"
                );
                for &id in ids {
                    prop_assert!(
                        !std::mem::replace(&mut seen[id as usize], true),
                        "id {id} owned by two shards"
                    );
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "every id has exactly one owner");
            // The composite's books agree: per-shard insert counters sum
            // to the stream length.
            let stats = engine.live_shard_stats().expect("live composite");
            prop_assert_eq!(
                stats.iter().map(|s| s.inserts).sum::<u64>(),
                records.len() as u64,
                "per-shard insert counters account for the whole stream"
            );
            Ok(())
        },
    );
}

#[test]
fn delete_routing_finds_the_inserting_shard() {
    let cases = gen::zip(gen::usize_in(1..9), records_gen());
    check(
        "delete_routes_to_inserting_shard",
        Config::cases(256).seed(0x0707_0003),
        &cases,
        |(shards, records)| {
            let engine = live(*shards, 4);
            let inserted: Vec<(u32, usize)> = records
                .iter()
                .map(|r| {
                    let id = engine.insert(r);
                    (id, route_record(r, *shards))
                })
                .collect();
            // Delete every other id: the delete must hit exactly the
            // inserting shard (its delete counter moves, nobody else's).
            for (id, inserting_shard) in inserted.iter().step_by(2) {
                let before = engine.live_shard_stats().expect("live composite");
                prop_assert_eq!(
                    engine.owner_of(*id),
                    Some(*inserting_shard),
                    "owner map remembers the inserting shard"
                );
                prop_assert!(engine.delete(*id), "first delete of a live id succeeds");
                let after = engine.live_shard_stats().expect("live composite");
                for (s, (b, a)) in before.iter().zip(after.iter()).enumerate() {
                    let expected = b.deletes + u64::from(s == *inserting_shard);
                    prop_assert_eq!(
                        a.deletes,
                        expected,
                        "delete of id {id} moved shard {s}'s counter correctly"
                    );
                }
                prop_assert!(!engine.delete(*id), "double delete stays false");
            }
            // Deleting an id that was never assigned touches nothing.
            let absent = records.len() as u32;
            prop_assert_eq!(engine.owner_of(absent), None, "unassigned id has no owner");
            prop_assert!(!engine.delete(absent), "deleting an absent id is a no-op");
            Ok(())
        },
    );
}
