//! Property tests for the replan tick's calibration arithmetic
//! (`Planner::with_class_samples`): the laws that make live
//! recalibration safe to swap in unsupervised.
//!
//! Four laws, over synthetic latency histograms:
//!
//! 1. **Positivity** — every derived multiplier is finite and > 0, so a
//!    replanned table can always be persisted and reloaded
//!    (`Planner::from_calibrated_rows` rejects anything else).
//! 2. **Boundedness** — a multiplier never exceeds the total observed
//!    nanoseconds (each query contributes ≥ 1 predicted unit), so one
//!    absurd cell cannot produce an unrepresentable cost.
//! 3. **Scale invariance** — multiplying every latency by a common
//!    power of two (a clock-unit change) leaves the argmin arm of every
//!    query class, and the top-k routing, unchanged.
//! 4. **Pooled fallback** — a cell with fewer than `min_count`
//!    observations does not speak for itself: its multiplier is the
//!    arm's pooled ratio across all classes, or exactly 1.0 when the
//!    whole arm is unobserved.

use simsearch_core::{AutoBackend, BackendChoice, CellSample, Planner};
use simsearch_data::{Dataset, StatsSnapshot};
use simsearch_testkit::{check, gen, prop_assert, prop_assert_eq, Config};

const ROWS: usize = 51; // NUM_LEN_CLASSES * (MAX_K_CLASS + 1)
const ARMS: usize = BackendChoice::COUNT;

fn snapshot() -> StatsSnapshot {
    StatsSnapshot::compute(&Dataset::from_records([
        "Berlin", "Bern", "Bonn", "Ulm", "Hamburg", "ACGTACGTACGT",
    ]))
}

/// Deterministic per-case PRNG (splitmix64): property cases carry one
/// seed and expand it into a full 51×8 histogram grid here.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A synthetic observation grid: sparse (many empty cells), noisy, and
/// with per-query predicted units ≥ 1 — the shape a live grid has.
fn synthetic_grid(seed: u64) -> (Vec<[CellSample; ARMS]>, [CellSample; ARMS]) {
    let mut s = seed;
    let cell = |state: &mut u64| {
        let count = mix(state) % 24; // 0 = unobserved cell
        if count == 0 {
            return CellSample::default();
        }
        let predicted = count * (1 + mix(state) % 64);
        let nanos = predicted * (mix(state) % 1_000) + mix(state) % 7;
        CellSample {
            nanos,
            predicted,
            count,
        }
    };
    let cells: Vec<[CellSample; ARMS]> = (0..ROWS)
        .map(|_| std::array::from_fn(|_| cell(&mut s)))
        .collect();
    let topk: [CellSample; ARMS] = std::array::from_fn(|_| cell(&mut s));
    (cells, topk)
}

#[test]
fn multipliers_are_positive_and_bounded() {
    check(
        "multipliers_are_positive_and_bounded",
        Config::cases(128).seed(0x00CA_1B01),
        &gen::zip(gen::u64_any(), gen::u64_any()),
        |(seed, min_raw)| {
            let min_count = 1 + min_raw % 16;
            let (cells, topk) = synthetic_grid(*seed);
            let planner = Planner::with_class_samples(
                snapshot(),
                &AutoBackend::DEFAULT_CANDIDATES,
                &cells,
                &topk,
                min_count,
            );
            let total_nanos: u64 = cells
                .iter()
                .flatten()
                .chain(topk.iter())
                .map(|c| c.nanos)
                .sum();
            let bound = (total_nanos as f64).max(1.0);
            for (row, multipliers) in planner.class_multipliers().iter().enumerate() {
                for (arm, &m) in multipliers.iter().enumerate() {
                    prop_assert!(m.is_finite() && m > 0.0, "cell [{row}][{arm}] = {m}");
                    prop_assert!(m <= bound, "cell [{row}][{arm}] = {m} > {bound}");
                }
            }
            for (arm, &m) in planner.topk_multipliers().iter().enumerate() {
                prop_assert!(m.is_finite() && m > 0.0, "topk [{arm}] = {m}");
                prop_assert!(m <= bound, "topk [{arm}] = {m} > {bound}");
            }
            Ok(())
        },
    );
}

#[test]
fn scaling_every_latency_preserves_every_decision() {
    check(
        "scaling_every_latency_preserves_every_decision",
        Config::cases(128).seed(0x00CA_1B02),
        &gen::zip(gen::u64_any(), gen::usize_in(1..13)),
        |(seed, shift)| {
            let (cells, topk) = synthetic_grid(*seed);
            // A clock-unit change: every nanosecond figure × 2^shift.
            // Power-of-two scaling is exact in f64, so every ratio —
            // and thus every cost comparison — scales uniformly.
            let scale = |c: &CellSample| CellSample {
                nanos: c.nanos << shift,
                ..*c
            };
            let scaled_cells: Vec<[CellSample; ARMS]> = cells
                .iter()
                .map(|row| std::array::from_fn(|i| scale(&row[i])))
                .collect();
            let scaled_topk: [CellSample; ARMS] = std::array::from_fn(|i| scale(&topk[i]));
            let build = |cells: &[[CellSample; ARMS]], topk: &[CellSample; ARMS]| {
                Planner::with_class_samples(
                    snapshot(),
                    &AutoBackend::DEFAULT_CANDIDATES,
                    cells,
                    topk,
                    4,
                )
            };
            let base = build(&cells, &topk);
            let scaled = build(&scaled_cells, &scaled_topk);
            for (a, b) in base.decisions().iter().zip(scaled.decisions()) {
                prop_assert_eq!(
                    a.chosen,
                    b.chosen,
                    "class {:?} rerouted by a unit change",
                    a.class
                );
            }
            for (len, count, radius) in [(4usize, 1usize, 4u32), (8, 10, 8), (40, 100, 16)] {
                prop_assert_eq!(
                    base.decide_topk(len, count, radius).chosen,
                    scaled.decide_topk(len, count, radius).chosen,
                    "topk len={} count={} rerouted by a unit change",
                    len,
                    count
                );
            }
            Ok(())
        },
    );
}

#[test]
fn thin_cells_fall_back_to_the_pooled_arm_ratio() {
    check(
        "thin_cells_fall_back_to_the_pooled_arm_ratio",
        Config::cases(128).seed(0x00CA_1B03),
        &gen::zip3(gen::u64_any(), gen::usize_in(0..ROWS), gen::usize_in(0..ARMS)),
        |(seed, row, arm)| {
            let min_count = 8u64;
            let (mut cells, topk) = synthetic_grid(*seed);
            // Make the chosen cell *thin*: observed, but below the
            // trust threshold — it must not speak for itself.
            cells[*row][*arm] = CellSample {
                nanos: 1_000_000_000,
                predicted: 1,
                count: min_count - 1,
            };
            let planner = Planner::with_class_samples(
                snapshot(),
                &AutoBackend::DEFAULT_CANDIDATES,
                &cells,
                &topk,
                min_count,
            );
            // The pooled ratio, replicated with the same arithmetic:
            // sum the arm's column (thin cells included), then divide.
            let mut pooled = CellSample::default();
            for r in &cells {
                pooled.merge(r[*arm]);
            }
            let expected = if pooled.count >= min_count {
                (pooled.nanos as f64 / pooled.predicted as f64).max(f64::MIN_POSITIVE)
            } else {
                1.0
            };
            prop_assert_eq!(
                planner.class_multipliers()[*row][*arm],
                expected,
                "thin cell [{}][{}] must use the pooled arm ratio",
                row,
                arm
            );
            Ok(())
        },
    );
}

#[test]
fn an_unobserved_arm_keeps_the_neutral_multiplier() {
    check(
        "an_unobserved_arm_keeps_the_neutral_multiplier",
        Config::cases(64).seed(0x00CA_1B04),
        &gen::zip(gen::u64_any(), gen::usize_in(0..ARMS)),
        |(seed, arm)| {
            let (mut cells, mut topk) = synthetic_grid(*seed);
            for row in &mut cells {
                row[*arm] = CellSample::default();
            }
            topk[*arm] = CellSample::default();
            let planner = Planner::with_class_samples(
                snapshot(),
                &AutoBackend::DEFAULT_CANDIDATES,
                &cells,
                &topk,
                8,
            );
            for row in planner.class_multipliers() {
                prop_assert_eq!(row[*arm], 1.0, "never-routed arm stays neutral");
            }
            prop_assert_eq!(planner.topk_multipliers()[*arm], 1.0);
            Ok(())
        },
    );
}
