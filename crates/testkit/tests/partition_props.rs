//! Property tests for the partition schemes behind the similarity join
//! (`simsearch_core::passjoin`): PASS-JOIN's even k+1 split and
//! MinJoin's local-hash-minima segmentation.
//!
//! The partitioners' contract is purely structural — segments tile the
//! string — plus the shape each filter stack relies on: even splits
//! differ in length by at most one, and MinJoin partitions are a
//! deterministic function of `(bytes, q, w, seed)`.

use simsearch_core::{even_partitions, min_join_partitions, MinJoinConfig};
use simsearch_testkit::{check, gen, prop_assert, prop_assert_eq, Config};

/// Segments must tile `[0, len)`: contiguous, in order, covering.
fn assert_tiles(parts: &[(usize, usize)], len: usize) -> Result<(), String> {
    let mut cursor = 0usize;
    for &(start, seg_len) in parts {
        prop_assert_eq!(start, cursor, "segments are contiguous and in order");
        cursor += seg_len;
    }
    prop_assert_eq!(cursor, len, "segments cover the whole string");
    Ok(())
}

#[test]
fn even_partitions_split_into_k_plus_one_near_equal_parts() {
    check(
        "even_partitions_shape",
        Config::cases(512).seed(0x9A55_0001),
        &gen::zip(gen::usize_in(0..200), gen::u32_in(0..12)),
        |&(len, k)| {
            let parts = even_partitions(len, k);
            let m = k as usize + 1;
            prop_assert_eq!(parts.len(), m, "exactly k+1 segments");
            assert_tiles(&parts, len)?;
            // Near-equal: every segment is ⌊len/m⌋ or ⌈len/m⌉ long, and
            // the floor-sized ones come first (the probe's offset
            // arithmetic assumes this layout).
            let (floor, ceil) = (len / m, len.div_ceil(m));
            for &(_, seg_len) in &parts {
                prop_assert!(
                    seg_len == floor || seg_len == ceil,
                    "segment length {seg_len} outside {{{floor}, {ceil}}} for len={len} k={k}"
                );
            }
            let first_ceil = parts.iter().position(|&(_, l)| l == ceil);
            if let Some(i) = first_ceil {
                prop_assert!(
                    parts[i..].iter().all(|&(_, l)| l == ceil),
                    "floor-sized segments precede ceil-sized ones"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn min_join_partitions_tile_and_are_seed_deterministic() {
    let record_and_shape = gen::zip3(
        gen::bytes_from(b"ACGTab", 0..120),
        gen::usize_in(1..5),  // q
        gen::usize_in(1..10), // w
    );
    check(
        "min_join_partitions_shape",
        Config::cases(512).seed(0x9A55_0002),
        &record_and_shape,
        |(record, q, w)| {
            let cfg = MinJoinConfig {
                q: *q,
                w: *w,
                ..MinJoinConfig::default()
            };
            let parts = min_join_partitions(record, cfg);
            prop_assert!(!parts.is_empty(), "at least one segment, always");
            assert_tiles(&parts, record.len())?;
            // Deterministic under a fixed seed: same inputs, same split.
            prop_assert_eq!(
                min_join_partitions(record, cfg),
                parts,
                "partitioning is a pure function of (bytes, q, w, seed)"
            );
            // Anchors are strict local minima over a ±w window, so
            // consecutive anchors sit more than w apart. The first
            // boundary is the start of the string, not an anchor: the
            // first anchor merely respects the window margin (p ≥ w).
            if parts.len() > 1 {
                prop_assert!(
                    parts[1].0 >= *w,
                    "first anchor {} inside the leading margin w={w}",
                    parts[1].0
                );
            }
            for pair in parts[1..].windows(2) {
                prop_assert!(
                    pair[1].0 - pair[0].0 > *w,
                    "consecutive anchors {} and {} within the window w={w}",
                    pair[0].0,
                    pair[1].0
                );
            }
            Ok(())
        },
    );
}

#[test]
fn min_join_partitions_respect_the_default_config_too() {
    check(
        "min_join_default_config",
        Config::cases(256).seed(0x9A55_0003),
        &gen::city_string(0..80),
        |record| {
            let parts = min_join_partitions(record, MinJoinConfig::default());
            prop_assert!(!parts.is_empty());
            assert_tiles(&parts, record.len())?;
            Ok(())
        },
    );
}
